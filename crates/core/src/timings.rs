//! Per-stage observability for one reconstruction run.

use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

use rock_trace::{names, MetricsRegistry};

/// Wall-clock and work counters for each pipeline stage of a single
/// [`crate::Rock::reconstruct`] call.
///
/// Related binary-lifting systems (VPS; the GrammaTech type-inference
/// work) report analysis wall-clock as a first-class result; this struct
/// makes the same numbers available here — per stage, so regressions can
/// be pinned to tracelet extraction vs. model training vs. lifting rather
/// than observed only as an end-to-end blur. Surfaced by
/// `rock reconstruct --timings` and by the pipeline benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Behavioral analysis: tracelet extraction + ctor recognition (§3).
    pub analysis: Duration,
    /// Structural analysis: families + possible parents (§5).
    pub structural: Duration,
    /// Per-vtable SLM training (§3.1).
    pub training: Duration,
    /// Per-family distance-matrix computation (§4.2.1).
    pub distances: Duration,
    /// Per-family arborescence search + tie resolution (§4.2.2).
    pub lifting: Duration,
    /// Cross-family repartitioning (§6.4 extension; zero when disabled).
    pub repartition: Duration,
    /// End-to-end wall clock for the whole `reconstruct` call.
    pub total: Duration,
    /// Worker threads the parallel stages resolved to.
    pub threads: usize,
    /// SLMs trained (one per vtable).
    pub slm_count: usize,
    /// Context nodes across all SLM arena tries.
    pub slm_nodes: usize,
    /// Child edges across all SLM arena tries.
    pub slm_edges: usize,
    /// Approximate resident bytes of all SLM arena tries.
    pub slm_bytes: usize,
    /// Distinct training sequences stored across all SLMs (after
    /// multiplicity deduplication).
    pub slm_unique_words: usize,
    /// Total training sequences fed to all SLMs (clones included).
    pub slm_total_words: u64,
    /// Weighted candidate edges put into family digraphs.
    pub edge_count: usize,
    /// Candidate parents skipped because they were outside their family's
    /// member list (would previously have been an index panic).
    pub foreign_candidates: usize,
    /// Distance lookups answered by the shared cache.
    pub cache_hits: u64,
    /// Distance lookups that had to compute.
    pub cache_misses: u64,
    /// Functions excluded from behavioral analysis (skips + contained
    /// panics + budget exhaustion).
    pub skipped_functions: usize,
    /// Functions excluded specifically by fuel exhaustion.
    pub fuel_exhausted: usize,
    /// Vtable candidates rejected by the loader.
    pub rejected_vtables: usize,
    /// Approximate bytes retained by the run's diagnostics.
    pub diagnostics_bytes: usize,
}

impl StageTimings {
    /// Projects the run's [`MetricsRegistry`] counters onto the legacy
    /// work-counter fields, making this struct a thin view over the
    /// registry: the wall-clock fields stay owned here (the registry
    /// deliberately holds no clock values), every other number has the
    /// registry as its single source of truth.
    pub fn absorb_counters(&mut self, metrics: &MetricsRegistry) {
        self.slm_count = metrics.counter(names::SLM_MODELS_TRAINED) as usize;
        self.slm_nodes = metrics.counter(names::SLM_ARENA_NODES) as usize;
        self.slm_edges = metrics.counter(names::SLM_ARENA_EDGES) as usize;
        self.slm_bytes = metrics.counter(names::SLM_ARENA_BYTES) as usize;
        self.slm_unique_words = metrics.counter(names::SLM_WORDS_UNIQUE) as usize;
        self.slm_total_words = metrics.counter(names::SLM_WORDS_TOTAL);
        self.edge_count = metrics.counter(names::DISTANCES_EDGES) as usize;
        self.foreign_candidates = metrics.counter(names::DISTANCES_FOREIGN_CANDIDATES) as usize;
        self.cache_hits = metrics.counter(names::DISTANCES_CACHE_HIT);
        self.cache_misses = metrics.counter(names::DISTANCES_CACHE_MISS);
        self.skipped_functions = metrics.counter(names::ANALYSIS_FUNCTIONS_SKIPPED) as usize;
        self.fuel_exhausted = metrics.counter(names::ANALYSIS_FUEL_EXHAUSTED) as usize;
        self.rejected_vtables = metrics.counter(names::LOAD_VTABLES_REJECTED) as usize;
        self.diagnostics_bytes = metrics.counter(names::DIAGNOSTICS_BYTES) as usize;
    }

    /// Machine-readable rendering for `--timings=json`: one flat JSON
    /// object, durations as integer microseconds (no floats, no NaNs).
    /// The same document shape is emitted by `rock reconstruct` and
    /// `rock batch`, replacing the two drift-prone text formatters.
    pub fn to_json(&self) -> String {
        fn us(d: Duration) -> u128 {
            d.as_micros()
        }
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"threads\":{},\"analysis_us\":{},\"structural_us\":{},\"training_us\":{},\
             \"distances_us\":{},\"lifting_us\":{},\"repartition_us\":{},\"total_us\":{},",
            self.threads,
            us(self.analysis),
            us(self.structural),
            us(self.training),
            us(self.distances),
            us(self.lifting),
            us(self.repartition),
            us(self.total),
        );
        let _ = write!(
            s,
            "\"slm_count\":{},\"slm_nodes\":{},\"slm_edges\":{},\"slm_bytes\":{},\
             \"slm_unique_words\":{},\"slm_total_words\":{},\"edge_count\":{},\
             \"foreign_candidates\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"skipped_functions\":{},\"fuel_exhausted\":{},\"rejected_vtables\":{},\
             \"diagnostics_bytes\":{}}}",
            self.slm_count,
            self.slm_nodes,
            self.slm_edges,
            self.slm_bytes,
            self.slm_unique_words,
            self.slm_total_words,
            self.edge_count,
            self.foreign_candidates,
            self.cache_hits,
            self.cache_misses,
            self.skipped_functions,
            self.fuel_exhausted,
            self.rejected_vtables,
            self.diagnostics_bytes,
        );
        s
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ms(d: Duration) -> f64 {
            d.as_secs_f64() * 1e3
        }
        writeln!(f, "stage timings ({} thread(s)):", self.threads)?;
        writeln!(f, "  analysis     {:>10.3} ms", ms(self.analysis))?;
        writeln!(f, "  structural   {:>10.3} ms", ms(self.structural))?;
        writeln!(f, "  training     {:>10.3} ms  ({} SLMs)", ms(self.training), self.slm_count)?;
        writeln!(
            f,
            "  slm arenas   {} nodes, {} edges, ~{:.1} KiB, {}/{} unique words",
            self.slm_nodes,
            self.slm_edges,
            self.slm_bytes as f64 / 1024.0,
            self.slm_unique_words,
            self.slm_total_words
        )?;
        writeln!(
            f,
            "  distances    {:>10.3} ms  ({} edges, cache {} hit / {} miss)",
            ms(self.distances),
            self.edge_count,
            self.cache_hits,
            self.cache_misses
        )?;
        writeln!(f, "  lifting      {:>10.3} ms", ms(self.lifting))?;
        writeln!(f, "  repartition  {:>10.3} ms", ms(self.repartition))?;
        if self.foreign_candidates > 0 {
            writeln!(f, "  skipped foreign candidates: {}", self.foreign_candidates)?;
        }
        writeln!(
            f,
            "  robustness   {} skipped fns ({} fuel-starved), {} rejected vtables, \
             {} diagnostic bytes",
            self.skipped_functions,
            self.fuel_exhausted,
            self.rejected_vtables,
            self.diagnostics_bytes
        )?;
        write!(f, "  total        {:>10.3} ms", ms(self.total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_stage() {
        let t = StageTimings {
            analysis: Duration::from_millis(12),
            training: Duration::from_micros(1500),
            threads: 4,
            slm_count: 39,
            slm_nodes: 410,
            slm_edges: 380,
            slm_bytes: 4096,
            slm_unique_words: 57,
            slm_total_words: 200,
            edge_count: 120,
            cache_hits: 7,
            cache_misses: 113,
            skipped_functions: 2,
            fuel_exhausted: 1,
            rejected_vtables: 3,
            diagnostics_bytes: 96,
            ..StageTimings::default()
        };
        let text = t.to_string();
        for needle in [
            "4 thread(s)",
            "analysis",
            "structural",
            "39 SLMs",
            "410 nodes, 380 edges, ~4.0 KiB, 57/200 unique words",
            "120 edges",
            "cache 7 hit / 113 miss",
            "lifting",
            "repartition",
            "2 skipped fns (1 fuel-starved), 3 rejected vtables, 96 diagnostic bytes",
            "total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The foreign-candidate line only appears when something was skipped.
        assert!(!text.contains("foreign"));
        let skipped = StageTimings { foreign_candidates: 2, ..t };
        assert!(skipped.to_string().contains("skipped foreign candidates: 2"));
    }
}
