//! Per-stage observability for one reconstruction run.

use std::fmt;
use std::time::Duration;

/// Wall-clock and work counters for each pipeline stage of a single
/// [`crate::Rock::reconstruct`] call.
///
/// Related binary-lifting systems (VPS; the GrammaTech type-inference
/// work) report analysis wall-clock as a first-class result; this struct
/// makes the same numbers available here — per stage, so regressions can
/// be pinned to tracelet extraction vs. model training vs. lifting rather
/// than observed only as an end-to-end blur. Surfaced by
/// `rock reconstruct --timings` and by the pipeline benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Behavioral analysis: tracelet extraction + ctor recognition (§3).
    pub analysis: Duration,
    /// Structural analysis: families + possible parents (§5).
    pub structural: Duration,
    /// Per-vtable SLM training (§3.1).
    pub training: Duration,
    /// Per-family distance-matrix computation (§4.2.1).
    pub distances: Duration,
    /// Per-family arborescence search + tie resolution (§4.2.2).
    pub lifting: Duration,
    /// Cross-family repartitioning (§6.4 extension; zero when disabled).
    pub repartition: Duration,
    /// End-to-end wall clock for the whole `reconstruct` call.
    pub total: Duration,
    /// Worker threads the parallel stages resolved to.
    pub threads: usize,
    /// SLMs trained (one per vtable).
    pub slm_count: usize,
    /// Context nodes across all SLM arena tries.
    pub slm_nodes: usize,
    /// Child edges across all SLM arena tries.
    pub slm_edges: usize,
    /// Approximate resident bytes of all SLM arena tries.
    pub slm_bytes: usize,
    /// Distinct training sequences stored across all SLMs (after
    /// multiplicity deduplication).
    pub slm_unique_words: usize,
    /// Total training sequences fed to all SLMs (clones included).
    pub slm_total_words: u64,
    /// Weighted candidate edges put into family digraphs.
    pub edge_count: usize,
    /// Candidate parents skipped because they were outside their family's
    /// member list (would previously have been an index panic).
    pub foreign_candidates: usize,
    /// Distance lookups answered by the shared cache.
    pub cache_hits: u64,
    /// Distance lookups that had to compute.
    pub cache_misses: u64,
    /// Functions excluded from behavioral analysis (skips + contained
    /// panics + budget exhaustion).
    pub skipped_functions: usize,
    /// Functions excluded specifically by fuel exhaustion.
    pub fuel_exhausted: usize,
    /// Vtable candidates rejected by the loader.
    pub rejected_vtables: usize,
    /// Approximate bytes retained by the run's diagnostics.
    pub diagnostics_bytes: usize,
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ms(d: Duration) -> f64 {
            d.as_secs_f64() * 1e3
        }
        writeln!(f, "stage timings ({} thread(s)):", self.threads)?;
        writeln!(f, "  analysis     {:>10.3} ms", ms(self.analysis))?;
        writeln!(f, "  structural   {:>10.3} ms", ms(self.structural))?;
        writeln!(f, "  training     {:>10.3} ms  ({} SLMs)", ms(self.training), self.slm_count)?;
        writeln!(
            f,
            "  slm arenas   {} nodes, {} edges, ~{:.1} KiB, {}/{} unique words",
            self.slm_nodes,
            self.slm_edges,
            self.slm_bytes as f64 / 1024.0,
            self.slm_unique_words,
            self.slm_total_words
        )?;
        writeln!(
            f,
            "  distances    {:>10.3} ms  ({} edges, cache {} hit / {} miss)",
            ms(self.distances),
            self.edge_count,
            self.cache_hits,
            self.cache_misses
        )?;
        writeln!(f, "  lifting      {:>10.3} ms", ms(self.lifting))?;
        writeln!(f, "  repartition  {:>10.3} ms", ms(self.repartition))?;
        if self.foreign_candidates > 0 {
            writeln!(f, "  skipped foreign candidates: {}", self.foreign_candidates)?;
        }
        writeln!(
            f,
            "  robustness   {} skipped fns ({} fuel-starved), {} rejected vtables, \
             {} diagnostic bytes",
            self.skipped_functions,
            self.fuel_exhausted,
            self.rejected_vtables,
            self.diagnostics_bytes
        )?;
        write!(f, "  total        {:>10.3} ms", ms(self.total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_stage() {
        let t = StageTimings {
            analysis: Duration::from_millis(12),
            training: Duration::from_micros(1500),
            threads: 4,
            slm_count: 39,
            slm_nodes: 410,
            slm_edges: 380,
            slm_bytes: 4096,
            slm_unique_words: 57,
            slm_total_words: 200,
            edge_count: 120,
            cache_hits: 7,
            cache_misses: 113,
            skipped_functions: 2,
            fuel_exhausted: 1,
            rejected_vtables: 3,
            diagnostics_bytes: 96,
            ..StageTimings::default()
        };
        let text = t.to_string();
        for needle in [
            "4 thread(s)",
            "analysis",
            "structural",
            "39 SLMs",
            "410 nodes, 380 edges, ~4.0 KiB, 57/200 unique words",
            "120 edges",
            "cache 7 hit / 113 miss",
            "lifting",
            "repartition",
            "2 skipped fns (1 fuel-starved), 3 rejected vtables, 96 diagnostic bytes",
            "total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The foreign-candidate line only appears when something was skipped.
        assert!(!text.contains("foreign"));
        let skipped = StageTimings { foreign_candidates: 2, ..t };
        assert!(skipped.to_string().contains("skipped foreign candidates: 2"));
    }
}
