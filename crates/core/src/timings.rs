//! Per-stage observability for one reconstruction run.

use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

use rock_trace::{names, MetricsRegistry};

/// Wall-clock and work counters for each pipeline stage of a single
/// [`crate::Rock::reconstruct`] call.
///
/// Related binary-lifting systems (VPS; the GrammaTech type-inference
/// work) report analysis wall-clock as a first-class result; this struct
/// makes the same numbers available here — per stage, so regressions can
/// be pinned to tracelet extraction vs. model training vs. lifting rather
/// than observed only as an end-to-end blur. Surfaced by
/// `rock reconstruct --timings` and by the pipeline benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Behavioral analysis: tracelet extraction + ctor recognition (§3).
    pub analysis: Duration,
    /// Structural analysis: families + possible parents (§5).
    pub structural: Duration,
    /// Per-vtable SLM training (§3.1).
    pub training: Duration,
    /// Per-family distance-matrix computation (§4.2.1).
    pub distances: Duration,
    /// Per-family arborescence search + tie resolution (§4.2.2).
    pub lifting: Duration,
    /// Cross-family repartitioning (§6.4 extension; zero when disabled).
    pub repartition: Duration,
    /// End-to-end wall clock for the whole `reconstruct` call.
    pub total: Duration,
    /// Worker threads the parallel stages resolved to.
    pub threads: usize,
    /// SLMs trained (one per vtable).
    pub slm_count: usize,
    /// Context nodes across all SLM arena tries.
    pub slm_nodes: usize,
    /// Child edges across all SLM arena tries.
    pub slm_edges: usize,
    /// Approximate resident bytes of all SLM arena tries.
    pub slm_bytes: usize,
    /// Distinct training sequences stored across all SLMs (after
    /// multiplicity deduplication).
    pub slm_unique_words: usize,
    /// Total training sequences fed to all SLMs (clones included).
    pub slm_total_words: u64,
    /// Weighted candidate edges put into family digraphs.
    pub edge_count: usize,
    /// Candidate parents skipped because they were outside their family's
    /// member list (would previously have been an index panic).
    pub foreign_candidates: usize,
    /// Distance lookups answered by the shared cache.
    pub cache_hits: u64,
    /// Distance lookups that had to compute.
    pub cache_misses: u64,
    /// Functions excluded from behavioral analysis (skips + contained
    /// panics + budget exhaustion).
    pub skipped_functions: usize,
    /// Functions excluded specifically by fuel exhaustion.
    pub fuel_exhausted: usize,
    /// Vtable candidates rejected by the loader.
    pub rejected_vtables: usize,
    /// Approximate bytes retained by the run's diagnostics.
    pub diagnostics_bytes: usize,
    /// Symbolic executions answered by the corpus tracelet tier (all
    /// corpus fields stay zero without an attached [`crate::CorpusCache`];
    /// they are per-run deltas injected by the batch driver, never part
    /// of the pipeline's own deterministic registry).
    pub corpus_tracelet_hits: u64,
    /// Symbolic executions the corpus tracelet tier could not answer.
    pub corpus_tracelet_misses: u64,
    /// SLM trainings answered by the corpus model tier.
    pub corpus_slm_hits: u64,
    /// SLM trainings the corpus model tier could not answer.
    pub corpus_slm_misses: u64,
    /// Distances answered by the corpus distance tier.
    pub corpus_distance_hits: u64,
    /// Distances the corpus distance tier could not answer.
    pub corpus_distance_misses: u64,
    /// Family liftings answered by the corpus lifting tier.
    pub corpus_lifting_hits: u64,
    /// Family liftings the corpus lifting tier could not answer.
    pub corpus_lifting_misses: u64,
    /// Bytes the run added to the corpus cache.
    pub corpus_bytes_stored: u64,
    /// Corpus entries dropped on checksum mismatch (then recomputed).
    pub corpus_corrupt_dropped: u64,
    /// Corpus entries displaced by capacity eviction (bounded caches).
    pub corpus_evicted: u64,
    /// Orphaned `.art.tmp` files the artifact store swept (all store
    /// fields stay zero without a batch artifact store; like the corpus
    /// fields they are per-run deltas injected by the batch driver,
    /// never part of the pipeline's own deterministic registry).
    pub store_tmp_swept: u64,
    /// Checkpoint saves re-attempted after a transient i/o fault.
    pub store_write_retries: u64,
    /// Checkpoint saves abandoned after retries (resume lost, job lives).
    pub store_write_failures: u64,
    /// Artifact loads re-attempted after a transient i/o fault.
    pub store_read_retries: u64,
    /// Artifact loads abandoned after retries (the job recomputed).
    pub store_read_failures: u64,
    /// Artifacts whose checksum or frame failed verification.
    pub store_corrupt_detected: u64,
    /// Saves skipped after degrading to recompute-without-checkpointing.
    pub store_checkpoints_skipped: u64,
    /// Backoff milliseconds scheduled for store retries.
    pub store_retry_backoff_ms: u64,
    /// Sub-artifacts restored into the corpus cache at preload (all
    /// incr fields stay zero without `--incremental`; like the corpus
    /// and store fields they are batch-level deltas injected by the
    /// driver, never part of the pipeline's deterministic registry).
    pub incr_preloaded: u64,
    /// Sub-artifacts newly written to disk at flush.
    pub incr_flushed: u64,
    /// Sub-artifacts already on disk and skipped at flush.
    pub incr_unchanged: u64,
    /// Sub-artifacts rejected at preload (recomputed instead).
    pub incr_corrupt_skipped: u64,
    /// Sub-artifact reads/writes abandoned on an i/o error.
    pub incr_io_errors: u64,
}

impl StageTimings {
    /// Projects the run's [`MetricsRegistry`] counters onto the legacy
    /// work-counter fields, making this struct a thin view over the
    /// registry: the wall-clock fields stay owned here (the registry
    /// deliberately holds no clock values), every other number has the
    /// registry as its single source of truth.
    pub fn absorb_counters(&mut self, metrics: &MetricsRegistry) {
        self.slm_count = metrics.counter(names::SLM_MODELS_TRAINED) as usize;
        self.slm_nodes = metrics.counter(names::SLM_ARENA_NODES) as usize;
        self.slm_edges = metrics.counter(names::SLM_ARENA_EDGES) as usize;
        self.slm_bytes = metrics.counter(names::SLM_ARENA_BYTES) as usize;
        self.slm_unique_words = metrics.counter(names::SLM_WORDS_UNIQUE) as usize;
        self.slm_total_words = metrics.counter(names::SLM_WORDS_TOTAL);
        self.edge_count = metrics.counter(names::DISTANCES_EDGES) as usize;
        self.foreign_candidates = metrics.counter(names::DISTANCES_FOREIGN_CANDIDATES) as usize;
        self.cache_hits = metrics.counter(names::DISTANCES_CACHE_HIT);
        self.cache_misses = metrics.counter(names::DISTANCES_CACHE_MISS);
        self.skipped_functions = metrics.counter(names::ANALYSIS_FUNCTIONS_SKIPPED) as usize;
        self.fuel_exhausted = metrics.counter(names::ANALYSIS_FUEL_EXHAUSTED) as usize;
        self.rejected_vtables = metrics.counter(names::LOAD_VTABLES_REJECTED) as usize;
        self.diagnostics_bytes = metrics.counter(names::DIAGNOSTICS_BYTES) as usize;
        self.corpus_tracelet_hits = metrics.counter(names::CORPUS_TRACELET_HIT);
        self.corpus_tracelet_misses = metrics.counter(names::CORPUS_TRACELET_MISS);
        self.corpus_slm_hits = metrics.counter(names::CORPUS_SLM_HIT);
        self.corpus_slm_misses = metrics.counter(names::CORPUS_SLM_MISS);
        self.corpus_distance_hits = metrics.counter(names::CORPUS_DISTANCE_HIT);
        self.corpus_distance_misses = metrics.counter(names::CORPUS_DISTANCE_MISS);
        self.corpus_lifting_hits = metrics.counter(names::CORPUS_LIFTING_HIT);
        self.corpus_lifting_misses = metrics.counter(names::CORPUS_LIFTING_MISS);
        self.corpus_bytes_stored = metrics.counter(names::CORPUS_BYTES_STORED);
        self.corpus_corrupt_dropped = metrics.counter(names::CORPUS_CORRUPT_DROPPED);
        self.corpus_evicted = metrics.counter(names::CORPUS_EVICTED);
        self.store_tmp_swept = metrics.counter(names::STORE_TMP_SWEPT);
        self.store_write_retries = metrics.counter(names::STORE_WRITE_RETRIES);
        self.store_write_failures = metrics.counter(names::STORE_WRITE_FAILURES);
        self.store_read_retries = metrics.counter(names::STORE_READ_RETRIES);
        self.store_read_failures = metrics.counter(names::STORE_READ_FAILURES);
        self.store_corrupt_detected = metrics.counter(names::STORE_CORRUPT_DETECTED);
        self.store_checkpoints_skipped = metrics.counter(names::STORE_CHECKPOINTS_SKIPPED);
        self.store_retry_backoff_ms = metrics.counter(names::STORE_RETRY_BACKOFF_MS);
        self.incr_preloaded = metrics.counter(names::INCR_PRELOADED);
        self.incr_flushed = metrics.counter(names::INCR_FLUSHED);
        self.incr_unchanged = metrics.counter(names::INCR_UNCHANGED);
        self.incr_corrupt_skipped = metrics.counter(names::INCR_CORRUPT_SKIPPED);
        self.incr_io_errors = metrics.counter(names::INCR_IO_ERRORS);
    }

    /// Copies one run's corpus-tier delta ([`crate::CorpusStats::since`])
    /// onto the corpus fields and mirrors it into `metrics` under the
    /// `corpus.*` counter names, so reports and JSON render it uniformly.
    pub fn absorb_corpus_stats(
        &mut self,
        delta: &crate::CorpusStats,
        metrics: &mut MetricsRegistry,
    ) {
        metrics.set(names::CORPUS_TRACELET_HIT, delta.tracelet_hits);
        metrics.set(names::CORPUS_TRACELET_MISS, delta.tracelet_misses);
        metrics.set(names::CORPUS_SLM_HIT, delta.slm_hits);
        metrics.set(names::CORPUS_SLM_MISS, delta.slm_misses);
        metrics.set(names::CORPUS_DISTANCE_HIT, delta.distance_hits);
        metrics.set(names::CORPUS_DISTANCE_MISS, delta.distance_misses);
        metrics.set(names::CORPUS_LIFTING_HIT, delta.lifting_hits);
        metrics.set(names::CORPUS_LIFTING_MISS, delta.lifting_misses);
        metrics.set(names::CORPUS_BYTES_STORED, delta.bytes_stored);
        metrics.set(names::CORPUS_CORRUPT_DROPPED, delta.corrupt_dropped);
        metrics.set(names::CORPUS_EVICTED, delta.evicted);
        self.corpus_tracelet_hits = delta.tracelet_hits;
        self.corpus_tracelet_misses = delta.tracelet_misses;
        self.corpus_slm_hits = delta.slm_hits;
        self.corpus_slm_misses = delta.slm_misses;
        self.corpus_distance_hits = delta.distance_hits;
        self.corpus_distance_misses = delta.distance_misses;
        self.corpus_lifting_hits = delta.lifting_hits;
        self.corpus_lifting_misses = delta.lifting_misses;
        self.corpus_bytes_stored = delta.bytes_stored;
        self.corpus_corrupt_dropped = delta.corrupt_dropped;
        self.corpus_evicted = delta.evicted;
    }

    /// Copies one batch's incremental preload/flush counters
    /// ([`crate::IncrStats`]) onto the incr fields and mirrors them into
    /// `metrics` under the `incr.*` counter names, so reports and JSON
    /// render them uniformly.
    pub fn absorb_incr_stats(&mut self, delta: &crate::IncrStats, metrics: &mut MetricsRegistry) {
        metrics.set(names::INCR_PRELOADED, delta.preloaded);
        metrics.set(names::INCR_FLUSHED, delta.flushed);
        metrics.set(names::INCR_UNCHANGED, delta.unchanged);
        metrics.set(names::INCR_CORRUPT_SKIPPED, delta.corrupt_skipped);
        metrics.set(names::INCR_IO_ERRORS, delta.io_errors);
        self.incr_preloaded = delta.preloaded;
        self.incr_flushed = delta.flushed;
        self.incr_unchanged = delta.unchanged;
        self.incr_corrupt_skipped = delta.corrupt_skipped;
        self.incr_io_errors = delta.io_errors;
    }

    /// Copies one run's artifact-store delta ([`crate::StoreStats::since`])
    /// onto the store fields and mirrors it into `metrics` under the
    /// `store.*` counter names, so reports and JSON render it uniformly.
    pub fn absorb_store_stats(&mut self, delta: &crate::StoreStats, metrics: &mut MetricsRegistry) {
        metrics.set(names::STORE_TMP_SWEPT, delta.tmp_swept);
        metrics.set(names::STORE_WRITE_RETRIES, delta.write_retries);
        metrics.set(names::STORE_WRITE_FAILURES, delta.write_failures);
        metrics.set(names::STORE_READ_RETRIES, delta.read_retries);
        metrics.set(names::STORE_READ_FAILURES, delta.read_failures);
        metrics.set(names::STORE_CORRUPT_DETECTED, delta.corrupt_detected);
        metrics.set(names::STORE_CHECKPOINTS_SKIPPED, delta.checkpoints_skipped);
        metrics.set(names::STORE_RETRY_BACKOFF_MS, delta.retry_backoff_ms);
        self.store_tmp_swept = delta.tmp_swept;
        self.store_write_retries = delta.write_retries;
        self.store_write_failures = delta.write_failures;
        self.store_read_retries = delta.read_retries;
        self.store_read_failures = delta.read_failures;
        self.store_corrupt_detected = delta.corrupt_detected;
        self.store_checkpoints_skipped = delta.checkpoints_skipped;
        self.store_retry_backoff_ms = delta.retry_backoff_ms;
    }

    /// `true` when any store fault-path counter is nonzero (healthy runs
    /// on a healthy disk keep all of them at zero).
    pub fn has_store_activity(&self) -> bool {
        self.store_tmp_swept
            + self.store_write_retries
            + self.store_write_failures
            + self.store_read_retries
            + self.store_read_failures
            + self.store_corrupt_detected
            + self.store_checkpoints_skipped
            + self.store_retry_backoff_ms
            > 0
    }

    /// `true` when any corpus-tier counter is nonzero (i.e. the run had a
    /// corpus cache attached and it saw traffic).
    pub fn has_corpus_activity(&self) -> bool {
        self.corpus_tracelet_hits
            + self.corpus_tracelet_misses
            + self.corpus_slm_hits
            + self.corpus_slm_misses
            + self.corpus_distance_hits
            + self.corpus_distance_misses
            + self.corpus_lifting_hits
            + self.corpus_lifting_misses
            + self.corpus_bytes_stored
            + self.corpus_corrupt_dropped
            + self.corpus_evicted
            > 0
    }

    /// `true` when the incremental sub-artifact layer saw any traffic
    /// (i.e. the batch ran with `--incremental`).
    pub fn has_incr_activity(&self) -> bool {
        self.incr_preloaded
            + self.incr_flushed
            + self.incr_unchanged
            + self.incr_corrupt_skipped
            + self.incr_io_errors
            > 0
    }

    /// Machine-readable rendering for `--timings=json`: one flat JSON
    /// object, durations as integer microseconds (no floats, no NaNs).
    /// The same document shape is emitted by `rock reconstruct` and
    /// `rock batch`, replacing the two drift-prone text formatters.
    pub fn to_json(&self) -> String {
        fn us(d: Duration) -> u128 {
            d.as_micros()
        }
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"threads\":{},\"analysis_us\":{},\"structural_us\":{},\"training_us\":{},\
             \"distances_us\":{},\"lifting_us\":{},\"repartition_us\":{},\"total_us\":{},",
            self.threads,
            us(self.analysis),
            us(self.structural),
            us(self.training),
            us(self.distances),
            us(self.lifting),
            us(self.repartition),
            us(self.total),
        );
        let _ = write!(
            s,
            "\"slm_count\":{},\"slm_nodes\":{},\"slm_edges\":{},\"slm_bytes\":{},\
             \"slm_unique_words\":{},\"slm_total_words\":{},\"edge_count\":{},\
             \"foreign_candidates\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"skipped_functions\":{},\"fuel_exhausted\":{},\"rejected_vtables\":{},\
             \"diagnostics_bytes\":{},",
            self.slm_count,
            self.slm_nodes,
            self.slm_edges,
            self.slm_bytes,
            self.slm_unique_words,
            self.slm_total_words,
            self.edge_count,
            self.foreign_candidates,
            self.cache_hits,
            self.cache_misses,
            self.skipped_functions,
            self.fuel_exhausted,
            self.rejected_vtables,
            self.diagnostics_bytes,
        );
        let _ = write!(
            s,
            "\"corpus_tracelet_hits\":{},\"corpus_tracelet_misses\":{},\
             \"corpus_slm_hits\":{},\"corpus_slm_misses\":{},\
             \"corpus_distance_hits\":{},\"corpus_distance_misses\":{},\
             \"corpus_lifting_hits\":{},\"corpus_lifting_misses\":{},\
             \"corpus_bytes_stored\":{},\"corpus_corrupt_dropped\":{},\"corpus_evicted\":{},",
            self.corpus_tracelet_hits,
            self.corpus_tracelet_misses,
            self.corpus_slm_hits,
            self.corpus_slm_misses,
            self.corpus_distance_hits,
            self.corpus_distance_misses,
            self.corpus_lifting_hits,
            self.corpus_lifting_misses,
            self.corpus_bytes_stored,
            self.corpus_corrupt_dropped,
            self.corpus_evicted,
        );
        let _ = write!(
            s,
            "\"store_tmp_swept\":{},\"store_write_retries\":{},\"store_write_failures\":{},\
             \"store_read_retries\":{},\"store_read_failures\":{},\
             \"store_corrupt_detected\":{},\"store_checkpoints_skipped\":{},\
             \"store_retry_backoff_ms\":{},",
            self.store_tmp_swept,
            self.store_write_retries,
            self.store_write_failures,
            self.store_read_retries,
            self.store_read_failures,
            self.store_corrupt_detected,
            self.store_checkpoints_skipped,
            self.store_retry_backoff_ms,
        );
        let _ = write!(
            s,
            "\"incr_preloaded\":{},\"incr_flushed\":{},\"incr_unchanged\":{},\
             \"incr_corrupt_skipped\":{},\"incr_io_errors\":{}}}",
            self.incr_preloaded,
            self.incr_flushed,
            self.incr_unchanged,
            self.incr_corrupt_skipped,
            self.incr_io_errors,
        );
        s
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ms(d: Duration) -> f64 {
            d.as_secs_f64() * 1e3
        }
        writeln!(f, "stage timings ({} thread(s)):", self.threads)?;
        writeln!(f, "  analysis     {:>10.3} ms", ms(self.analysis))?;
        writeln!(f, "  structural   {:>10.3} ms", ms(self.structural))?;
        writeln!(f, "  training     {:>10.3} ms  ({} SLMs)", ms(self.training), self.slm_count)?;
        writeln!(
            f,
            "  slm arenas   {} nodes, {} edges, ~{:.1} KiB, {}/{} unique words",
            self.slm_nodes,
            self.slm_edges,
            self.slm_bytes as f64 / 1024.0,
            self.slm_unique_words,
            self.slm_total_words
        )?;
        writeln!(
            f,
            "  distances    {:>10.3} ms  ({} edges, cache {} hit / {} miss)",
            ms(self.distances),
            self.edge_count,
            self.cache_hits,
            self.cache_misses
        )?;
        writeln!(f, "  lifting      {:>10.3} ms", ms(self.lifting))?;
        writeln!(f, "  repartition  {:>10.3} ms", ms(self.repartition))?;
        if self.foreign_candidates > 0 {
            writeln!(f, "  skipped foreign candidates: {}", self.foreign_candidates)?;
        }
        if self.has_corpus_activity() {
            writeln!(
                f,
                "  corpus       tracelets {}/{} hit, slms {}/{} hit, distances {}/{} hit, \
                 liftings {}/{} hit",
                self.corpus_tracelet_hits,
                self.corpus_tracelet_hits + self.corpus_tracelet_misses,
                self.corpus_slm_hits,
                self.corpus_slm_hits + self.corpus_slm_misses,
                self.corpus_distance_hits,
                self.corpus_distance_hits + self.corpus_distance_misses,
                self.corpus_lifting_hits,
                self.corpus_lifting_hits + self.corpus_lifting_misses,
            )?;
            writeln!(
                f,
                "               {} bytes stored, {} corrupt entries dropped, {} evicted",
                self.corpus_bytes_stored, self.corpus_corrupt_dropped, self.corpus_evicted
            )?;
        }
        if self.has_incr_activity() {
            writeln!(
                f,
                "  incr         {} preloaded, {} flushed, {} unchanged, \
                 {} corrupt skipped, {} io errors",
                self.incr_preloaded,
                self.incr_flushed,
                self.incr_unchanged,
                self.incr_corrupt_skipped,
                self.incr_io_errors,
            )?;
        }
        if self.has_store_activity() {
            writeln!(
                f,
                "  store        {} tmp swept, {} write retries ({} lost), \
                 {} read retries ({} lost), {} corrupt, {} saves skipped, {} ms backoff",
                self.store_tmp_swept,
                self.store_write_retries,
                self.store_write_failures,
                self.store_read_retries,
                self.store_read_failures,
                self.store_corrupt_detected,
                self.store_checkpoints_skipped,
                self.store_retry_backoff_ms,
            )?;
        }
        writeln!(
            f,
            "  robustness   {} skipped fns ({} fuel-starved), {} rejected vtables, \
             {} diagnostic bytes",
            self.skipped_functions,
            self.fuel_exhausted,
            self.rejected_vtables,
            self.diagnostics_bytes
        )?;
        write!(f, "  total        {:>10.3} ms", ms(self.total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_stage() {
        let t = StageTimings {
            analysis: Duration::from_millis(12),
            training: Duration::from_micros(1500),
            threads: 4,
            slm_count: 39,
            slm_nodes: 410,
            slm_edges: 380,
            slm_bytes: 4096,
            slm_unique_words: 57,
            slm_total_words: 200,
            edge_count: 120,
            cache_hits: 7,
            cache_misses: 113,
            skipped_functions: 2,
            fuel_exhausted: 1,
            rejected_vtables: 3,
            diagnostics_bytes: 96,
            ..StageTimings::default()
        };
        let text = t.to_string();
        for needle in [
            "4 thread(s)",
            "analysis",
            "structural",
            "39 SLMs",
            "410 nodes, 380 edges, ~4.0 KiB, 57/200 unique words",
            "120 edges",
            "cache 7 hit / 113 miss",
            "lifting",
            "repartition",
            "2 skipped fns (1 fuel-starved), 3 rejected vtables, 96 diagnostic bytes",
            "total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The foreign-candidate line only appears when something was skipped.
        assert!(!text.contains("foreign"));
        let skipped = StageTimings { foreign_candidates: 2, ..t };
        assert!(skipped.to_string().contains("skipped foreign candidates: 2"));
        // The corpus line only appears when a corpus cache saw traffic.
        assert!(!text.contains("corpus"));
        let corpus = StageTimings {
            corpus_tracelet_hits: 9,
            corpus_tracelet_misses: 1,
            corpus_slm_hits: 4,
            corpus_slm_misses: 2,
            corpus_distance_hits: 3,
            corpus_distance_misses: 3,
            corpus_bytes_stored: 2048,
            ..t
        };
        let text = corpus.to_string();
        assert!(text.contains("tracelets 9/10 hit, slms 4/6 hit, distances 3/6 hit"), "{text}");
        assert!(text.contains("2048 bytes stored, 0 corrupt entries dropped"), "{text}");
        assert!(corpus.to_json().contains("\"corpus_tracelet_hits\":9"));
    }

    #[test]
    fn corpus_stats_absorb_mirrors_into_the_registry() {
        let delta = crate::CorpusStats {
            tracelet_hits: 5,
            tracelet_misses: 2,
            slm_hits: 3,
            slm_misses: 1,
            distance_hits: 8,
            distance_misses: 4,
            lifting_hits: 2,
            lifting_misses: 1,
            bytes_stored: 512,
            corrupt_dropped: 1,
            evicted: 6,
        };
        let mut t = StageTimings::default();
        let mut metrics = MetricsRegistry::new();
        t.absorb_corpus_stats(&delta, &mut metrics);
        assert!(t.has_corpus_activity());
        assert_eq!(t.corpus_slm_hits, 3);
        assert_eq!(t.corpus_lifting_hits, 2);
        assert_eq!(metrics.counter(names::CORPUS_DISTANCE_MISS), 4);
        assert_eq!(metrics.counter(names::CORPUS_LIFTING_MISS), 1);
        // Re-absorbing the registry round-trips the same numbers.
        let mut back = StageTimings::default();
        back.absorb_counters(&metrics);
        assert_eq!(back.corpus_bytes_stored, 512);
        assert_eq!(back.corpus_corrupt_dropped, 1);
        assert_eq!(back.corpus_evicted, 6);
    }

    #[test]
    fn store_stats_absorb_mirrors_into_the_registry() {
        let delta = crate::StoreStats {
            tmp_swept: 2,
            write_retries: 3,
            write_failures: 1,
            read_retries: 4,
            read_failures: 2,
            corrupt_detected: 1,
            checkpoints_skipped: 5,
            retry_backoff_ms: 700,
        };
        let mut t = StageTimings::default();
        // The store line only appears when the fault paths fired.
        assert!(!t.has_store_activity());
        assert!(!t.to_string().contains("store "));
        let mut metrics = MetricsRegistry::new();
        t.absorb_store_stats(&delta, &mut metrics);
        assert!(t.has_store_activity());
        assert_eq!(metrics.counter(names::STORE_WRITE_RETRIES), 3);
        assert_eq!(metrics.counter(names::STORE_CHECKPOINTS_SKIPPED), 5);
        let text = t.to_string();
        assert!(text.contains("2 tmp swept, 3 write retries (1 lost)"), "{text}");
        assert!(text.contains("1 corrupt, 5 saves skipped, 700 ms backoff"), "{text}");
        assert!(t.to_json().contains("\"store_read_retries\":4"));
        // Re-absorbing the registry round-trips the same numbers.
        let mut back = StageTimings::default();
        back.absorb_counters(&metrics);
        assert_eq!(back.store_tmp_swept, 2);
        assert_eq!(back.store_retry_backoff_ms, 700);
    }

    #[test]
    fn incr_stats_absorb_mirrors_into_the_registry() {
        let delta = crate::IncrStats {
            preloaded: 12,
            flushed: 3,
            unchanged: 9,
            corrupt_skipped: 1,
            io_errors: 0,
        };
        let mut t = StageTimings::default();
        // The incr line only appears when the layer saw traffic.
        assert!(!t.has_incr_activity());
        assert!(!t.to_string().contains("incr "));
        let mut metrics = MetricsRegistry::new();
        t.absorb_incr_stats(&delta, &mut metrics);
        assert!(t.has_incr_activity());
        assert_eq!(metrics.counter(names::INCR_PRELOADED), 12);
        assert_eq!(metrics.counter(names::INCR_UNCHANGED), 9);
        let text = t.to_string();
        assert!(text.contains("12 preloaded, 3 flushed, 9 unchanged"), "{text}");
        assert!(t.to_json().contains("\"incr_preloaded\":12"));
        let mut back = StageTimings::default();
        back.absorb_counters(&metrics);
        assert_eq!(back.incr_preloaded, 12);
        assert_eq!(back.incr_corrupt_skipped, 1);
    }
}
