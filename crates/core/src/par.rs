//! Deterministic data-parallel execution for the pipeline's hot loops.
//!
//! The three quadratic stages of [`crate::Rock::reconstruct`] — per-vtable
//! SLM training, per-child candidate-edge scoring, per-family
//! arborescences — are embarrassingly parallel: no item's result depends
//! on another's.
//! [`par_map`] fans a slice out over scoped OS threads with a
//! work-stealing index counter and returns results **in input order**, so
//! callers can merge them exactly as the serial loop would have and the
//! reconstruction stays bit-identical whatever [`Parallelism`] is chosen.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads the pipeline's hot loops may use.
///
/// Every setting produces the *same* [`crate::Reconstruction`]; this knob
/// trades wall-clock only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// Plain serial loops on the calling thread (no worker threads).
    Serial,
    /// Exactly `n` worker threads (`0` is clamped to `1`).
    Threads(usize),
}

impl Parallelism {
    /// The number of worker threads this setting resolves to.
    pub fn thread_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }
}

/// Maps `f` over `items`, possibly on several threads, returning results
/// in input order.
///
/// Work is distributed by an atomic claim counter, so workers steal the
/// next unclaimed index rather than being assigned fixed chunks; each
/// result lands in its item's slot regardless of which worker computed
/// it. The calling thread is worker zero — `Threads(n)` spawns only
/// `n - 1` OS threads — and with one thread (or one item) this
/// degenerates to a plain serial loop with no thread spawned at all.
pub(crate) fn par_map<T, R, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = parallelism.thread_count().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(item) = items.get(i) else { break };
        // Each index is claimed by exactly one worker, so the lock is
        // never contended; it only transports the result.
        *slots[i].lock().expect("result slot poisoned") = Some(f(item));
    };
    std::thread::scope(|scope| {
        for _ in 0..threads - 1 {
            // The closure captures only shared references, so it is
            // `Copy`: each worker gets its own copy of the same loop.
            scope.spawn(work);
        }
        work();
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner().expect("result slot poisoned").expect("every claimed slot is filled")
        })
        .collect()
}

/// Like [`par_map`], but each item runs inside `catch_unwind`: a
/// panicking item yields `Err(message)` in its slot instead of tearing
/// down the worker (and, through scoped-thread propagation, the whole
/// pipeline). Result order still follows input order, so merges stay
/// deterministic whatever the thread count.
pub(crate) fn par_map_catch<T, R, F>(
    parallelism: Parallelism,
    items: &[T],
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map(parallelism, items, |item| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Threads(4).thread_count(), 4);
        assert_eq!(Parallelism::Threads(0).thread_count(), 1);
        assert!(Parallelism::Auto.thread_count() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map(Parallelism::Serial, &items, |&x| x * x);
        let parallel = par_map(Parallelism::Threads(7), &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[999], 999 * 999);
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<i32> = par_map(Parallelism::Threads(8), &[], |&x: &i32| x);
        assert!(none.is_empty());
        assert_eq!(par_map(Parallelism::Auto, &[5], |&x| x + 1), vec![6]);
    }

    #[test]
    fn catch_contains_panics_in_order() {
        let items: Vec<u32> = (0..100).collect();
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let out = par_map_catch(par, &items, |&x| {
                if x % 10 == 3 {
                    panic!("boom {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 100);
            for (i, r) in out.iter().enumerate() {
                if i % 10 == 3 {
                    assert_eq!(*r, Err(format!("boom {i}")));
                } else {
                    assert_eq!(*r, Ok(i as u32 * 2));
                }
            }
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items slow so late items finish first on other
        // threads; order must still follow the input.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(Parallelism::Threads(4), &items, |&i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, items);
    }
}
