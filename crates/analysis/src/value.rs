//! Symbolic values tracked by the intra-procedural execution.

use std::fmt;

/// Identity of an abstract object within one function's execution.
///
/// `ObjId(0)` is always the value of `r0` at function entry (the potential
/// `this` pointer); higher ids are allocated for stack regions and call
/// returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The entry `r0` object.
    pub const ENTRY: ObjId = ObjId(0);
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A *view* of an object at a subobject base offset.
///
/// Single inheritance only ever uses base 0; multiple inheritance
/// produces adjusted pointers (base = subobject offset), and events are
/// attributed per view — each view can carry its own vtable (paper §5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubObj {
    /// The underlying abstract object.
    pub obj: ObjId,
    /// Byte offset of this view's subobject base.
    pub base: i32,
}

impl SubObj {
    /// Creates a view.
    pub fn new(obj: ObjId, base: i32) -> Self {
        SubObj { obj, base }
    }

    /// The primary view of an object.
    pub fn primary(obj: ObjId) -> Self {
        SubObj { obj, base: 0 }
    }
}

impl fmt::Display for SubObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.base == 0 {
            write!(f, "{}", self.obj)
        } else {
            write!(f, "{}+{}", self.obj, self.base)
        }
    }
}

/// A symbolic machine value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SymValue {
    /// Nothing known.
    #[default]
    Unknown,
    /// A concrete constant (possibly an address).
    Const(u64),
    /// A pointer to offset `ptr_off` past a subobject view.
    ObjPtr(SubObj),
    /// The vtable pointer loaded from offset 0 of a view (dispatch step 1).
    VptrOf(SubObj),
    /// A function pointer loaded from byte offset `1` of the vtable of
    /// view `0` (dispatch step 2).
    SlotOf(SubObj, i32),
}

impl SymValue {
    /// The view a pointer designates, if this value is an object pointer.
    pub fn as_obj(self) -> Option<SubObj> {
        match self {
            SymValue::ObjPtr(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymValue::Unknown => write!(f, "?"),
            SymValue::Const(c) => write!(f, "{c:#x}"),
            SymValue::ObjPtr(s) => write!(f, "&{s}"),
            SymValue::VptrOf(s) => write!(f, "vptr({s})"),
            SymValue::SlotOf(s, o) => write!(f, "slot({s}, {o})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_object() {
        assert_eq!(ObjId::ENTRY, ObjId(0));
        assert_eq!(ObjId::ENTRY.to_string(), "o0");
    }

    #[test]
    fn subobj_views() {
        let p = SubObj::primary(ObjId(3));
        assert_eq!(p.base, 0);
        assert_eq!(p.to_string(), "o3");
        let s = SubObj::new(ObjId(3), 16);
        assert_eq!(s.to_string(), "o3+16");
        assert_ne!(p, s);
    }

    #[test]
    fn value_display_and_as_obj() {
        let v = SymValue::ObjPtr(SubObj::primary(ObjId(1)));
        assert_eq!(v.as_obj(), Some(SubObj::primary(ObjId(1))));
        assert_eq!(SymValue::Unknown.as_obj(), None);
        assert_eq!(v.to_string(), "&o1");
        assert_eq!(SymValue::Const(16).to_string(), "0x10");
        assert_eq!(SymValue::default(), SymValue::Unknown);
    }
}
