//! The event alphabet (paper Table 1).

use std::fmt;

use rock_binary::Addr;

/// One event applied to an abstract object. Events are the alphabet Σ of
/// the statistical language models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Event {
    /// Call to the virtual function in vtable slot `i` of the object.
    C(usize),
    /// Read from the field at byte offset `i` of the object.
    R(i32),
    /// Write to the field at byte offset `i` of the object.
    W(i32),
    /// Object passed as the `this` pointer to a (direct) call.
    This,
    /// Object passed as the `i`-th argument of a call.
    Arg(usize),
    /// Object returned from the analyzed function.
    Ret,
    /// Direct call to the concrete function at `f` with the object as
    /// receiver.
    Call(Addr),
}

impl Event {
    /// Short tag for the event kind (useful for histograms and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::C(_) => "C",
            Event::R(_) => "R",
            Event::W(_) => "W",
            Event::This => "this",
            Event::Arg(_) => "Arg",
            Event::Ret => "ret",
            Event::Call(_) => "call",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::C(i) => write!(f, "C({i})"),
            Event::R(i) => write!(f, "R({i})"),
            Event::W(i) => write!(f, "W({i})"),
            Event::This => write!(f, "this"),
            Event::Arg(i) => write!(f, "Arg({i})"),
            Event::Ret => write!(f, "ret"),
            Event::Call(a) => write!(f, "call({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_event_kinds_roundtrip_display() {
        // Table 1 lists exactly these seven events.
        let events = [
            Event::C(2),
            Event::R(8),
            Event::W(16),
            Event::This,
            Event::Arg(1),
            Event::Ret,
            Event::Call(Addr::new(0x1000)),
        ];
        let shown: Vec<String> = events.iter().map(ToString::to_string).collect();
        assert_eq!(shown, vec!["C(2)", "R(8)", "W(16)", "this", "Arg(1)", "ret", "call(0x1000)"]);
        let kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        assert_eq!(kinds, vec!["C", "R", "W", "this", "Arg", "ret", "call"]);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Event::Ret, Event::C(1), Event::C(0), Event::This];
        v.sort();
        assert_eq!(v[0], Event::C(0));
        assert_eq!(v[1], Event::C(1));
    }
}
