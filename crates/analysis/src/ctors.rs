//! Constructor/destructor recognition pre-pass.
//!
//! A function is **ctor-like** for vtable `vt` if executing it stores
//! `vt`'s address through its `this` argument (`r0` at entry). Such
//! functions type the receivers of their call sites — this is how the
//! analysis types heap objects whose constructors were *not* inlined, and
//! it doubles as the signal for structural rule 3 (§5.2: "vt1's
//! constructor calls the constructor of some other type").

use std::collections::BTreeMap;

use rock_binary::Addr;
use rock_loader::{Function, LoadedBinary};

use crate::canon::{CachedCtors, ContentLabels, ExecCache};
use crate::{execute_function, AnalysisConfig, ObjId};

/// Map from function entry address to the vtable stores it performs on
/// its `this` argument: `(subobject offset, vtable address)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtorMap {
    stores: BTreeMap<Addr, Vec<(i32, Addr)>>,
}

impl CtorMap {
    /// The vtable stores of a ctor-like function, if `f` is one.
    pub fn stores_of(&self, f: Addr) -> Option<Vec<(i32, Addr)>> {
        self.stores.get(&f).cloned()
    }

    /// Returns `true` if `f` stores a vtable through `this`.
    pub fn is_ctor_like(&self, f: Addr) -> bool {
        self.stores.contains_key(&f)
    }

    /// The *primary* vtable (offset-0 store) of a ctor-like function.
    pub fn primary_vtable_of(&self, f: Addr) -> Option<Addr> {
        self.stores.get(&f)?.iter().find(|(off, _)| *off == 0).map(|(_, vt)| *vt)
    }

    /// All ctor-like functions.
    pub fn functions(&self) -> impl Iterator<Item = Addr> + '_ {
        self.stores.keys().copied()
    }

    /// Iterates `(function, stores)` entries in address order — the
    /// flattening a checkpoint serializer walks.
    pub fn entries(&self) -> impl Iterator<Item = (&Addr, &Vec<(i32, Addr)>)> {
        self.stores.iter()
    }

    /// Rebuilds a map from flattened entries (the inverse of
    /// [`CtorMap::entries`], used when restoring a checkpoint). Empty
    /// store lists are dropped, matching what recognition produces.
    pub fn from_entries(entries: impl IntoIterator<Item = (Addr, Vec<(i32, Addr)>)>) -> Self {
        CtorMap { stores: entries.into_iter().filter(|(_, s)| !s.is_empty()).collect() }
    }

    /// Number of ctor-like functions recognized.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Returns `true` if no ctor-like function was recognized.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }
}

/// Recognizes ctor-like functions in a loaded binary.
///
/// Runs the symbolic executor once per function with an empty [`CtorMap`]
/// (only *direct* vtable stores count) and collects, per function, the
/// typing of views rooted at the entry object.
pub fn recognize_ctors(loaded: &LoadedBinary, config: &AnalysisConfig) -> CtorMap {
    let mut stores: BTreeMap<Addr, Vec<(i32, Addr)>> = BTreeMap::new();
    for f in loaded.functions() {
        let found = ctor_stores_of(f, loaded, config);
        if !found.is_empty() {
            stores.insert(f.entry(), found);
        }
    }
    CtorMap { stores }
}

/// Like [`recognize_ctors`], but answers each function from the
/// content-addressed `cache` when possible and executes only the
/// misses, storing their results for the rest of the fleet.
///
/// A cached entry records vtables by content label; it is used only
/// when every label resolves to a unique vtable in *this* binary
/// (ambiguity falls back to live execution, deterministically per
/// binary). The pass contributes nothing to metrics, so reuse is
/// invisible in a job's outputs — the callers' bit-identity guarantees
/// hold unchanged.
pub fn recognize_ctors_cached(
    loaded: &LoadedBinary,
    config: &AnalysisConfig,
    labels: &ContentLabels,
    cache: &dyn ExecCache,
) -> CtorMap {
    let mut stores: BTreeMap<Addr, Vec<(i32, Addr)>> = BTreeMap::new();
    for f in loaded.functions() {
        let entry = f.entry();
        let key = labels.function_label(entry);
        let cached = key.and_then(|k| cache.load_ctors(k)).and_then(|c| {
            c.stores
                .iter()
                .map(|&(off, label)| Some((off, labels.vtable_by_label(label)?)))
                .collect::<Option<Vec<_>>>()
        });
        let found = match cached {
            Some(found) => found,
            None => {
                let found = ctor_stores_of(f, loaded, config);
                let encoded = found
                    .iter()
                    .map(|&(off, vt)| Some((off, labels.vtable_label(vt)?)))
                    .collect::<Option<Vec<_>>>();
                if let (Some(k), Some(stores)) = (key, encoded) {
                    cache.store_ctors(k, &CachedCtors { stores });
                }
                found
            }
        };
        if !found.is_empty() {
            stores.insert(entry, found);
        }
    }
    CtorMap { stores }
}

/// The sorted `(subobject offset, vtable)` stores one function performs
/// through `this`, by live symbolic execution against an empty map.
fn ctor_stores_of(
    f: &Function,
    loaded: &LoadedBinary,
    config: &AnalysisConfig,
) -> Vec<(i32, Addr)> {
    let empty = CtorMap::default();
    let mut found: Vec<(i32, Addr)> = Vec::new();
    for path in execute_function(f, loaded, &empty, config) {
        for sub in &path.subobjects {
            if sub.view.obj != ObjId::ENTRY {
                continue;
            }
            if let Some(vt) = sub.vtable {
                if !found.contains(&(sub.view.base, vt)) {
                    found.push((sub.view.base, vt));
                }
            }
        }
    }
    found.sort();
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_binary::{ImageBuilder, Instr, Reg};

    fn build() -> (LoadedBinary, Vec<Addr>, Vec<Addr>) {
        let mut b = ImageBuilder::new();
        let m = b.begin_function("A::m");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::Ret);
        b.end_function();
        let vt_a = b.add_vtable("vtable for A", vec![m]);
        let vt_b = b.add_vtable("vtable for B", vec![m]);
        // A's ctor: classic store at offset 0.
        let ctor_a = b.begin_function("A::A");
        b.push(Instr::Enter { frame: 0 });
        b.push_mov_vtable_addr(Reg::R7, vt_a);
        b.push(Instr::Store { base: Reg::R0, offset: 0, src: Reg::R7 });
        b.push(Instr::Ret);
        b.end_function();
        // B's ctor with MI-style second store at offset 16.
        let ctor_b = b.begin_function("B::B");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::MovReg { dst: Reg::R6, src: Reg::R0 });
        b.push_mov_vtable_addr(Reg::R7, vt_b);
        b.push(Instr::Store { base: Reg::R6, offset: 0, src: Reg::R7 });
        b.push_mov_vtable_addr(Reg::R7, vt_a);
        b.push(Instr::Store { base: Reg::R6, offset: 16, src: Reg::R7 });
        b.push(Instr::Ret);
        b.end_function();
        // Not a ctor: writes a plain constant.
        b.begin_function("plain");
        b.push(Instr::Enter { frame: 0 });
        b.push(Instr::MovImm { dst: Reg::R7, imm: 42 });
        b.push(Instr::Store { base: Reg::R0, offset: 0, src: Reg::R7 });
        b.push(Instr::Ret);
        b.end_function();
        let (mut image, layout) = b.finish_with_layout();
        image.strip();
        let loaded = LoadedBinary::load(image).unwrap();
        (
            loaded,
            vec![layout.function(ctor_a), layout.function(ctor_b)],
            vec![layout.vtable(vt_a), layout.vtable(vt_b)],
        )
    }

    #[test]
    fn recognizes_ctor_like_functions() {
        let (loaded, ctors, vts) = build();
        let map = recognize_ctors(&loaded, &AnalysisConfig::default());
        assert_eq!(map.len(), 2);
        assert!(map.is_ctor_like(ctors[0]));
        assert!(map.is_ctor_like(ctors[1]));
        assert_eq!(map.primary_vtable_of(ctors[0]), Some(vts[0]));
        assert_eq!(map.primary_vtable_of(ctors[1]), Some(vts[1]));
        assert_eq!(map.stores_of(ctors[1]).unwrap(), vec![(0, vts[1]), (16, vts[0])]);
        assert_eq!(map.functions().count(), 2);
        assert!(!map.is_empty());
    }

    #[test]
    fn plain_functions_are_not_ctors() {
        let (loaded, _, _) = build();
        let map = recognize_ctors(&loaded, &AnalysisConfig::default());
        // `plain` and `A::m` are not ctor-like.
        let plain = loaded.functions().last().unwrap().entry();
        assert!(!map.is_ctor_like(plain));
        assert_eq!(map.stores_of(plain), None);
        assert_eq!(map.primary_vtable_of(plain), None);
    }

    #[test]
    fn empty_map_queries() {
        let map = CtorMap::default();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert!(!map.is_ctor_like(Addr::new(0x1000)));
    }
}
