//! Position-independent content labels for functions and vtables.
//!
//! Two binaries that contain the same function body at different load
//! addresses must map it to the same cache key, otherwise a corpus-wide
//! cache degenerates to per-binary scope. Raw instruction bytes are not
//! enough: every `Call`, `Jmp`, `Branch` and vtable-address `MovImm`
//! embeds an absolute address that shifts whenever the surrounding
//! layout changes. This module computes **content labels** that erase
//! exactly those position-dependent operands:
//!
//! * intra-function control flow (`Jmp`/`Branch` targets) is rewritten
//!   as an offset relative to the function entry;
//! * direct call targets and code/data addresses materialized by
//!   `MovImm` (function entries, vtable addresses) are replaced by a
//!   placeholder and re-introduced as *operand references*;
//! * every other operand (register indices, field offsets, non-address
//!   immediates) is hashed literally.
//!
//! The masked stream gives each function a round-0 label; `ROUNDS`
//! Weisfeiler–Lehman refinement rounds then fold in the labels of the
//! referenced functions and vtables (and, for vtables, their slot
//! functions), so a function's final label captures its call graph and
//! vtable neighborhood to depth `ROUNDS` — position-independently.
//! Labels are 128-bit (two independent FNV-1a streams), making
//! accidental collisions across even very large corpora negligible;
//! equal labels therefore mean equal bodies *and* equal dependency
//! neighborhoods, which is exactly the precondition for reusing a
//! cached symbolic-execution result or trained model.

use std::collections::BTreeMap;
use std::sync::Arc;

use rock_binary::{Addr, Instr};
use rock_loader::LoadedBinary;

use crate::Event;

/// Weisfeiler–Lehman refinement rounds. Symbolic execution of a function
/// observes its own body, the ctor-store lists of its direct callees, and
/// the identities of everything it calls; eight rounds of refinement
/// separate any two functions whose behavior differs within that window
/// with a wide margin.
const ROUNDS: usize = 8;

/// A 128-bit position-independent content label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    /// Low 64 bits (first FNV-1a stream).
    pub lo: u64,
    /// High 64 bits (second FNV-1a stream).
    pub hi: u64,
}

impl Label {
    /// The label folded into one `u128` (for compact map keys).
    pub fn as_u128(self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

/// Two independent FNV-1a streams over the same byte sequence.
///
/// FNV-1a with distinct offset bases decorrelates quickly; the pair
/// behaves as a 128-bit fingerprint for hash-consing purposes.
#[derive(Clone, Copy)]
struct Mixer {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Mixer {
    fn new() -> Self {
        Mixer { a: 0xcbf2_9ce4_8422_2325, b: 0x9e37_79b9_7f4a_7c15 }
    }

    fn byte(&mut self, v: u8) {
        self.a = (self.a ^ u64::from(v)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(v ^ 0xa5)).wrapping_mul(FNV_PRIME);
    }

    fn u64(&mut self, v: u64) {
        // Word-at-a-time: one multiply-and-fold per stream instead of
        // eight byte steps. The xor-shift folds the product's high bits
        // back down (a bare FNV multiply only carries entropy upward);
        // each step stays a bijection of the state for fixed input, and
        // the rotation decorrelates the two streams. Labels never leave
        // process memory, so the constants are free to differ from the
        // byte-wise FNV walk.
        self.a = (self.a ^ v).wrapping_mul(FNV_PRIME);
        self.a ^= self.a >> 32;
        self.b = (self.b ^ v.rotate_left(17)).wrapping_mul(FNV_PRIME);
        self.b ^= self.b >> 32;
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn label(&mut self, l: Label) {
        self.u64(l.lo);
        self.u64(l.hi);
    }

    fn finish(self) -> Label {
        Label { lo: self.a, hi: self.b }
    }
}

/// An operand reference discovered while masking one function's stream:
/// the label refinement folds the referent's previous-round label back
/// in at the operand's position.
#[derive(Clone, Copy)]
enum OperandRef {
    Function(Addr),
    Vtable(Addr),
}

/// Content labels for every function and vtable of one loaded binary.
#[derive(Clone, Debug, Default)]
pub struct ContentLabels {
    functions: BTreeMap<Addr, Label>,
    vtables: BTreeMap<Addr, Label>,
    /// Inverse vtable map; `None` marks an ambiguous label (two distinct
    /// vtables hashing equal — cache translation refuses such labels).
    vt_by_label: BTreeMap<Label, Option<Addr>>,
}

impl ContentLabels {
    /// Computes the labels of every function and vtable in `loaded`.
    ///
    /// The refinement loop is index-based: addresses are resolved to
    /// dense function/vtable indices once, so each of the `ROUNDS`
    /// passes is straight array traversal — no per-round map lookups.
    pub fn compute(loaded: &LoadedBinary) -> ContentLabels {
        let fn_index: BTreeMap<Addr, usize> =
            loaded.functions().iter().enumerate().map(|(i, f)| (f.entry(), i)).collect();
        let vt_index: BTreeMap<Addr, usize> =
            loaded.vtables().iter().enumerate().map(|(i, v)| (v.addr(), i)).collect();

        /// An operand reference with its referent pre-resolved; raw
        /// variants keep unrecovered addresses (position-dependent, but
        /// such references never recur cross-binary).
        enum Resolved {
            Function(usize),
            Vtable(usize),
            Raw(u64),
        }

        // Round 0: masked instruction streams, plus per-function operand
        // reference lists (reused verbatim by every refinement round).
        let mut fn_labels: Vec<Label> = Vec::with_capacity(loaded.functions().len());
        let mut fn_refs: Vec<Vec<Resolved>> = Vec::with_capacity(loaded.functions().len());
        for f in loaded.functions() {
            let entry = f.entry();
            let mut m = Mixer::new();
            let mut refs = Vec::new();
            m.u64(f.instrs().len() as u64);
            for di in f.instrs() {
                mask_instr(
                    &mut m,
                    &mut refs,
                    di.instr,
                    entry,
                    |a| fn_index.contains_key(&a),
                    |a| vt_index.contains_key(&a),
                );
            }
            fn_labels.push(m.finish());
            fn_refs.push(
                refs.into_iter()
                    .map(|r| match r {
                        OperandRef::Function(a) => match fn_index.get(&a) {
                            Some(&i) => Resolved::Function(i),
                            None => Resolved::Raw(a.value()),
                        },
                        OperandRef::Vtable(a) => match vt_index.get(&a) {
                            Some(&i) => Resolved::Vtable(i),
                            None => Resolved::Raw(a.value()),
                        },
                    })
                    .collect(),
            );
        }
        // Round 0 for vtables: slot count only (slot identities join in
        // the refinement rounds, once functions have labels). Slots are
        // pre-resolved to function indices alongside.
        let mut vt_labels: Vec<Label> = Vec::with_capacity(loaded.vtables().len());
        let mut vt_slots: Vec<Vec<Resolved>> = Vec::with_capacity(loaded.vtables().len());
        for vt in loaded.vtables() {
            let mut m = Mixer::new();
            m.byte(v_tag());
            m.u64(vt.len() as u64);
            vt_labels.push(m.finish());
            vt_slots.push(
                vt.slots()
                    .iter()
                    .map(|slot| match fn_index.get(slot) {
                        Some(&i) => Resolved::Function(i),
                        None => Resolved::Raw(slot.value()),
                    })
                    .collect(),
            );
        }

        for _ in 0..ROUNDS {
            let next_fn: Vec<Label> = fn_labels
                .iter()
                .zip(&fn_refs)
                .map(|(label, refs)| {
                    let mut m = Mixer::new();
                    m.label(*label);
                    for r in refs {
                        match r {
                            Resolved::Function(i) => {
                                m.byte(1);
                                m.label(fn_labels[*i]);
                            }
                            Resolved::Vtable(i) => {
                                m.byte(2);
                                m.label(vt_labels[*i]);
                            }
                            Resolved::Raw(v) => {
                                m.byte(3);
                                m.u64(*v);
                            }
                        }
                    }
                    m.finish()
                })
                .collect();
            let next_vt: Vec<Label> = vt_labels
                .iter()
                .zip(&vt_slots)
                .map(|(label, slots)| {
                    let mut m = Mixer::new();
                    m.label(*label);
                    for s in slots {
                        match s {
                            Resolved::Function(i) => m.label(fn_labels[*i]),
                            Resolved::Vtable(_) => unreachable!("slots hold functions"),
                            Resolved::Raw(v) => m.u64(*v),
                        }
                    }
                    m.finish()
                })
                .collect();
            fn_labels = next_fn;
            vt_labels = next_vt;
        }

        let functions: BTreeMap<Addr, Label> =
            fn_index.iter().map(|(a, &i)| (*a, fn_labels[i])).collect();
        let vtables: BTreeMap<Addr, Label> =
            vt_index.iter().map(|(a, &i)| (*a, vt_labels[i])).collect();
        let mut vt_by_label: BTreeMap<Label, Option<Addr>> = BTreeMap::new();
        for (addr, label) in &vtables {
            vt_by_label.entry(*label).and_modify(|slot| *slot = None).or_insert(Some(*addr));
        }
        ContentLabels { functions, vtables, vt_by_label }
    }

    /// The label of the function entered at `entry`, if it was labeled.
    pub fn function_label(&self, entry: Addr) -> Option<Label> {
        self.functions.get(&entry).copied()
    }

    /// The label of the vtable at `addr`, if it was labeled.
    pub fn vtable_label(&self, addr: Addr) -> Option<Label> {
        self.vtables.get(&addr).copied()
    }

    /// The unique vtable carrying `label` in this binary, or `None` if
    /// no — or more than one — vtable hashes to it.
    pub fn vtable_by_label(&self, label: Label) -> Option<Addr> {
        self.vt_by_label.get(&label).copied().flatten()
    }

    /// Rewrites one event into its position-independent form: direct
    /// call targets become the callee's content label (folded to 64
    /// bits); every other event is already position-free. Unlabeled
    /// targets (calls outside the recovered function set) keep their raw
    /// address — they cannot alias a labeled callee because labeled
    /// substitutes have their high bit mixed by the label streams, and
    /// more importantly both cold and warm runs apply the same rewrite.
    pub fn canonical_event(&self, e: Event) -> Event {
        match e {
            Event::Call(target) => match self.function_label(target) {
                Some(l) => Event::Call(Addr::new(l.lo ^ l.hi)),
                None => e,
            },
            other => other,
        }
    }
}

/// Tag byte for vtable round-0 streams (distinct from any instr tag).
fn v_tag() -> u8 {
    0xee
}

/// One contributing sub-object's canonical, pre-windowed tracelets
/// within a cached execution.
///
/// The typing vtable is recorded by content [`Label`] rather than load
/// address, so the entry is valid in any binary that contains an
/// unambiguous vtable with that label. Pieces are already split at the
/// configured tracelet length and shared (`Arc`): attributing a hit
/// costs reference counts, not event copies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedSub {
    /// `Some(label)` — the typing vtable's content label; `None` — the
    /// host-entry view (`this` of a virtual function), attributed to
    /// every vtable containing the function at hit time.
    pub vtable: Option<Label>,
    /// Canonical events ([`ContentLabels::canonical_event`] applied),
    /// split into tracelet windows.
    pub pieces: Vec<Arc<[Event]>>,
}

/// A complete, position-independent symbolic-execution result for one
/// function body: every contributing sub-object's windowed tracelets
/// (path-major order) plus the fuel the execution consumed (credited to
/// the fuel counter on a hit so metrics stay byte-identical between
/// cold and warm runs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedExec {
    /// Contributing sub-objects, in path-major attribution order.
    pub subs: Vec<CachedSub>,
    /// Fuel the original execution spent.
    pub fuel_spent: u64,
}

/// A position-independent ctor-recognition result for one function
/// body: the `(subobject offset, vtable content label)` stores the
/// function performs through its `this` argument. An *empty* list is a
/// cacheable fact too — most functions store no vtable, and skipping
/// negative results would leave the bulk of the recognition pass
/// re-executing on every job.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CachedCtors {
    /// `(subobject offset, vtable content label)` pairs, sorted.
    pub stores: Vec<(i32, Label)>,
}

/// A content-addressed store for symbolic-execution results, keyed by
/// function content label. Implementations mix their own configuration
/// salt into the key (analysis knobs change results, so they must change
/// the key) and are free to drop or refuse entries at will — a miss is
/// always answered by live execution.
pub trait ExecCache: Sync {
    /// Looks up the cached execution for a function label. Entries are
    /// shared (`Arc`): a hit costs a verification pass, never a decode.
    fn load(&self, key: Label) -> Option<Arc<CachedExec>>;
    /// Stores an execution result under a function label.
    fn store(&self, key: Label, exec: Arc<CachedExec>);
    /// Looks up the cached ctor-recognition result for a function label.
    fn load_ctors(&self, _key: Label) -> Option<CachedCtors> {
        None
    }
    /// Stores a ctor-recognition result under a function label.
    fn store_ctors(&self, _key: Label, _ctors: &CachedCtors) {}
}

/// Hashes one instruction into `m` with position-dependent operands
/// masked, appending discovered function/vtable references to `refs`.
fn mask_instr(
    m: &mut Mixer,
    refs: &mut Vec<OperandRef>,
    instr: Instr,
    entry: Addr,
    is_function: impl Fn(Addr) -> bool,
    is_vtable: impl Fn(Addr) -> bool,
) {
    match instr {
        Instr::Enter { frame } => {
            m.byte(0);
            m.u64(u64::from(frame));
        }
        Instr::Ret => m.byte(1),
        Instr::MovImm { dst, imm } => {
            m.byte(2);
            m.byte(dst.index());
            let addr = Addr::new(imm);
            if is_vtable(addr) {
                // Masked: the vtable's identity joins via the refinement
                // rounds instead of its load address.
                m.byte(0xfd);
                refs.push(OperandRef::Vtable(addr));
            } else if is_function(addr) {
                m.byte(0xfc);
                refs.push(OperandRef::Function(addr));
            } else {
                m.byte(0xfb);
                m.u64(imm);
            }
        }
        Instr::MovReg { dst, src } => {
            m.byte(3);
            m.byte(dst.index());
            m.byte(src.index());
        }
        Instr::Load { dst, base, offset } => {
            m.byte(4);
            m.byte(dst.index());
            m.byte(base.index());
            m.i64(i64::from(offset));
        }
        Instr::Store { base, offset, src } => {
            m.byte(5);
            m.byte(base.index());
            m.i64(i64::from(offset));
            m.byte(src.index());
        }
        Instr::Lea { dst, base, offset } => {
            m.byte(6);
            m.byte(dst.index());
            m.byte(base.index());
            m.i64(i64::from(offset));
        }
        Instr::Call { target } => {
            m.byte(7);
            if is_function(target) {
                refs.push(OperandRef::Function(target));
            } else {
                m.u64(target.value());
            }
        }
        Instr::CallReg { target } => {
            m.byte(8);
            m.byte(target.index());
        }
        Instr::Jmp { target } => {
            m.byte(9);
            m.i64(target.value().wrapping_sub(entry.value()) as i64);
        }
        Instr::Branch { cond, target } => {
            m.byte(10);
            m.byte(cond.index());
            m.i64(target.value().wrapping_sub(entry.value()) as i64);
        }
        Instr::BinOp { op, dst, lhs, rhs } => {
            m.byte(11);
            m.byte(op.code());
            m.byte(dst.index());
            m.byte(lhs.index());
            m.byte(rhs.index());
        }
        Instr::Nop => m.byte(12),
        Instr::Halt => m.byte(13),
    }
}
