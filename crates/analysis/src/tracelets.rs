//! Tracelet pooling and attribution: `TT(t) = ⋃_{type(o)=t} OT(o)`.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rock_binary::Addr;
use rock_budget::Budget;
use rock_loader::LoadedBinary;

use rock_trace::{names, LocalSpans, MetricsRegistry};

use crate::canon::{CachedExec, CachedSub, ContentLabels, ExecCache};
use crate::{
    execute_function_metered, recognize_ctors, recognize_ctors_cached, AnalysisConfig, CtorMap,
    Event, ExecStatus, ObjId,
};

/// Tracelets pooled per binary type (vtable address). Tracelets are
/// shared slices (`Arc`): attribution to several hosting vtables, and
/// corpus-cache hits, alias one allocation instead of copying events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TypeTracelets {
    map: BTreeMap<Addr, Vec<Arc<[Event]>>>,
}

impl TypeTracelets {
    /// Adds one tracelet for a type.
    pub fn add(&mut self, vtable: Addr, tracelet: Arc<[Event]>) {
        if !tracelet.is_empty() {
            self.map.entry(vtable).or_default().push(tracelet);
        }
    }

    /// All tracelets of a type (empty slice if none).
    pub fn of_type(&self, vtable: Addr) -> &[Arc<[Event]>] {
        self.map.get(&vtable).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Types that have at least one tracelet.
    pub fn types(&self) -> impl Iterator<Item = Addr> + '_ {
        self.map.keys().copied()
    }

    /// Total number of tracelets across all types.
    pub fn total(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Returns `true` if no tracelets were extracted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Interns the binary's **global** event alphabet: every distinct
    /// event across all types' tracelets, with dense `u32` ids in `Ord`
    /// order. Because ids depend only on the event *set* (not extraction
    /// order), the table is deterministic per binary — the same property
    /// the per-model SLM interners rely on — and can be shared by any
    /// consumer that wants to work on ids rather than `Event` values.
    pub fn event_table(&self) -> rock_slm::SymbolTable<Event> {
        rock_slm::SymbolTable::from_symbols(
            self.map.values().flatten().flat_map(|t| t.iter()).copied(),
        )
    }
}

/// Aggregate statistics of a type's tracelet pool, for diagnostics and
/// the CLI's `stats` command.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceletStats {
    /// Number of tracelets.
    pub tracelets: usize,
    /// Total events across all tracelets.
    pub events: usize,
    /// Distinct event symbols (the type's alphabet size).
    pub alphabet: usize,
    /// Event counts by kind tag (`"C"`, `"R"`, `"W"`, `"this"`, `"Arg"`,
    /// `"ret"`, `"call"`).
    pub by_kind: BTreeMap<&'static str, usize>,
}

impl TypeTracelets {
    /// Computes aggregate statistics for one type's pool.
    pub fn stats_of(&self, vtable: Addr) -> TraceletStats {
        let pool = self.of_type(vtable);
        let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut distinct = std::collections::BTreeSet::new();
        let mut events = 0usize;
        for t in pool {
            for e in t.iter() {
                *by_kind.entry(e.kind()).or_insert(0) += 1;
                distinct.insert(*e);
                events += 1;
            }
        }
        TraceletStats { tracelets: pool.len(), events, alphabet: distinct.len(), by_kind }
    }
}

impl fmt::Display for TraceletStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tracelets, {} events, |Σ|={}", self.tracelets, self.events, self.alphabet)?;
        for (k, n) in &self.by_kind {
            write!(f, ", {k}:{n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TypeTracelets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (vt, ts) in &self.map {
            writeln!(f, "type @{vt}: {} tracelets", ts.len())?;
        }
        Ok(())
    }
}

/// Why one function contributed nothing to the tracelet pools.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IncidentKind {
    /// The symbolic executor panicked; the payload message is preserved.
    Panicked(String),
    /// The per-function fuel budget ran out.
    FuelExhausted,
    /// The per-function wall-clock deadline passed.
    DeadlineExceeded,
    /// A hook directed the extractor to skip the function.
    Skipped,
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidentKind::Panicked(msg) => write!(f, "panicked: {msg}"),
            IncidentKind::FuelExhausted => write!(f, "fuel exhausted"),
            IncidentKind::DeadlineExceeded => write!(f, "deadline exceeded"),
            IncidentKind::Skipped => write!(f, "skipped by hook"),
        }
    }
}

/// What to do with one function, decided by [`AnalysisHooks`] before its
/// symbolic execution starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FunctionDirective {
    /// Analyze normally.
    Run,
    /// Skip the function, recording an incident.
    Skip,
    /// Panic inside the (contained) execution — exercises the
    /// panic-isolation path deterministically.
    Panic,
    /// Analyze with this fuel budget instead of the configured one.
    Fuel(Budget),
}

/// Observation/injection points of the behavioral analysis.
///
/// The production pipeline passes a no-op implementation; the
/// fault-injection harness implements this to deterministically skip,
/// panic, or starve named functions. Implementations must be `Sync`
/// because hook objects are shared across pipeline stages.
pub trait AnalysisHooks: Sync {
    /// Decides the fate of `function` before it is analyzed.
    fn before_function(&self, function: Addr) -> FunctionDirective {
        let _ = function;
        FunctionDirective::Run
    }
}

/// The default hooks: analyze everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoHooks;

impl AnalysisHooks for NoHooks {}

/// The complete output of the behavioral analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Analysis {
    tracelets: TypeTracelets,
    ctors: CtorMap,
    incidents: Vec<(Addr, IncidentKind)>,
}

impl Analysis {
    /// Reassembles an analysis from its three parts (checkpoint restore).
    ///
    /// The parts round-trip: serializing via [`Analysis::tracelets`],
    /// [`Analysis::ctors`] and [`Analysis::incidents`] and rebuilding
    /// through this constructor compares equal to the original.
    pub fn from_parts(
        tracelets: TypeTracelets,
        ctors: CtorMap,
        incidents: Vec<(Addr, IncidentKind)>,
    ) -> Self {
        Analysis { tracelets, ctors, incidents }
    }

    /// Tracelets per type.
    pub fn tracelets(&self) -> &TypeTracelets {
        &self.tracelets
    }

    /// The recognized ctor-like functions.
    pub fn ctors(&self) -> &CtorMap {
        &self.ctors
    }

    /// Functions that contributed nothing and why, in function order.
    pub fn incidents(&self) -> &[(Addr, IncidentKind)] {
        &self.incidents
    }

    /// The binary-wide interned event alphabet
    /// (see [`TypeTracelets::event_table`]).
    pub fn event_table(&self) -> rock_slm::SymbolTable<Event> {
        self.tracelets.event_table()
    }
}

/// Splits an event sequence into non-overlapping windows of at most
/// `len` events (the paper splits sequences "into subsequences of limited
/// length (up to length 7)").
pub(crate) fn windows(events: &[Event], len: usize) -> Vec<Arc<[Event]>> {
    assert!(len > 0, "window length must be positive");
    events.chunks(len).map(Arc::from).collect()
}

/// Runs the full behavioral analysis over a loaded binary:
/// ctor recognition, per-function symbolic execution, and tracelet
/// attribution.
///
/// Attribution rules (§3.2):
///
/// * views typed in-function (vtable store or ctor call) contribute to
///   that vtable's pool;
/// * the `this` view of a **virtual function** (a function appearing in
///   vtable slots) contributes to every vtable containing the function.
pub fn extract_tracelets(loaded: &LoadedBinary, config: &AnalysisConfig) -> Analysis {
    extract_tracelets_with(loaded, config, &NoHooks)
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`extract_tracelets`], but with per-function fault isolation
/// driven by `hooks`.
///
/// Every function is analyzed inside `catch_unwind`, so a panicking
/// symbolic execution (a bug, or an injected fault) is contained: the
/// function simply contributes no tracelets and an incident is recorded.
/// The same holds for fuel/deadline exhaustion — a function either
/// completes within its budget or is excluded wholesale, which keeps the
/// surviving pools identical to a clean run over the surviving functions.
pub fn extract_tracelets_with(
    loaded: &LoadedBinary,
    config: &AnalysisConfig,
    hooks: &dyn AnalysisHooks,
) -> Analysis {
    let mut spans = LocalSpans::disabled();
    let mut metrics = MetricsRegistry::new();
    extract_tracelets_instrumented(loaded, config, hooks, &mut spans, &mut metrics)
}

/// Like [`extract_tracelets_with`], but records one
/// [`rock_trace::names::ANALYSIS_FUNCTION`] span per symbolic execution
/// (subject = entry address) into `spans` and folds fuel accounting
/// ([`rock_trace::names::ANALYSIS_FUEL_SPENT`], completed executions
/// only) into `metrics`.
///
/// Instrumentation never changes the analysis: the returned [`Analysis`]
/// is bit-identical to [`extract_tracelets_with`]'s, and a disabled
/// `spans` buffer makes the whole span path a no-op. The buffer's trace
/// level applies transparently — at `stage` or `sampled` the filtered
/// `analysis.function` spans cost no clock read and no push, decided
/// purely by `(name, entry address)`, so the recorded set is the same
/// on every rerun.
pub fn extract_tracelets_instrumented(
    loaded: &LoadedBinary,
    config: &AnalysisConfig,
    hooks: &dyn AnalysisHooks,
    spans: &mut LocalSpans,
    metrics: &mut MetricsRegistry,
) -> Analysis {
    extract_inner(loaded, config, hooks, spans, metrics, None)
}

/// Like [`extract_tracelets_instrumented`], but with **canonical call
/// events** and an optional content-addressed execution cache.
///
/// Direct-call events are rewritten to the callee's position-independent
/// content label ([`ContentLabels::canonical_event`]), so the extracted
/// pools — and everything downstream of them — hash identically across
/// binaries that lay the same code out at different addresses. When
/// `cache` is given, each completed execution is stored under the
/// function's content label and later extractions (in any binary) reuse
/// the stored result instead of re-executing, crediting the original
/// fuel cost so metrics stay byte-identical between cold and warm runs.
///
/// Cache entries are consulted only for plain [`FunctionDirective::Run`]
/// functions under the configured fuel and no wall-clock deadline;
/// fault-injected, fuel-overridden or deadline-bounded executions always
/// run live (their outcome is not a pure function of content).
pub fn extract_tracelets_canonical(
    loaded: &LoadedBinary,
    config: &AnalysisConfig,
    hooks: &dyn AnalysisHooks,
    spans: &mut LocalSpans,
    metrics: &mut MetricsRegistry,
    labels: &ContentLabels,
    cache: Option<&dyn ExecCache>,
) -> Analysis {
    extract_inner(loaded, config, hooks, spans, metrics, Some((labels, cache)))
}

/// Resolves one cached execution's attributions for this binary: every
/// stored vtable label must resolve to a unique vtable here, otherwise
/// the entry is rejected (and the function runs live). Rejection is
/// deterministic per binary — it depends only on the binary's own label
/// map — so cold and warm runs agree on it. `None` in the returned list
/// marks a host-entry attribution.
fn resolve_cached(labels: &ContentLabels, cached: &CachedExec) -> Option<Vec<Option<Addr>>> {
    cached
        .subs
        .iter()
        .map(|s| match s.vtable {
            None => Some(None),
            Some(label) => labels.vtable_by_label(label).map(Some),
        })
        .collect()
}

/// One function's tracelet contribution to a single attribution target:
/// the typing vtable's address (`None` = host-entry view) and the
/// windowed pieces it contributed.
type Contribution = (Option<Addr>, Vec<Arc<[Event]>>);

/// Encodes one function's tracelet contributions as a
/// position-independent cache entry, or `None` if any typing vtable has
/// no content label (cannot happen for vtables the loader accepted, but
/// refusing is safer than storing a lossy entry). The pieces are shared
/// with the live pools, so encoding costs reference counts.
fn encode_cached(
    labels: &ContentLabels,
    contrib: &[Contribution],
    fuel_spent: u64,
) -> Option<CachedExec> {
    let mut subs = Vec::with_capacity(contrib.len());
    for (attr, pieces) in contrib {
        let vtable = match attr {
            None => None,
            Some(addr) => Some(labels.vtable_label(*addr)?),
        };
        subs.push(CachedSub { vtable, pieces: pieces.clone() });
    }
    Some(CachedExec { subs, fuel_spent })
}

fn extract_inner(
    loaded: &LoadedBinary,
    config: &AnalysisConfig,
    hooks: &dyn AnalysisHooks,
    spans: &mut LocalSpans,
    metrics: &mut MetricsRegistry,
    canon: Option<(&ContentLabels, Option<&dyn ExecCache>)>,
) -> Analysis {
    // The ctor pre-pass is a pure function of content under the same
    // conditions as the tracelet tier (no wall-clock deadline; hooks
    // never reach it), so it shares the execution cache.
    let ctors = match canon {
        Some((labels, Some(cache))) if config.deadline_ms.is_none() => {
            recognize_ctors_cached(loaded, config, labels, cache)
        }
        _ => recognize_ctors(loaded, config),
    };
    let mut tracelets = TypeTracelets::default();
    let mut incidents: Vec<(Addr, IncidentKind)> = Vec::new();

    for f in loaded.functions() {
        let entry = f.entry();
        let mut cfg = *config;
        let mut inject_panic = false;
        let mut fuel_overridden = false;
        match hooks.before_function(entry) {
            FunctionDirective::Run => {}
            FunctionDirective::Skip => {
                incidents.push((entry, IncidentKind::Skipped));
                continue;
            }
            FunctionDirective::Panic => inject_panic = true,
            FunctionDirective::Fuel(b) => {
                cfg.fuel = b;
                fuel_overridden = true;
            }
        }
        let token = spans.enter(names::ANALYSIS_FUNCTION, entry.value());

        // A cached result stands in for live execution only when the
        // outcome is a pure function of the body: no injected fault, no
        // per-function fuel override, no wall-clock deadline.
        let cacheable = !inject_panic && !fuel_overridden && config.deadline_ms.is_none();
        let fkey = canon.and_then(|(labels, _)| labels.function_label(entry));
        let host_vtables: Vec<Addr> =
            loaded.vtables_containing(entry).iter().map(|vt| vt.addr()).collect();

        // Cache hit: attribute the shared pieces directly — reference
        // counts, no event copies, no re-windowing.
        if let (Some((labels, Some(cache))), Some(key)) = (canon, fkey) {
            if cacheable {
                if let Some(cached) = cache.load(key) {
                    if let Some(attrs) = resolve_cached(labels, &cached) {
                        metrics.add(names::ANALYSIS_FUEL_SPENT, cached.fuel_spent);
                        for (attr, sub) in attrs.iter().zip(&cached.subs) {
                            match attr {
                                Some(vt) => {
                                    for p in &sub.pieces {
                                        tracelets.add(*vt, Arc::clone(p));
                                    }
                                }
                                None => {
                                    for vt in &host_vtables {
                                        for p in &sub.pieces {
                                            tracelets.add(*vt, Arc::clone(p));
                                        }
                                    }
                                }
                            }
                        }
                        spans.exit(token);
                        continue;
                    }
                    // An unresolvable label rejects the entry for this
                    // binary; the function runs live below.
                }
            }
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: behavioral analysis of {entry}");
            }
            execute_function_metered(f, loaded, &ctors, &cfg)
        }));
        let (mut paths, fuel_spent) = match outcome {
            Err(payload) => {
                spans.exit(token);
                incidents.push((entry, IncidentKind::Panicked(panic_message(payload))));
                continue;
            }
            Ok((_, ExecStatus::FuelExhausted, _)) => {
                spans.exit(token);
                incidents.push((entry, IncidentKind::FuelExhausted));
                continue;
            }
            Ok((_, ExecStatus::DeadlineExceeded, _)) => {
                spans.exit(token);
                incidents.push((entry, IncidentKind::DeadlineExceeded));
                continue;
            }
            Ok((paths, ExecStatus::Completed, fuel_spent)) => {
                metrics.add(names::ANALYSIS_FUEL_SPENT, fuel_spent);
                (paths, fuel_spent)
            }
        };
        if let Some((labels, _)) = canon {
            for p in &mut paths {
                for s in &mut p.subobjects {
                    for e in &mut s.events {
                        *e = labels.canonical_event(*e);
                    }
                }
            }
        }

        // The function's tracelet contributions, windowed once and
        // shared between the live pools and the cache entry.
        let mut contrib: Vec<Contribution> = Vec::new();
        for path in &paths {
            for sub in &path.subobjects {
                if sub.events.is_empty() {
                    continue;
                }
                if let Some(vt) = sub.vtable {
                    contrib.push((Some(vt), windows(&sub.events, config.tracelet_len)));
                } else if sub.view.obj == ObjId::ENTRY && sub.view.base == 0 {
                    contrib.push((None, windows(&sub.events, config.tracelet_len)));
                }
            }
        }
        if let Some((labels, Some(cache))) = canon {
            if let (Some(key), true) = (fkey, cacheable) {
                if let Some(entry) = encode_cached(labels, &contrib, fuel_spent) {
                    cache.store(key, Arc::new(entry));
                }
            }
        }
        for (attr, pieces) in &contrib {
            match attr {
                Some(vt) => {
                    for p in pieces {
                        tracelets.add(*vt, Arc::clone(p));
                    }
                }
                None => {
                    for vt in &host_vtables {
                        for p in pieces {
                            tracelets.add(*vt, Arc::clone(p));
                        }
                    }
                }
            }
        }
        spans.exit(token);
    }
    Analysis { tracelets, ctors, incidents }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_minicpp::{compile, CompileOptions, Expr, ProgramBuilder};

    fn load(p: ProgramBuilder, opts: &CompileOptions) -> (LoadedBinary, rock_minicpp::Compiled) {
        let compiled = compile(&p.finish(), opts).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        (loaded, compiled)
    }

    #[test]
    fn windows_split() {
        let e: Vec<Event> = (0..10).map(Event::C).collect();
        let w = windows(&e, 7);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].len(), 7);
        assert_eq!(w[1].len(), 3);
        assert!(windows(&[], 7).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        windows(&[Event::Ret], 0);
    }

    #[test]
    fn driver_usage_is_attributed_to_constructed_type() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.vcall("a", "m0", vec![]);
            f.vcall("a", "m0", vec![]);
            f.ret();
        });
        let (loaded, compiled) = load(p, &CompileOptions::default());
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let vt = compiled.vtable_of("A").unwrap();
        let ts = analysis.tracelets().of_type(vt);
        assert!(!ts.is_empty());
        // Some tracelet contains two C(0) events (the two dispatches).
        let has_double_dispatch =
            ts.iter().any(|t| t.iter().filter(|e| **e == Event::C(0)).count() >= 2);
        assert!(has_double_dispatch, "tracelets: {ts:?}");
    }

    #[test]
    fn event_table_interns_the_global_alphabet() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.vcall("a", "m0", vec![]);
            f.ret();
        });
        let (loaded, _) = load(p, &CompileOptions::default());
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let table = analysis.event_table();
        assert!(!table.is_empty());
        // Every event of every tracelet is interned, ids round-trip, and
        // the iteration order is ascending Ord (= id) order.
        for vt in analysis.tracelets().types() {
            for t in analysis.tracelets().of_type(vt) {
                for e in t.iter() {
                    let id = table.id_of(e).expect("observed event must intern");
                    assert_eq!(table.resolve(id), Some(e));
                }
            }
        }
        let ids: Vec<Event> = table.iter().copied().collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn inlined_ctor_build_still_types_objects() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.class("B").base("A").method("m1", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "B");
            f.vcall("b", "m1", vec![]);
            f.ret();
        });
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true;
        let (loaded, compiled) = load(p, &opts);
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let vt_b = compiled.vtable_of("B").unwrap();
        assert!(!analysis.tracelets().of_type(vt_b).is_empty());
    }

    #[test]
    fn method_bodies_attribute_to_all_hosting_vtables() {
        // B inherits A::m unchanged, so A::m sits in both vtables and its
        // body tracelets (field write) count for both types.
        let mut p = ProgramBuilder::new();
        p.class("A").field("x").method("m", |b| {
            b.write("this", "x", Expr::Const(1));
            b.ret();
        });
        p.class("B").base("A").method("extra", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.new_obj("b", "B");
            f.vcall("a", "m", vec![]);
            f.vcall("b", "m", vec![]);
            f.ret();
        });
        let (loaded, compiled) = load(p, &CompileOptions::default());
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let vt_a = compiled.vtable_of("A").unwrap();
        let vt_b = compiled.vtable_of("B").unwrap();
        let has_w8 = |vt| analysis.tracelets().of_type(vt).iter().any(|t| t.contains(&Event::W(8)));
        assert!(has_w8(vt_a), "A should see W(8) from its method body");
        assert!(has_w8(vt_b), "B inherits the method, so it sees W(8) too");
    }

    #[test]
    fn ctor_recognition_feeds_call_site_typing() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A"); // heap: call __alloc, call A::A
            f.vcall("a", "m", vec![]);
            f.ret();
        });
        let (loaded, compiled) = load(p, &CompileOptions::default());
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        // The ctor was recognized...
        assert!(!analysis.ctors().is_empty());
        // ...and the driver's object got typed + usage recorded.
        let vt = compiled.vtable_of("A").unwrap();
        let ts = analysis.tracelets().of_type(vt);
        let mentions_dispatch = ts.iter().any(|t| t.contains(&Event::C(0)));
        assert!(mentions_dispatch, "tracelets: {ts:?}");
    }

    #[test]
    fn stats_aggregate_correctly() {
        let mut tt = TypeTracelets::default();
        let vt = Addr::new(0x2000);
        tt.add(vt, vec![Event::C(0), Event::C(0), Event::R(8)].into());
        tt.add(vt, vec![Event::This, Event::Ret].into());
        let s = tt.stats_of(vt);
        assert_eq!(s.tracelets, 2);
        assert_eq!(s.events, 5);
        assert_eq!(s.alphabet, 4, "C(0) counted once");
        assert_eq!(s.by_kind["C"], 2);
        assert_eq!(s.by_kind["R"], 1);
        assert_eq!(s.by_kind["this"], 1);
        assert_eq!(s.by_kind["ret"], 1);
        assert!(s.to_string().contains("2 tracelets"));
        // Unknown type: all-zero stats.
        let z = tt.stats_of(Addr::new(0x9999));
        assert_eq!(z.tracelets, 0);
        assert_eq!(z.alphabet, 0);
    }

    fn hierarchy_program() -> ProgramBuilder {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.class("B").base("A").method("m1", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.new_obj("b", "B");
            f.vcall("a", "m0", vec![]);
            f.vcall("b", "m1", vec![]);
            f.ret();
        });
        p
    }

    #[test]
    fn clean_hooks_change_nothing() {
        let (loaded, _) = load(hierarchy_program(), &CompileOptions::default());
        let plain = extract_tracelets(&loaded, &AnalysisConfig::default());
        let hooked = extract_tracelets_with(&loaded, &AnalysisConfig::default(), &NoHooks);
        assert_eq!(plain, hooked);
        assert!(plain.incidents().is_empty());
    }

    #[test]
    fn panicking_function_is_contained_and_equals_a_skip() {
        struct FaultOne(Addr, FunctionDirective);
        impl AnalysisHooks for FaultOne {
            fn before_function(&self, f: Addr) -> FunctionDirective {
                if f == self.0 {
                    self.1
                } else {
                    FunctionDirective::Run
                }
            }
        }
        let (loaded, _) = load(hierarchy_program(), &CompileOptions::default());
        let victim = loaded.functions()[0].entry();
        let cfg = AnalysisConfig::default();
        let panicked =
            extract_tracelets_with(&loaded, &cfg, &FaultOne(victim, FunctionDirective::Panic));
        let skipped =
            extract_tracelets_with(&loaded, &cfg, &FaultOne(victim, FunctionDirective::Skip));
        let starved = extract_tracelets_with(
            &loaded,
            &cfg,
            &FaultOne(victim, FunctionDirective::Fuel(Budget::steps(0))),
        );
        // All three isolation paths exclude the function identically.
        assert_eq!(panicked.tracelets(), skipped.tracelets());
        assert_eq!(panicked.tracelets(), starved.tracelets());
        // Each records exactly one incident against the victim.
        for (a, kind) in
            [(&panicked, "panicked"), (&skipped, "skipped"), (&starved, "fuel exhausted")]
        {
            assert_eq!(a.incidents().len(), 1);
            assert_eq!(a.incidents()[0].0, victim);
            assert!(a.incidents()[0].1.to_string().contains(kind));
        }
    }

    #[test]
    fn skipping_every_function_yields_empty_pools_not_a_panic() {
        struct SkipAll;
        impl AnalysisHooks for SkipAll {
            fn before_function(&self, _: Addr) -> FunctionDirective {
                FunctionDirective::Skip
            }
        }
        let (loaded, _) = load(hierarchy_program(), &CompileOptions::default());
        let a = extract_tracelets_with(&loaded, &AnalysisConfig::default(), &SkipAll);
        assert!(a.tracelets().is_empty());
        assert_eq!(a.incidents().len(), loaded.functions().len());
    }

    #[test]
    fn type_tracelets_accessors() {
        let mut tt = TypeTracelets::default();
        assert!(tt.is_empty());
        tt.add(Addr::new(0x2000), vec![Event::C(0)].into());
        tt.add(Addr::new(0x2000), Vec::new().into()); // ignored
        tt.add(Addr::new(0x3000), vec![Event::Ret].into());
        assert_eq!(tt.total(), 2);
        assert_eq!(tt.of_type(Addr::new(0x2000)).len(), 1);
        assert_eq!(tt.of_type(Addr::new(0x9999)).len(), 0);
        assert_eq!(tt.types().count(), 2);
        assert!(tt.to_string().contains("type @0x2000"));
    }
}
