//! Tracelet pooling and attribution: `TT(t) = ⋃_{type(o)=t} OT(o)`.

use std::collections::BTreeMap;
use std::fmt;

use rock_binary::Addr;
use rock_loader::LoadedBinary;

use crate::{execute_function, recognize_ctors, AnalysisConfig, CtorMap, Event, ObjId};

/// Tracelets pooled per binary type (vtable address).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TypeTracelets {
    map: BTreeMap<Addr, Vec<Vec<Event>>>,
}

impl TypeTracelets {
    /// Adds one tracelet for a type.
    pub fn add(&mut self, vtable: Addr, tracelet: Vec<Event>) {
        if !tracelet.is_empty() {
            self.map.entry(vtable).or_default().push(tracelet);
        }
    }

    /// All tracelets of a type (empty slice if none).
    pub fn of_type(&self, vtable: Addr) -> &[Vec<Event>] {
        self.map.get(&vtable).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Types that have at least one tracelet.
    pub fn types(&self) -> impl Iterator<Item = Addr> + '_ {
        self.map.keys().copied()
    }

    /// Total number of tracelets across all types.
    pub fn total(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Returns `true` if no tracelets were extracted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Interns the binary's **global** event alphabet: every distinct
    /// event across all types' tracelets, with dense `u32` ids in `Ord`
    /// order. Because ids depend only on the event *set* (not extraction
    /// order), the table is deterministic per binary — the same property
    /// the per-model SLM interners rely on — and can be shared by any
    /// consumer that wants to work on ids rather than `Event` values.
    pub fn event_table(&self) -> rock_slm::SymbolTable<Event> {
        rock_slm::SymbolTable::from_symbols(self.map.values().flatten().flatten().copied())
    }
}

/// Aggregate statistics of a type's tracelet pool, for diagnostics and
/// the CLI's `stats` command.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceletStats {
    /// Number of tracelets.
    pub tracelets: usize,
    /// Total events across all tracelets.
    pub events: usize,
    /// Distinct event symbols (the type's alphabet size).
    pub alphabet: usize,
    /// Event counts by kind tag (`"C"`, `"R"`, `"W"`, `"this"`, `"Arg"`,
    /// `"ret"`, `"call"`).
    pub by_kind: BTreeMap<&'static str, usize>,
}

impl TypeTracelets {
    /// Computes aggregate statistics for one type's pool.
    pub fn stats_of(&self, vtable: Addr) -> TraceletStats {
        let pool = self.of_type(vtable);
        let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut distinct = std::collections::BTreeSet::new();
        let mut events = 0usize;
        for t in pool {
            for e in t {
                *by_kind.entry(e.kind()).or_insert(0) += 1;
                distinct.insert(*e);
                events += 1;
            }
        }
        TraceletStats { tracelets: pool.len(), events, alphabet: distinct.len(), by_kind }
    }
}

impl fmt::Display for TraceletStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tracelets, {} events, |Σ|={}", self.tracelets, self.events, self.alphabet)?;
        for (k, n) in &self.by_kind {
            write!(f, ", {k}:{n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TypeTracelets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (vt, ts) in &self.map {
            writeln!(f, "type @{vt}: {} tracelets", ts.len())?;
        }
        Ok(())
    }
}

/// The complete output of the behavioral analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Analysis {
    tracelets: TypeTracelets,
    ctors: CtorMap,
}

impl Analysis {
    /// Tracelets per type.
    pub fn tracelets(&self) -> &TypeTracelets {
        &self.tracelets
    }

    /// The recognized ctor-like functions.
    pub fn ctors(&self) -> &CtorMap {
        &self.ctors
    }

    /// The binary-wide interned event alphabet
    /// (see [`TypeTracelets::event_table`]).
    pub fn event_table(&self) -> rock_slm::SymbolTable<Event> {
        self.tracelets.event_table()
    }
}

/// Splits an event sequence into non-overlapping windows of at most
/// `len` events (the paper splits sequences "into subsequences of limited
/// length (up to length 7)").
pub(crate) fn windows(events: &[Event], len: usize) -> Vec<Vec<Event>> {
    assert!(len > 0, "window length must be positive");
    events.chunks(len).map(<[Event]>::to_vec).collect()
}

/// Runs the full behavioral analysis over a loaded binary:
/// ctor recognition, per-function symbolic execution, and tracelet
/// attribution.
///
/// Attribution rules (§3.2):
///
/// * views typed in-function (vtable store or ctor call) contribute to
///   that vtable's pool;
/// * the `this` view of a **virtual function** (a function appearing in
///   vtable slots) contributes to every vtable containing the function.
pub fn extract_tracelets(loaded: &LoadedBinary, config: &AnalysisConfig) -> Analysis {
    let ctors = recognize_ctors(loaded, config);
    let mut tracelets = TypeTracelets::default();

    for f in loaded.functions() {
        let host_vtables: Vec<Addr> =
            loaded.vtables_containing(f.entry()).iter().map(|vt| vt.addr()).collect();
        for path in execute_function(f, loaded, &ctors, config) {
            for sub in &path.subobjects {
                if sub.events.is_empty() {
                    continue;
                }
                let pieces = windows(&sub.events, config.tracelet_len);
                if let Some(vt) = sub.vtable {
                    for p in &pieces {
                        tracelets.add(vt, p.clone());
                    }
                } else if sub.view.obj == ObjId::ENTRY && sub.view.base == 0 {
                    for vt in &host_vtables {
                        for p in &pieces {
                            tracelets.add(*vt, p.clone());
                        }
                    }
                }
            }
        }
    }
    Analysis { tracelets, ctors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_minicpp::{compile, CompileOptions, Expr, ProgramBuilder};

    fn load(p: ProgramBuilder, opts: &CompileOptions) -> (LoadedBinary, rock_minicpp::Compiled) {
        let compiled = compile(&p.finish(), opts).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        (loaded, compiled)
    }

    #[test]
    fn windows_split() {
        let e: Vec<Event> = (0..10).map(Event::C).collect();
        let w = windows(&e, 7);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].len(), 7);
        assert_eq!(w[1].len(), 3);
        assert!(windows(&[], 7).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        windows(&[Event::Ret], 0);
    }

    #[test]
    fn driver_usage_is_attributed_to_constructed_type() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.vcall("a", "m0", vec![]);
            f.vcall("a", "m0", vec![]);
            f.ret();
        });
        let (loaded, compiled) = load(p, &CompileOptions::default());
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let vt = compiled.vtable_of("A").unwrap();
        let ts = analysis.tracelets().of_type(vt);
        assert!(!ts.is_empty());
        // Some tracelet contains two C(0) events (the two dispatches).
        let has_double_dispatch =
            ts.iter().any(|t| t.iter().filter(|e| **e == Event::C(0)).count() >= 2);
        assert!(has_double_dispatch, "tracelets: {ts:?}");
    }

    #[test]
    fn event_table_interns_the_global_alphabet() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.vcall("a", "m0", vec![]);
            f.ret();
        });
        let (loaded, _) = load(p, &CompileOptions::default());
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let table = analysis.event_table();
        assert!(!table.is_empty());
        // Every event of every tracelet is interned, ids round-trip, and
        // the iteration order is ascending Ord (= id) order.
        for vt in analysis.tracelets().types() {
            for t in analysis.tracelets().of_type(vt) {
                for e in t {
                    let id = table.id_of(e).expect("observed event must intern");
                    assert_eq!(table.resolve(id), Some(e));
                }
            }
        }
        let ids: Vec<Event> = table.iter().copied().collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn inlined_ctor_build_still_types_objects() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.class("B").base("A").method("m1", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "B");
            f.vcall("b", "m1", vec![]);
            f.ret();
        });
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true;
        let (loaded, compiled) = load(p, &opts);
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let vt_b = compiled.vtable_of("B").unwrap();
        assert!(!analysis.tracelets().of_type(vt_b).is_empty());
    }

    #[test]
    fn method_bodies_attribute_to_all_hosting_vtables() {
        // B inherits A::m unchanged, so A::m sits in both vtables and its
        // body tracelets (field write) count for both types.
        let mut p = ProgramBuilder::new();
        p.class("A").field("x").method("m", |b| {
            b.write("this", "x", Expr::Const(1));
            b.ret();
        });
        p.class("B").base("A").method("extra", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.new_obj("b", "B");
            f.vcall("a", "m", vec![]);
            f.vcall("b", "m", vec![]);
            f.ret();
        });
        let (loaded, compiled) = load(p, &CompileOptions::default());
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let vt_a = compiled.vtable_of("A").unwrap();
        let vt_b = compiled.vtable_of("B").unwrap();
        let has_w8 = |vt| analysis.tracelets().of_type(vt).iter().any(|t| t.contains(&Event::W(8)));
        assert!(has_w8(vt_a), "A should see W(8) from its method body");
        assert!(has_w8(vt_b), "B inherits the method, so it sees W(8) too");
    }

    #[test]
    fn ctor_recognition_feeds_call_site_typing() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A"); // heap: call __alloc, call A::A
            f.vcall("a", "m", vec![]);
            f.ret();
        });
        let (loaded, compiled) = load(p, &CompileOptions::default());
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        // The ctor was recognized...
        assert!(!analysis.ctors().is_empty());
        // ...and the driver's object got typed + usage recorded.
        let vt = compiled.vtable_of("A").unwrap();
        let ts = analysis.tracelets().of_type(vt);
        let mentions_dispatch = ts.iter().any(|t| t.contains(&Event::C(0)));
        assert!(mentions_dispatch, "tracelets: {ts:?}");
    }

    #[test]
    fn stats_aggregate_correctly() {
        let mut tt = TypeTracelets::default();
        let vt = Addr::new(0x2000);
        tt.add(vt, vec![Event::C(0), Event::C(0), Event::R(8)]);
        tt.add(vt, vec![Event::This, Event::Ret]);
        let s = tt.stats_of(vt);
        assert_eq!(s.tracelets, 2);
        assert_eq!(s.events, 5);
        assert_eq!(s.alphabet, 4, "C(0) counted once");
        assert_eq!(s.by_kind["C"], 2);
        assert_eq!(s.by_kind["R"], 1);
        assert_eq!(s.by_kind["this"], 1);
        assert_eq!(s.by_kind["ret"], 1);
        assert!(s.to_string().contains("2 tracelets"));
        // Unknown type: all-zero stats.
        let z = tt.stats_of(Addr::new(0x9999));
        assert_eq!(z.tracelets, 0);
        assert_eq!(z.alphabet, 0);
    }

    #[test]
    fn type_tracelets_accessors() {
        let mut tt = TypeTracelets::default();
        assert!(tt.is_empty());
        tt.add(Addr::new(0x2000), vec![Event::C(0)]);
        tt.add(Addr::new(0x2000), vec![]); // ignored
        tt.add(Addr::new(0x3000), vec![Event::Ret]);
        assert_eq!(tt.total(), 2);
        assert_eq!(tt.of_type(Addr::new(0x2000)).len(), 1);
        assert_eq!(tt.of_type(Addr::new(0x9999)).len(), 0);
        assert_eq!(tt.types().count(), 2);
        assert!(tt.to_string().contains("type @0x2000"));
    }
}
