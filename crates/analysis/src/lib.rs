//! Behavioral analysis: object tracelet extraction (Rock, ASPLOS'18 §3.2).
//!
//! A purely **intra-procedural** static analysis runs a symbolic execution
//! over every recovered function, tracking abstract objects and the events
//! applied to them (Table 1 of the paper):
//!
//! | event     | meaning                                              |
//! |-----------|------------------------------------------------------|
//! | `C(i)`    | call to the virtual function in vtable slot `i`      |
//! | `R(i)`    | read of the field at object offset `i`               |
//! | `W(i)`    | write of the field at object offset `i`              |
//! | `this`    | object passed as `this` to a direct call             |
//! | `Arg(i)`  | object passed as the i-th argument                   |
//! | `ret`     | object returned from the analyzed function           |
//! | `call(f)` | direct call to the concrete function `f`             |
//!
//! Objects are *predetermined* to belong to a type (§3.2) in three ways:
//!
//! 1. a **vtable-pointer store** into the object (inlined construction);
//! 2. a call to a recognized **constructor-like function** (a function
//!    that stores a vtable pointer through its `this` argument — the
//!    recognition pre-pass of [`recognize_ctors`]);
//! 3. being the `this` pointer of a **virtual function** — the function
//!    appears in some vtable's slots, and the tracelets are attributed to
//!    every such vtable.
//!
//! Event sequences per object are split into **tracelets** of bounded
//! length (7 in the paper), and pooled per binary type:
//! `TT(t) = ⋃_{type(o)=t} OT(o)`.
//!
//! # Example
//!
//! ```
//! use rock_minicpp::{ProgramBuilder, CompileOptions, compile};
//! use rock_loader::LoadedBinary;
//! use rock_analysis::{extract_tracelets, AnalysisConfig};
//!
//! let mut p = ProgramBuilder::new();
//! p.class("A").method("m", |b| { b.ret(); });
//! p.func("drive", |f| {
//!     f.new_obj("a", "A");
//!     f.vcall("a", "m", vec![]);
//!     f.ret();
//! });
//! let compiled = compile(&p.finish(), &CompileOptions::default())?;
//! let loaded = LoadedBinary::load(compiled.stripped_image())?;
//! let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
//! let vt = compiled.vtable_of("A").unwrap();
//! assert!(!analysis.tracelets().of_type(vt).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
mod config;
mod ctors;
mod event;
mod exec;
mod tracelets;
mod value;

pub use canon::{CachedCtors, CachedExec, CachedSub, ContentLabels, ExecCache, Label};
pub use config::AnalysisConfig;
pub use ctors::{recognize_ctors, recognize_ctors_cached, CtorMap};
pub use event::Event;
pub use exec::{
    execute_function, execute_function_budgeted, execute_function_metered, ExecStatus, PathResult,
    SubObjectSummary,
};
pub use rock_budget::{Budget, Deadline, Exhausted};
pub use tracelets::{
    extract_tracelets, extract_tracelets_canonical, extract_tracelets_instrumented,
    extract_tracelets_with, Analysis, AnalysisHooks, FunctionDirective, IncidentKind, NoHooks,
    TraceletStats, TypeTracelets,
};
pub use value::{ObjId, SubObj, SymValue};
