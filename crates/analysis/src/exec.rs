//! The intra-procedural symbolic executor.
//!
//! Each recovered function is executed path-by-path over its CFG (bounded
//! loop unrolling, bounded path count). The executor tracks symbolic
//! register and stack-slot values precisely enough to recognize the
//! compilation idioms the events are defined over:
//!
//! * `lea rD, [sp+k]` — a stack object is born;
//! * `st [obj+0], <vtable const>` — a vtable-pointer store types the view;
//! * `ld v, [obj+0]; ld t, [v + 8i]; call [t]` — virtual dispatch `C(i)`;
//! * `ld/st [obj+k]`, `k ≠ 0` — field events `R(k)` / `W(k)`;
//! * `call f` with an object in `r0` — `this` + `call(f)` events, and
//!   constructor-based typing when `f` is ctor-like.
//!
//! ABI assumed (matching the substrate compiler): `r0`–`r5` are
//! caller-saved argument registers, `r6`–`r13` are callee-saved, `r0`
//! carries the return value.

use std::collections::{BTreeMap, BTreeSet};

use rock_binary::{Addr, Instr, Reg, WORD_SIZE};
use rock_budget::Deadline;
use rock_loader::{Cfg, Function, LoadedBinary};

use crate::{AnalysisConfig, CtorMap, Event, ObjId, SubObj, SymValue};

/// Events and final typing of one subobject view along one path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubObjectSummary {
    /// The view the events were applied to.
    pub view: SubObj,
    /// The event sequence, in program order.
    pub events: Vec<Event>,
    /// The vtable stored at this view's base (final store wins), if any.
    pub vtable: Option<Addr>,
}

/// The outcome of one execution path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathResult {
    /// Per-view summaries (sorted by view).
    pub subobjects: Vec<SubObjectSummary>,
}

/// How a budgeted symbolic execution of one function ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecStatus {
    /// Path enumeration ran to its natural (bounded) end.
    Completed,
    /// The per-function fuel budget ([`AnalysisConfig::fuel`]) ran out.
    FuelExhausted,
    /// The per-function wall-clock deadline
    /// ([`AnalysisConfig::deadline_ms`]) passed.
    DeadlineExceeded,
}

#[derive(Clone, Debug)]
struct State {
    regs: [SymValue; Reg::COUNT],
    stack: BTreeMap<i32, SymValue>,
    stack_objs: BTreeMap<i32, ObjId>,
    next_obj: u32,
    events: BTreeMap<SubObj, Vec<Event>>,
    typing: BTreeMap<SubObj, Addr>,
    /// Argument registers written since the last call (used to decide
    /// which registers really carry arguments at a call site).
    args_written: BTreeSet<usize>,
}

impl State {
    fn entry() -> State {
        let mut regs = [SymValue::Unknown; Reg::COUNT];
        // r0 at entry is the potential `this` pointer.
        regs[0] = SymValue::ObjPtr(SubObj::primary(ObjId::ENTRY));
        State {
            regs,
            stack: BTreeMap::new(),
            stack_objs: BTreeMap::new(),
            next_obj: 1,
            events: BTreeMap::new(),
            typing: BTreeMap::new(),
            args_written: BTreeSet::new(),
        }
    }

    fn fresh_obj(&mut self) -> ObjId {
        let id = ObjId(self.next_obj);
        self.next_obj += 1;
        id
    }

    fn emit(&mut self, view: SubObj, event: Event, cap: usize) {
        let seq = self.events.entry(view).or_default();
        if seq.len() < cap {
            seq.push(event);
        }
    }

    fn set(&mut self, reg: Reg, value: SymValue) {
        self.regs[reg.index() as usize] = value;
        if reg.is_arg() {
            self.args_written.insert(reg.index() as usize);
        }
    }

    fn get(&self, reg: Reg) -> SymValue {
        self.regs[reg.index() as usize]
    }

    fn finalize(self) -> PathResult {
        let mut views: BTreeSet<SubObj> = self.events.keys().copied().collect();
        views.extend(self.typing.keys().copied());
        PathResult {
            subobjects: views
                .into_iter()
                .map(|view| SubObjectSummary {
                    view,
                    events: self.events.get(&view).cloned().unwrap_or_default(),
                    vtable: self.typing.get(&view).copied(),
                })
                .collect(),
        }
    }
}

/// Symbolically executes one function and returns the per-path summaries.
///
/// `loaded` supplies the set of known vtable addresses (vtable-pointer
/// stores are recognized by value); `ctors` supplies constructor-like
/// functions recognized by [`recognize_ctors`](crate::recognize_ctors).
pub fn execute_function(
    function: &Function,
    loaded: &LoadedBinary,
    ctors: &CtorMap,
    config: &AnalysisConfig,
) -> Vec<PathResult> {
    execute_function_budgeted(function, loaded, ctors, config).0
}

/// Like [`execute_function`], but enforces the per-function fuel and
/// deadline budgets and reports how enumeration ended.
///
/// Fuel is spent one unit per instruction stepped, across all explored
/// paths, so exhaustion is deterministic. On [`ExecStatus::FuelExhausted`]
/// or [`ExecStatus::DeadlineExceeded`] the paths completed so far are
/// still returned; callers decide whether partial evidence counts (the
/// tracelet extractor drops it so a function either finishes within
/// budget or is excluded wholesale and recorded).
pub fn execute_function_budgeted(
    function: &Function,
    loaded: &LoadedBinary,
    ctors: &CtorMap,
    config: &AnalysisConfig,
) -> (Vec<PathResult>, ExecStatus) {
    let (paths, status, _fuel_spent) = execute_function_metered(function, loaded, ctors, config);
    (paths, status)
}

/// Like [`execute_function_budgeted`], and additionally reports the fuel
/// actually spent (instruction steps summed over all explored paths) so
/// the observability layer can attribute analysis cost per function.
pub fn execute_function_metered(
    function: &Function,
    loaded: &LoadedBinary,
    ctors: &CtorMap,
    config: &AnalysisConfig,
) -> (Vec<PathResult>, ExecStatus, u64) {
    let vtable_addrs: BTreeSet<Addr> = loaded.vtables().iter().map(|v| v.addr()).collect();
    let cfg = Cfg::build(function);
    let mut results = Vec::new();
    let mut fuel = config.fuel.meter();
    let deadline = Deadline::from_config(config.deadline_ms);

    struct Frame {
        block: Addr,
        state: State,
        visits: BTreeMap<Addr, usize>,
    }

    let mut stack =
        vec![Frame { block: cfg.entry(), state: State::entry(), visits: BTreeMap::new() }];

    while let Some(mut frame) = stack.pop() {
        if results.len() >= config.max_paths {
            break;
        }
        if deadline.expired() {
            return (results, ExecStatus::DeadlineExceeded, fuel.spent());
        }
        *frame.visits.entry(frame.block).or_insert(0) += 1;
        let Some(block) = cfg.block_at(frame.block) else {
            results.push(frame.state.finalize());
            continue;
        };
        let (lo, hi) = block.instr_range;
        let mut terminated = false;
        for d in &function.instrs()[lo..hi] {
            if fuel.spend(1).is_err() {
                return (results, ExecStatus::FuelExhausted, fuel.spent());
            }
            step(&mut frame.state, &d.instr, &vtable_addrs, ctors, config);
            if matches!(d.instr, Instr::Ret | Instr::Halt) {
                terminated = true;
            }
        }
        if terminated {
            results.push(frame.state.finalize());
            continue;
        }
        let succs: Vec<Addr> = block
            .succs
            .iter()
            .copied()
            .filter(|s| frame.visits.get(s).copied().unwrap_or(0) < config.block_visit_limit)
            .collect();
        if succs.is_empty() {
            results.push(frame.state.finalize());
            continue;
        }
        for s in succs {
            stack.push(Frame {
                block: s,
                state: frame.state.clone(),
                visits: frame.visits.clone(),
            });
        }
    }
    (results, ExecStatus::Completed, fuel.spent())
}

fn step(
    state: &mut State,
    instr: &Instr,
    vtable_addrs: &BTreeSet<Addr>,
    ctors: &CtorMap,
    config: &AnalysisConfig,
) {
    let cap = config.max_events_per_object;
    match *instr {
        Instr::Enter { .. } | Instr::Nop | Instr::Jmp { .. } | Instr::Branch { .. } => {}
        Instr::MovImm { dst, imm } => state.set(dst, SymValue::Const(imm)),
        Instr::MovReg { dst, src } => {
            let v = state.get(src);
            state.set(dst, v);
        }
        Instr::Load { dst, base, offset } => {
            let value = if base == Reg::SP {
                state.stack.get(&offset).copied().unwrap_or(SymValue::Unknown)
            } else {
                match state.get(base) {
                    SymValue::ObjPtr(view) => {
                        if offset == 0 {
                            // Vtable-pointer load: dispatch machinery, not
                            // a field event.
                            SymValue::VptrOf(view)
                        } else {
                            state.emit(view, Event::R(offset), cap);
                            SymValue::Unknown
                        }
                    }
                    SymValue::VptrOf(view) => SymValue::SlotOf(view, offset),
                    _ => SymValue::Unknown,
                }
            };
            state.set(dst, value);
        }
        Instr::Store { base, offset, src } => {
            let value = state.get(src);
            if base == Reg::SP {
                state.stack.insert(offset, value);
            } else if let SymValue::ObjPtr(view) = state.get(base) {
                match value {
                    SymValue::Const(a) if vtable_addrs.contains(&Addr::new(a)) => {
                        // Vtable-pointer store: types the subobject at
                        // base+offset (last store wins — constructed type).
                        state
                            .typing
                            .insert(SubObj::new(view.obj, view.base + offset), Addr::new(a));
                    }
                    _ => state.emit(view, Event::W(offset), cap),
                }
            }
        }
        Instr::Lea { dst, base, offset } => {
            let value = if base == Reg::SP {
                let obj = match state.stack_objs.get(&offset) {
                    Some(o) => *o,
                    None => {
                        let o = state.fresh_obj();
                        state.stack_objs.insert(offset, o);
                        o
                    }
                };
                SymValue::ObjPtr(SubObj::primary(obj))
            } else {
                match state.get(base) {
                    SymValue::ObjPtr(view) => {
                        SymValue::ObjPtr(SubObj::new(view.obj, view.base + offset))
                    }
                    _ => SymValue::Unknown,
                }
            };
            state.set(dst, value);
        }
        Instr::BinOp { dst, lhs, rhs, op } => {
            let v = match (state.get(lhs), state.get(rhs)) {
                (SymValue::Const(a), SymValue::Const(b)) => SymValue::Const(op.eval(a, b)),
                _ => SymValue::Unknown,
            };
            state.set(dst, v);
        }
        Instr::Call { target } => {
            emit_call_events(state, Some(target), None, ctors, cap);
            post_call(state);
        }
        Instr::CallReg { target } => {
            let callee = state.get(target);
            let slot = match callee {
                SymValue::SlotOf(view, off) => Some((view, (off / WORD_SIZE as i32) as usize)),
                _ => None,
            };
            emit_call_events(state, None, slot, ctors, cap);
            post_call(state);
        }
        Instr::Ret | Instr::Halt => {
            if let SymValue::ObjPtr(view) = state.get(Reg::R0) {
                state.emit(view, Event::Ret, cap);
            }
        }
    }
}

/// Records the receiver/argument events of a call site.
fn emit_call_events(
    state: &mut State,
    direct_target: Option<Addr>,
    vslot: Option<(SubObj, usize)>,
    ctors: &CtorMap,
    cap: usize,
) {
    // Receiver (`this`) in r0.
    let receiver = state.get(Reg::R0).as_obj();
    match (direct_target, vslot) {
        (Some(f), _) => {
            if let Some(view) = receiver {
                state.emit(view, Event::This, cap);
                state.emit(view, Event::Call(f), cap);
                // Constructor-based typing (paper §3.2 / §5.2 rule 3).
                if let Some(stores) = ctors.stores_of(f) {
                    for (off, vt) in stores {
                        state.typing.insert(SubObj::new(view.obj, view.base + off), vt);
                    }
                }
            }
        }
        (None, Some((slot_view, slot))) => {
            // Virtual call: attribute C(i) to the receiver (falling back
            // to the view the slot was loaded from).
            let view = receiver.unwrap_or(slot_view);
            state.emit(view, Event::C(slot), cap);
        }
        (None, None) => {
            if let Some(view) = receiver {
                state.emit(view, Event::This, cap);
            }
        }
    }
    // Object arguments in r1..r5 (only registers actually written since
    // the last call count as arguments).
    for k in 1..Reg::ARG_COUNT {
        if !state.args_written.contains(&k) {
            continue;
        }
        if let SymValue::ObjPtr(view) = state.regs[k] {
            state.emit(view, Event::Arg(k), cap);
        }
    }
}

/// Caller-saved registers die at calls; `r0` becomes a fresh potential
/// object (heap allocations surface this way).
fn post_call(state: &mut State) {
    let fresh = state.fresh_obj();
    state.regs[0] = SymValue::ObjPtr(SubObj::primary(fresh));
    for k in 1..=5 {
        state.regs[k] = SymValue::Unknown;
    }
    state.regs[14] = SymValue::Unknown;
    state.args_written.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_binary::{ImageBuilder, Instr};

    fn exec_single(build: impl FnOnce(&mut ImageBuilder)) -> (Vec<PathResult>, LoadedBinary) {
        let mut b = ImageBuilder::new();
        build(&mut b);
        let mut image = b.finish();
        image.strip();
        let loaded = LoadedBinary::load(image).unwrap();
        let f = &loaded.functions()[0];
        let results = execute_function(f, &loaded, &CtorMap::default(), &AnalysisConfig::default());
        (results, loaded.clone())
    }

    #[test]
    fn field_events_on_entry_object() {
        let (results, _) = exec_single(|b| {
            b.begin_function("m");
            b.push(Instr::Enter { frame: 0 });
            // this in r0: read field 8, write field 16.
            b.push(Instr::Load { dst: Reg::R8, base: Reg::R0, offset: 8 });
            b.push(Instr::Store { base: Reg::R0, offset: 16, src: Reg::R8 });
            b.push(Instr::Ret);
            b.end_function();
        });
        assert_eq!(results.len(), 1);
        let subs = &results[0].subobjects;
        let entry = subs.iter().find(|s| s.view.obj == ObjId::ENTRY).unwrap();
        // R(8), W(16), then ret is not emitted because r0 still holds the
        // object: Ret emits on r0... it does hold the object.
        assert_eq!(entry.events[0], Event::R(8));
        assert_eq!(entry.events[1], Event::W(16));
        assert_eq!(entry.events[2], Event::Ret);
    }

    #[test]
    fn vtable_store_types_object() {
        let (results, loaded) = exec_single(|b| {
            let m = b.begin_function("A::m");
            b.push(Instr::Enter { frame: 0 });
            b.push(Instr::Ret);
            b.end_function();
            let vt = b.add_vtable("vtable for A", vec![m]);
            b.begin_function("ctor");
            b.push(Instr::Enter { frame: 0 });
            b.push_mov_vtable_addr(Reg::R7, vt);
            b.push(Instr::Store { base: Reg::R0, offset: 0, src: Reg::R7 });
            b.push(Instr::Ret);
            b.end_function();
        });
        // exec_single runs functions()[0] = A::m; run the ctor instead.
        let f = loaded.function_containing(loaded.functions()[1].entry()).unwrap();
        let res = execute_function(f, &loaded, &CtorMap::default(), &AnalysisConfig::default());
        let entry = res[0].subobjects.iter().find(|s| s.view.obj == ObjId::ENTRY).unwrap();
        assert_eq!(entry.vtable, Some(loaded.vtables()[0].addr()));
        // The vtable store is not a W event.
        assert!(!entry.events.contains(&Event::W(0)));
        let _ = results;
    }

    #[test]
    fn virtual_dispatch_emits_c_event() {
        let (_, loaded) = {
            let mut b = ImageBuilder::new();
            let m = b.begin_function("A::m");
            b.push(Instr::Enter { frame: 0 });
            b.push(Instr::Ret);
            b.end_function();
            let _vt = b.add_vtable("vtable for A", vec![m, m]);
            // Driver: dispatch slot 1 on r0.
            b.begin_function("driver");
            b.push(Instr::Enter { frame: 0 });
            b.push(Instr::Load { dst: Reg::R7, base: Reg::R0, offset: 0 });
            b.push(Instr::Load { dst: Reg::R7, base: Reg::R7, offset: 8 });
            b.push(Instr::CallReg { target: Reg::R7 });
            b.push(Instr::Ret);
            b.end_function();
            let mut image = b.finish();
            image.strip();
            let loaded = LoadedBinary::load(image).unwrap();
            (0, loaded)
        };
        let driver = &loaded.functions()[1];
        let res =
            execute_function(driver, &loaded, &CtorMap::default(), &AnalysisConfig::default());
        let entry = res[0].subobjects.iter().find(|s| s.view.obj == ObjId::ENTRY).unwrap();
        assert_eq!(entry.events, vec![Event::C(1)]);
    }

    #[test]
    fn direct_call_emits_this_and_call() {
        let (_, loaded) = {
            let mut b = ImageBuilder::new();
            let callee = b.begin_function("callee");
            b.push(Instr::Enter { frame: 0 });
            b.push(Instr::Ret);
            b.end_function();
            b.begin_function("driver");
            b.push(Instr::Enter { frame: 0 });
            b.push_call(callee);
            b.push(Instr::Ret);
            b.end_function();
            let mut image = b.finish();
            image.strip();
            (0, LoadedBinary::load(image).unwrap())
        };
        let driver = &loaded.functions()[1];
        let res =
            execute_function(driver, &loaded, &CtorMap::default(), &AnalysisConfig::default());
        let callee_entry = loaded.functions()[0].entry();
        let entry = res[0].subobjects.iter().find(|s| s.view.obj == ObjId::ENTRY).unwrap();
        assert_eq!(entry.events, vec![Event::This, Event::Call(callee_entry)]);
    }

    #[test]
    fn branch_explores_both_paths() {
        let (results, _) = exec_single(|b| {
            b.begin_function("f");
            let l = b.new_label();
            b.push(Instr::Enter { frame: 0 });
            b.push_branch(Reg::R1, l);
            b.push(Instr::Load { dst: Reg::R8, base: Reg::R0, offset: 8 });
            b.bind_label(l);
            b.push(Instr::Ret);
            b.end_function();
        });
        assert_eq!(results.len(), 2);
        let with_read = results
            .iter()
            .filter(|r| r.subobjects.iter().any(|s| s.events.contains(&Event::R(8))))
            .count();
        assert_eq!(with_read, 1, "exactly one path reads the field");
    }

    #[test]
    fn loops_are_bounded() {
        let (results, _) = exec_single(|b| {
            b.begin_function("f");
            let top = b.new_label();
            b.push(Instr::Enter { frame: 0 });
            b.bind_label(top);
            b.push(Instr::Load { dst: Reg::R8, base: Reg::R0, offset: 8 });
            b.push_branch(Reg::R1, top);
            b.push(Instr::Ret);
            b.end_function();
        });
        // Finite path set despite the loop.
        assert!(!results.is_empty());
        assert!(results.len() <= AnalysisConfig::default().max_paths);
        for r in &results {
            for s in &r.subobjects {
                assert!(s.events.len() <= AnalysisConfig::default().max_events_per_object);
            }
        }
    }

    #[test]
    fn stack_slots_preserve_object_identity() {
        let (results, _) = exec_single(|b| {
            b.begin_function("f");
            b.push(Instr::Enter { frame: 32 });
            // Spill this, reload into r6, use field.
            b.push(Instr::Store { base: Reg::SP, offset: 0, src: Reg::R0 });
            b.push(Instr::Load { dst: Reg::R6, base: Reg::SP, offset: 0 });
            b.push(Instr::Load { dst: Reg::R8, base: Reg::R6, offset: 24 });
            b.push(Instr::Ret);
            b.end_function();
        });
        let entry = results[0].subobjects.iter().find(|s| s.view.obj == ObjId::ENTRY).unwrap();
        assert!(entry.events.contains(&Event::R(24)));
    }

    #[test]
    fn stack_objects_are_fresh_and_stable() {
        let (results, _) = exec_single(|b| {
            b.begin_function("f");
            b.push(Instr::Enter { frame: 64 });
            b.push(Instr::Lea { dst: Reg::R6, base: Reg::SP, offset: 4096 });
            b.push(Instr::Store { base: Reg::R6, offset: 8, src: Reg::R1 });
            b.push(Instr::Lea { dst: Reg::R7, base: Reg::SP, offset: 4096 });
            b.push(Instr::Load { dst: Reg::R8, base: Reg::R7, offset: 8 });
            b.push(Instr::Ret);
            b.end_function();
        });
        // Both leas denote the same object: W(8) then R(8) on one view.
        let obj_sub = results[0].subobjects.iter().find(|s| s.view.obj != ObjId::ENTRY).unwrap();
        assert_eq!(obj_sub.events, vec![Event::W(8), Event::R(8)]);
    }

    #[test]
    fn subobject_views_are_separate() {
        let (results, _) = exec_single(|b| {
            b.begin_function("f");
            b.push(Instr::Enter { frame: 0 });
            b.push(Instr::Lea { dst: Reg::R6, base: Reg::R0, offset: 16 });
            b.push(Instr::Store { base: Reg::R6, offset: 8, src: Reg::R1 });
            b.push(Instr::Ret);
            b.end_function();
        });
        let sub = results[0]
            .subobjects
            .iter()
            .find(|s| s.view.base == 16)
            .expect("secondary view tracked");
        assert_eq!(sub.events, vec![Event::W(8)]);
    }

    fn loaded_single(build: impl FnOnce(&mut ImageBuilder)) -> LoadedBinary {
        let mut b = ImageBuilder::new();
        build(&mut b);
        let mut image = b.finish();
        image.strip();
        LoadedBinary::load(image).unwrap()
    }

    #[test]
    fn zero_fuel_exhausts_immediately() {
        let loaded = loaded_single(|b| {
            b.begin_function("f");
            b.push(Instr::Enter { frame: 0 });
            b.push(Instr::Ret);
            b.end_function();
        });
        let mut cfg = AnalysisConfig::default();
        cfg.fuel = rock_budget::Budget::steps(0);
        let (paths, status) =
            execute_function_budgeted(&loaded.functions()[0], &loaded, &CtorMap::default(), &cfg);
        assert_eq!(status, ExecStatus::FuelExhausted);
        assert!(paths.is_empty(), "no instruction could be stepped");
    }

    #[test]
    fn fuel_exhaustion_mid_enumeration_returns_partial_paths() {
        let loaded = loaded_single(|b| {
            b.begin_function("f");
            let l = b.new_label();
            b.push(Instr::Enter { frame: 0 });
            b.push_branch(Reg::R1, l);
            b.push(Instr::Load { dst: Reg::R8, base: Reg::R0, offset: 8 });
            b.bind_label(l);
            b.push(Instr::Ret);
            b.end_function();
        });
        let f = &loaded.functions()[0];
        let mut cfg = AnalysisConfig::default();
        let (full, status) = execute_function_budgeted(f, &loaded, &CtorMap::default(), &cfg);
        assert_eq!(status, ExecStatus::Completed);
        assert_eq!(full.len(), 2);
        // Enough fuel for the first path only.
        cfg.fuel = rock_budget::Budget::steps(3);
        let (partial, status) = execute_function_budgeted(f, &loaded, &CtorMap::default(), &cfg);
        assert_eq!(status, ExecStatus::FuelExhausted);
        assert!(partial.len() < full.len());
    }

    #[test]
    fn fuel_metering_is_deterministic() {
        let loaded = loaded_single(|b| {
            b.begin_function("f");
            let top = b.new_label();
            b.push(Instr::Enter { frame: 0 });
            b.bind_label(top);
            b.push(Instr::Load { dst: Reg::R8, base: Reg::R0, offset: 8 });
            b.push_branch(Reg::R1, top);
            b.push(Instr::Ret);
            b.end_function();
        });
        let f = &loaded.functions()[0];
        let mut cfg = AnalysisConfig::default();
        cfg.fuel = rock_budget::Budget::steps(5);
        let a = execute_function_budgeted(f, &loaded, &CtorMap::default(), &cfg);
        let b = execute_function_budgeted(f, &loaded, &CtorMap::default(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn expired_deadline_stops_enumeration() {
        let loaded = loaded_single(|b| {
            b.begin_function("f");
            b.push(Instr::Enter { frame: 0 });
            b.push(Instr::Ret);
            b.end_function();
        });
        let mut cfg = AnalysisConfig::default();
        cfg.deadline_ms = Some(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (paths, status) =
            execute_function_budgeted(&loaded.functions()[0], &loaded, &CtorMap::default(), &cfg);
        assert_eq!(status, ExecStatus::DeadlineExceeded);
        assert!(paths.is_empty());
    }
}
