//! Tuning knobs of the behavioral analysis.

use rock_budget::Budget;

/// Configuration of the symbolic execution and tracelet extraction.
///
/// Defaults mirror the paper: tracelets up to length 7 (§3.2), bounded
/// path enumeration (the paper trades accuracy for scalability the same
/// way: "extract fewer and/or shorter tracelets from each procedure").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Maximum tracelet (window) length; longer event sequences are split.
    pub tracelet_len: usize,
    /// Maximum number of execution paths explored per function.
    pub max_paths: usize,
    /// Maximum times one basic block may appear on a single path
    /// (loop unrolling bound).
    pub block_visit_limit: usize,
    /// Hard cap on events recorded per object per path.
    pub max_events_per_object: usize,
    /// Depth `D` of the trained variable-order models (consumers read
    /// this; the paper's running example uses 2).
    pub slm_depth: usize,
    /// Per-function symbolic-execution fuel: one unit per instruction
    /// stepped across all explored paths. A function that exhausts its
    /// fuel is excluded (recorded, not propagated) — the same shared
    /// [`Budget`] vocabulary the interpreter uses.
    pub fuel: Budget,
    /// Optional wall-clock bound per function, in milliseconds. Wall
    /// clocks are nondeterministic, so this defaults to off and stays off
    /// in reproducible pipelines.
    pub deadline_ms: Option<u64>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            tracelet_len: 7,
            max_paths: 64,
            block_visit_limit: 2,
            max_events_per_object: 512,
            slm_depth: 2,
            // Generous: bounded path enumeration stays far below this on
            // any function the loader accepts, so behavior is unchanged
            // unless a caller tightens it.
            fuel: Budget::steps(1_000_000),
            deadline_ms: None,
        }
    }
}

impl AnalysisConfig {
    /// A cheaper configuration for very large binaries (shorter tracelets,
    /// fewer paths) — the scalability trade-off of §3.2.
    pub fn fast() -> Self {
        AnalysisConfig {
            tracelet_len: 5,
            max_paths: 16,
            block_visit_limit: 1,
            max_events_per_object: 128,
            slm_depth: 2,
            fuel: Budget::steps(200_000),
            deadline_ms: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AnalysisConfig::default();
        assert_eq!(c.tracelet_len, 7);
        assert_eq!(c.slm_depth, 2);
        assert!(c.max_paths >= 16);
    }

    #[test]
    fn fast_is_cheaper() {
        let f = AnalysisConfig::fast();
        let d = AnalysisConfig::default();
        assert!(f.tracelet_len <= d.tracelet_len);
        assert!(f.max_paths <= d.max_paths);
        assert!(f.fuel <= d.fuel);
    }

    #[test]
    fn deadlines_default_off() {
        assert_eq!(AnalysisConfig::default().deadline_ms, None);
        assert_eq!(AnalysisConfig::fast().deadline_ms, None);
    }
}
