//! Event extraction validated against *compiled* MiniCpp programs —
//! every Table 1 event kind must be observable end to end.

use rock_analysis::{extract_tracelets, AnalysisConfig, Event};
use rock_loader::LoadedBinary;
use rock_minicpp::{compile, CallArg, CompileOptions, Expr, ProgramBuilder};

fn tracelets_for(p: ProgramBuilder, class: &str) -> (Vec<Vec<Event>>, rock_minicpp::Compiled) {
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
    let vt = compiled.vtable_of(class).unwrap();
    (analysis.tracelets().of_type(vt).iter().map(|t| t.to_vec()).collect(), compiled)
}

#[test]
fn c_events_carry_slot_indices() {
    let mut p = ProgramBuilder::new();
    p.class("A")
        .method("m0", |b| {
            b.ret();
        })
        .method("m1", |b| {
            b.ret();
        });
    p.func("drive", |f| {
        f.new_obj("a", "A");
        f.vcall("a", "m1", vec![]);
        f.vcall("a", "m0", vec![]);
        f.vcall("a", "m1", vec![]);
        f.ret();
    });
    let (ts, _) = tracelets_for(p, "A");
    let has = |needle: &[Event]| ts.iter().any(|t| t.windows(needle.len()).any(|w| w == needle));
    assert!(has(&[Event::C(1), Event::C(0), Event::C(1)]), "tracelets: {ts:?}");
}

#[test]
fn arg_events_for_objects_passed_to_functions() {
    let mut p = ProgramBuilder::new();
    p.class("A").method("m", |b| {
        b.ret();
    });
    p.func("sink", |f| {
        f.param_val("x");
        f.param_obj("o", "A");
        f.ret();
    });
    p.func("drive", |f| {
        f.new_obj("a", "A");
        f.call("sink", vec![CallArg::Value(Expr::Const(7)), CallArg::Obj("a".into())]);
        f.ret();
    });
    let (ts, _) = tracelets_for(p, "A");
    // The object travels in r1 => Arg(1).
    let has_arg = ts.iter().any(|t| t.contains(&Event::Arg(1)));
    assert!(has_arg, "tracelets: {ts:?}");
}

#[test]
fn ret_event_for_returned_objects() {
    let mut p = ProgramBuilder::new();
    p.class("A").method("m", |b| {
        b.ret();
    });
    p.func("make", |f| {
        f.new_obj("a", "A");
        f.vcall("a", "m", vec![]);
        f.ret_val(Expr::Var("a".into()));
    });
    let (ts, _) = tracelets_for(p, "A");
    let has_ret = ts.iter().any(|t| t.contains(&Event::Ret));
    assert!(has_ret, "tracelets: {ts:?}");
}

#[test]
fn this_and_call_events_for_ctor_and_dtor() {
    let mut p = ProgramBuilder::new();
    p.class("A").method("m", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("a", "A");
        f.delete("a");
        f.ret();
    });
    let (ts, compiled) = tracelets_for(p, "A");
    let ctor = compiled.image().symbols().by_name("A::A").unwrap().addr;
    let dtor = compiled.image().symbols().by_name("A::~A").unwrap().addr;
    let flat: Vec<Event> = ts.iter().flatten().copied().collect();
    assert!(flat.contains(&Event::This));
    assert!(flat.contains(&Event::Call(ctor)), "ctor call event");
    assert!(flat.contains(&Event::Call(dtor)), "dtor call event");
}

#[test]
fn field_events_in_method_bodies() {
    let mut p = ProgramBuilder::new();
    p.class("A").field("x").field("y").method("swap_ish", |b| {
        b.read("t", "this", "x");
        b.write("this", "y", Expr::Var("t".into()));
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("a", "A");
        f.vcall("a", "swap_ish", vec![]);
        f.ret();
    });
    let (ts, _) = tracelets_for(p, "A");
    // x at offset 8, y at offset 16.
    let has = ts.iter().any(|t| t.windows(2).any(|w| w == [Event::R(8), Event::W(16)]));
    assert!(has, "tracelets: {ts:?}");
}

#[test]
fn both_if_branches_contribute_tracelets() {
    let mut p = ProgramBuilder::new();
    p.class("A")
        .method("yes", |b| {
            b.ret();
        })
        .method("no", |b| {
            b.ret();
        });
    p.func("drive", |f| {
        f.param_val("c");
        f.new_obj("a", "A");
        f.if_else(
            Expr::Param(0),
            |t| {
                t.vcall("a", "yes", vec![]);
            },
            |e| {
                e.vcall("a", "no", vec![]);
            },
        );
        f.ret();
    });
    let (ts, _) = tracelets_for(p, "A");
    let flat: Vec<Event> = ts.iter().flatten().copied().collect();
    assert!(flat.contains(&Event::C(0)), "then-branch dispatch seen");
    assert!(flat.contains(&Event::C(1)), "else-branch dispatch seen");
}

#[test]
fn tracelet_windows_respect_the_limit() {
    let mut p = ProgramBuilder::new();
    p.class("A").method("m", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("a", "A");
        for _ in 0..30 {
            f.vcall("a", "m", vec![]);
        }
        f.ret();
    });
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    for limit in [3usize, 7, 11] {
        let mut config = AnalysisConfig::default();
        config.tracelet_len = limit;
        let analysis = extract_tracelets(&loaded, &config);
        let vt = compiled.vtable_of("A").unwrap();
        for t in analysis.tracelets().of_type(vt) {
            assert!(t.len() <= limit, "window {t:?} exceeds {limit}");
        }
    }
}

#[test]
fn optimized_and_debug_builds_yield_comparable_dispatch_signals() {
    let build = |inline: bool| {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m", |b| {
            b.ret();
        });
        p.class("B").base("A").method("n", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "B");
            f.vcall("b", "m", vec![]);
            f.vcall("b", "n", vec![]);
            f.ret();
        });
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = inline;
        let compiled = compile(&p.finish(), &opts).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
        let vt = compiled.vtable_of("B").unwrap();
        analysis
            .tracelets()
            .of_type(vt)
            .iter()
            .flat_map(|t| t.iter())
            .filter(|e| matches!(e, Event::C(_)))
            .count()
    };
    let debug_c = build(false);
    let optimized_c = build(true);
    assert!(debug_c > 0);
    assert_eq!(debug_c, optimized_c, "dispatch evidence survives optimization");
}
