//! Property-based tests: randomly generated hierarchies compile to
//! binaries that *execute* correctly, and the dynamic baseline recovers
//! debug-build hierarchies exactly.

use proptest::prelude::*;
use rock_minicpp::{compile, CompileOptions, Program, ProgramBuilder};
use rock_vm::{dynamic_reconstruct, DynamicOptions, Machine};

/// Random forest: parent[i] < i or None.
fn arb_parents() -> impl Strategy<Value = Vec<Option<usize>>> {
    (2usize..7).prop_flat_map(|n| {
        (0..n)
            .map(|i| {
                if i == 0 {
                    Just(None).boxed()
                } else {
                    prop_oneof![2 => (0..i).prop_map(Some), 1 => Just(None)].boxed()
                }
            })
            .collect::<Vec<BoxedStrategy<Option<usize>>>>()
    })
}

fn build(parents: &[Option<usize>]) -> Program {
    let mut p = ProgramBuilder::new();
    for (i, parent) in parents.iter().enumerate() {
        let mut cb = p.class(format!("C{i}"));
        if let Some(pi) = parent {
            cb.base(format!("C{pi}"));
        }
        cb.field(format!("f{i}"));
        cb.method(format!("m{i}"), move |b| {
            b.ret_val(rock_minicpp::Expr::Const(100 + i as u64));
        });
    }
    for (i, _) in parents.iter().enumerate() {
        p.func(format!("drive{i}"), move |f| {
            f.new_obj("o", format!("C{i}"));
            f.vcall_dst("r", "o", format!("m{i}"), vec![]);
            f.delete("o");
            f.ret_val(rock_minicpp::Expr::Var("r".into()));
        });
    }
    p.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every driver executes, returns its class's magic value (dispatch
    /// reached the right implementation), and faults never occur.
    #[test]
    fn compiled_programs_execute_correctly(parents in arb_parents(), optimized in any::<bool>()) {
        let program = build(&parents);
        let options = if optimized {
            // Keep symbols for the VM runtime lookup; other passes on.
            let mut o = CompileOptions::default();
            o.inline_parent_ctors = true;
            o
        } else {
            CompileOptions::default()
        };
        let compiled = compile(&program, &options).unwrap();
        let mut vm = Machine::new(compiled.image().clone()).unwrap();
        for (i, _) in parents.iter().enumerate() {
            let entry = compiled
                .image()
                .symbols()
                .by_name(&format!("drive{i}"))
                .unwrap()
                .addr;
            vm.reset();
            let out = vm.run(entry, &[]).unwrap();
            prop_assert_eq!(out.return_value, 100 + i as u64, "driver {} dispatched wrong impl", i);
            prop_assert!(!out.halted);
        }
    }

    /// On debug builds the dynamic baseline reconstructs the forest
    /// exactly (full ctor chains, full coverage).
    #[test]
    fn dynamic_baseline_is_exact_on_debug_builds(parents in arb_parents()) {
        let program = build(&parents);
        let compiled = compile(&program, &CompileOptions::default()).unwrap();
        let forest =
            dynamic_reconstruct(compiled.image(), &DynamicOptions::default()).unwrap();
        for (i, parent) in parents.iter().enumerate() {
            let vt = compiled.vtable_of(&format!("C{i}")).unwrap();
            let got = forest.parent_of(&vt).copied();
            let want = parent.map(|pi| compiled.vtable_of(&format!("C{pi}")).unwrap());
            prop_assert_eq!(got, want, "class C{}", i);
        }
    }

    /// On inlined builds the dynamic baseline loses every edge, while the
    /// binary still executes identically (the §7 contrast, as a law).
    #[test]
    fn inlining_blinds_dynamic_but_not_execution(parents in arb_parents()) {
        let program = build(&parents);
        let mut options = CompileOptions::default();
        options.inline_parent_ctors = true;
        let compiled = compile(&program, &options).unwrap();
        let forest =
            dynamic_reconstruct(compiled.image(), &DynamicOptions::default()).unwrap();
        for (i, _) in parents.iter().enumerate() {
            let vt = compiled.vtable_of(&format!("C{i}")).unwrap();
            prop_assert_eq!(forest.parent_of(&vt), None, "C{} should be orphaned", i);
        }
    }
}
