//! Reference interpreter for the substrate ISA, plus a **dynamic**
//! hierarchy-reconstruction baseline in the style of Lego
//! (Srinivasan & Reps), which the paper compares against in §7.
//!
//! The interpreter ([`Machine`]) executes compiled binary images for
//! real: virtual dispatch goes through the in-memory vtable pointers,
//! constructors store them, the heap is a bump allocator behind the
//! `__alloc` runtime function. It serves two purposes:
//!
//! 1. **Substrate validation** — compiled MiniCpp programs actually run,
//!    dispatch reaches the overriding implementation, fields hold what
//!    was stored (tested extensively);
//! 2. **The dynamic baseline** ([`dynamic_reconstruct`]) — Lego-style
//!    hierarchy recovery from execution traces: during construction an
//!    object's vtable pointer is overwritten parent-to-child, revealing
//!    ancestor chains. The paper's criticism (§7) is that this evidence
//!    disappears when constructors are inlined (dead-store elimination) —
//!    which is exactly observable here: the baseline is perfect on debug
//!    builds and collapses on optimized ones while Rock's static
//!    behavioral analysis keeps working.
//!
//! # Example
//!
//! ```
//! use rock_minicpp::{ProgramBuilder, CompileOptions, compile};
//! use rock_vm::Machine;
//!
//! let mut p = ProgramBuilder::new();
//! p.class("A").field("x").method("set", |b| {
//!     b.write("this", "x", rock_minicpp::Expr::Const(41));
//!     b.ret();
//! });
//! p.func("drive", |f| {
//!     f.new_obj("a", "A");
//!     f.vcall("a", "set", vec![]);
//!     f.ret();
//! });
//! let compiled = compile(&p.finish(), &CompileOptions::default())?;
//! let mut vm = Machine::new(compiled.image().clone())?;
//! let drive = compiled.image().symbols().by_name("drive").unwrap().addr;
//! let outcome = vm.run(drive, &[])?;
//! assert!(outcome.steps > 0);
//! // The driver dispatched exactly one virtual call.
//! assert_eq!(vm.trace().virtual_calls().count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamic;
mod machine;
mod trace;

pub use dynamic::{dynamic_reconstruct, DynamicOptions};
pub use machine::{Machine, Outcome, VmError};
pub use rock_budget::{Budget, Exhausted};
pub use trace::{Trace, TraceEvent};
