//! A Lego-style **dynamic** hierarchy reconstructor (Srinivasan & Reps,
//! discussed in the paper's §7).
//!
//! Dynamic tools execute the program and watch each object's vtable
//! pointer evolve: a constructor chain stores the base class's vtable
//! first, then overwrites it with the derived class's — so consecutive
//! distinct vtable stores to one address reveal parent→child edges.
//!
//! This is exactly the evidence that optimizing compilers destroy
//! (inlined constructors + dead-store elimination leave only the final
//! store), which is the paper's argument for a *static, behavioral*
//! approach: "Rock is able to reconstruct a hierarchy even when all
//! destructors have been inlined". The comparison harness
//! (`rock-bench --bin dynamic_vs_static`) measures both on the same
//! binaries.

use std::collections::{BTreeMap, BTreeSet};

use rock_binary::{Addr, BinaryImage, Instr};
use rock_budget::Budget;
use rock_graph::Forest;

use crate::{Machine, VmError};

/// Options for the dynamic baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynamicOptions {
    /// Per-driver execution budget (shared [`Budget`] vocabulary).
    pub budget: Budget,
}

impl Default for DynamicOptions {
    fn default() -> Self {
        DynamicOptions { budget: Budget::steps(5_000_000) }
    }
}

/// Reconstructs a hierarchy by *executing* the binary's entry points and
/// observing vtable-pointer evolution per object.
///
/// Requires an **unstripped** image (dynamic tools run real binaries and
/// need the allocator located; symbols provide that here). Drivers are
/// all functions that are never statically called and sit in no vtable.
///
/// # Errors
///
/// Returns [`VmError::Load`] if the image fails to load; individual
/// driver crashes are tolerated (their partial traces still count).
pub fn dynamic_reconstruct(
    image: &BinaryImage,
    options: &DynamicOptions,
) -> Result<Forest<Addr>, VmError> {
    let mut vm = Machine::new(image.clone())?;
    vm.set_budget(options.budget);

    // Root functions: never a static call target, not in a vtable, not a
    // runtime helper.
    let mut call_targets: BTreeSet<Addr> = BTreeSet::new();
    for f in vm.loaded().functions() {
        for d in f.instrs() {
            if let Instr::Call { target } = d.instr {
                call_targets.insert(target);
            }
        }
    }
    let in_vtables: BTreeSet<Addr> =
        vm.loaded().vtables().iter().flat_map(|v| v.slots().iter().copied()).collect();
    let runtime: BTreeSet<Addr> =
        image.symbols().iter().filter(|s| s.name.starts_with("__")).map(|s| s.addr).collect();
    let drivers: Vec<Addr> = vm
        .loaded()
        .functions()
        .iter()
        .map(|f| f.entry())
        .filter(|e| !call_targets.contains(e) && !in_vtables.contains(e) && !runtime.contains(e))
        .collect();

    // Observe vtable-store sequences per object address, across drivers.
    let mut edge_votes: BTreeMap<(Addr, Addr), usize> = BTreeMap::new();
    for driver in drivers {
        vm.reset();
        // Crashing drivers still contribute their partial trace.
        let _ = vm.run(driver, &[0, 0, 0, 0, 0, 0]);
        let mut per_addr: BTreeMap<Addr, Vec<Addr>> = BTreeMap::new();
        for (at, vtable) in vm.trace().vtable_stores() {
            per_addr.entry(at).or_default().push(vtable);
        }
        for stores in per_addr.values() {
            // Construction phase: consecutive distinct stores where the
            // successor has not been seen yet at this address (skips the
            // destructor's reverse walk).
            let mut seen: BTreeSet<Addr> = BTreeSet::new();
            for pair in stores.windows(2) {
                seen.insert(pair[0]);
                if pair[0] != pair[1] && !seen.contains(&pair[1]) {
                    *edge_votes.entry((pair[0], pair[1])).or_insert(0) += 1;
                }
            }
        }
    }

    // Majority parent per child.
    let mut best: BTreeMap<Addr, (Addr, usize)> = BTreeMap::new();
    for ((parent, child), votes) in &edge_votes {
        let e = best.entry(*child).or_insert((*parent, 0));
        if *votes > e.1 {
            *e = (*parent, *votes);
        }
    }

    let mut forest = Forest::new();
    for vt in vm.loaded().vtables() {
        let parent = best.get(&vt.addr()).map(|(p, _)| *p);
        forest.insert(vt.addr(), parent);
    }
    Ok(forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_minicpp::{compile, CompileOptions, ProgramBuilder};

    fn chain_program() -> ProgramBuilder {
        let mut p = ProgramBuilder::new();
        p.class("A").method("am", |b| {
            b.ret();
        });
        p.class("B").base("A").method("bm", |b| {
            b.ret();
        });
        p.class("C").base("B").method("cm", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.new_obj("b", "B");
            f.new_obj("c", "C");
            f.vcall("c", "am", vec![]);
            f.delete("c");
            f.ret();
        });
        p
    }

    #[test]
    fn debug_build_yields_exact_chain() {
        let compiled = compile(&chain_program().finish(), &CompileOptions::default()).unwrap();
        let forest = dynamic_reconstruct(compiled.image(), &DynamicOptions::default()).unwrap();
        let a = compiled.vtable_of("A").unwrap();
        let b = compiled.vtable_of("B").unwrap();
        let c = compiled.vtable_of("C").unwrap();
        assert_eq!(forest.parent_of(&a), None);
        assert_eq!(forest.parent_of(&b), Some(&a));
        assert_eq!(forest.parent_of(&c), Some(&b));
    }

    #[test]
    fn destructor_walk_does_not_reverse_edges() {
        // `delete c` re-stores C, B, A vtables in reverse; the seen-set
        // logic must not emit child->parent edges from that.
        let compiled = compile(&chain_program().finish(), &CompileOptions::default()).unwrap();
        let forest = dynamic_reconstruct(compiled.image(), &DynamicOptions::default()).unwrap();
        let a = compiled.vtable_of("A").unwrap();
        let c = compiled.vtable_of("C").unwrap();
        assert_ne!(forest.parent_of(&a), Some(&c));
        assert!(forest.is_acyclic());
    }

    #[test]
    fn optimized_build_loses_the_evidence() {
        // The paper's §7 criticism of dynamic approaches, reproduced:
        // inlining + DSE leave a single vtable store per object, so the
        // dynamic baseline sees no parent edges at all.
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true;
        let compiled = compile(&chain_program().finish(), &opts).unwrap();
        let forest = dynamic_reconstruct(compiled.image(), &DynamicOptions::default()).unwrap();
        for class in ["A", "B", "C"] {
            let vt = compiled.vtable_of(class).unwrap();
            assert_eq!(forest.parent_of(&vt), None, "{class} should be an orphan root");
        }
    }

    #[test]
    fn uninstantiated_types_are_invisible_to_dynamic_analysis() {
        // Coverage dependence: a type no driver instantiates produces no
        // trace, hence no parent — another §7 weakness of dynamic tools.
        let mut p = ProgramBuilder::new();
        p.class("A").method("am", |b| {
            b.ret();
        });
        p.class("B").base("A").method("bm", |b| {
            b.ret();
        });
        p.class("Unused").base("A").method("um", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "B");
            f.vcall("b", "bm", vec![]);
            f.ret();
        });
        let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
        let forest = dynamic_reconstruct(compiled.image(), &DynamicOptions::default()).unwrap();
        let b = compiled.vtable_of("B").unwrap();
        let unused = compiled.vtable_of("Unused").unwrap();
        assert!(forest.parent_of(&b).is_some(), "covered type resolved");
        assert_eq!(forest.parent_of(&unused), None, "uncovered type lost");
    }
}
