//! The interpreter.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use rock_binary::{Addr, BinaryImage, Instr, Reg};
use rock_budget::{Budget, Exhausted};
use rock_loader::{LoadError, LoadedBinary};

use crate::{Trace, TraceEvent};

/// Base address of the bump-allocated heap.
const HEAP_BASE: u64 = 0x4000_0000;
/// Initial stack pointer (frames grow downward).
const STACK_TOP: u64 = 0x7fff_0000;
/// Default execution budget.
const DEFAULT_BUDGET: Budget = Budget::steps(5_000_000);

/// A runtime error raised by the interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// The image failed to load.
    Load(LoadError),
    /// Execution left the text section.
    BadPc(Addr),
    /// An indirect call did not land on a function entry.
    BadIndirectTarget(Addr),
    /// A pure virtual function was invoked (`__purecall`).
    PureVirtualCall {
        /// Address of the trap function.
        at: Addr,
    },
    /// The step budget was exhausted (runaway loop).
    Exhausted(Exhausted),
    /// `run` was called with an address that is not a function entry.
    NotAFunction(Addr),
    /// A load or store touched the null page (address below 0x1000) —
    /// what a real process would fault on.
    NullAccess(Addr),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Load(e) => write!(f, "load failed: {e}"),
            VmError::BadPc(a) => write!(f, "execution left text at {a}"),
            VmError::BadIndirectTarget(a) => write!(f, "indirect call to non-function {a}"),
            VmError::PureVirtualCall { at } => write!(f, "pure virtual call trapped at {at}"),
            VmError::Exhausted(e) => write!(f, "{e}"),
            VmError::NotAFunction(a) => write!(f, "{a} is not a function entry"),
            VmError::NullAccess(a) => write!(f, "null-page access at {a}"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Load(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LoadError> for VmError {
    fn from(e: LoadError) -> Self {
        VmError::Load(e)
    }
}

impl From<Exhausted> for VmError {
    fn from(e: Exhausted) -> Self {
        VmError::Exhausted(e)
    }
}

/// The result of a completed run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Instructions executed.
    pub steps: u64,
    /// `r0` at the final return.
    pub return_value: u64,
    /// `true` if the program executed `halt` instead of returning.
    pub halted: bool,
}

/// An interpreter instance over one binary image.
///
/// Runtime functions (`__alloc`, `__free`, `__purecall`) are located via
/// the symbol table when present, or can be supplied explicitly with
/// [`Machine::with_runtime`] for stripped images.
#[derive(Clone, Debug)]
pub struct Machine {
    loaded: LoadedBinary,
    mem: BTreeMap<u64, u64>,
    regs: [u64; Reg::COUNT],
    heap_next: u64,
    alloc_fns: BTreeSet<Addr>,
    free_fns: BTreeSet<Addr>,
    purecall_fns: BTreeSet<Addr>,
    vtable_addrs: BTreeSet<Addr>,
    trace: Trace,
    budget: Budget,
}

impl Machine {
    /// Creates a machine, locating runtime functions via the symbol table.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Load`] if the image cannot be loaded.
    pub fn new(image: BinaryImage) -> Result<Machine, VmError> {
        let mut alloc = BTreeSet::new();
        let mut free = BTreeSet::new();
        let mut pure = BTreeSet::new();
        for s in image.symbols().iter() {
            match s.name.as_str() {
                "__alloc" => {
                    alloc.insert(s.addr);
                }
                "__free" => {
                    free.insert(s.addr);
                }
                "__purecall" => {
                    pure.insert(s.addr);
                }
                _ => {}
            }
        }
        Machine::with_runtime(image, alloc, free, pure)
    }

    /// Creates a machine with explicitly designated runtime functions
    /// (needed for stripped images, whose symbol table is empty).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Load`] if the image cannot be loaded.
    pub fn with_runtime(
        image: BinaryImage,
        alloc_fns: BTreeSet<Addr>,
        free_fns: BTreeSet<Addr>,
        purecall_fns: BTreeSet<Addr>,
    ) -> Result<Machine, VmError> {
        let loaded = LoadedBinary::load(image)?;
        let vtable_addrs = loaded.vtables().iter().map(|v| v.addr()).collect();
        Ok(Machine {
            loaded,
            mem: BTreeMap::new(),
            regs: [0; Reg::COUNT],
            heap_next: HEAP_BASE,
            alloc_fns,
            free_fns,
            purecall_fns,
            vtable_addrs,
            trace: Trace::new(),
            budget: DEFAULT_BUDGET,
        })
    }

    /// Replaces the per-run execution budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Replaces the step budget (convenience for [`Machine::set_budget`]).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.budget = Budget::steps(limit);
    }

    /// The trace recorded so far (across runs; see [`Machine::reset`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The loaded view of the image.
    pub fn loaded(&self) -> &LoadedBinary {
        &self.loaded
    }

    /// Clears memory, registers, heap and trace, keeping the image.
    pub fn reset(&mut self) {
        self.mem.clear();
        self.regs = [0; Reg::COUNT];
        self.heap_next = HEAP_BASE;
        self.trace.clear();
    }

    fn read_word(&self, addr: Addr) -> u64 {
        if let Some(v) = self.mem.get(&addr.value()) {
            return *v;
        }
        self.loaded.image().read_word(addr).unwrap_or(0)
    }

    fn write_word(&mut self, addr: Addr, value: u64) {
        self.mem.insert(addr.value(), value);
        if self.vtable_addrs.contains(&Addr::new(value)) {
            self.trace.push(TraceEvent::VtableStore { at: addr, vtable: Addr::new(value) });
        }
    }

    fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index() as usize]
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index() as usize] = v;
    }

    /// Executes the function at `entry` with up to six word arguments.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution. The trace accumulated up
    /// to the error is preserved.
    pub fn run(&mut self, entry: Addr, args: &[u64]) -> Result<Outcome, VmError> {
        if self.loaded.function_at(entry).is_none() {
            return Err(VmError::NotAFunction(entry));
        }
        self.regs = [0; Reg::COUNT];
        for (i, a) in args.iter().take(Reg::ARG_COUNT).enumerate() {
            self.regs[i] = *a;
        }
        self.set_reg(Reg::SP, STACK_TOP);

        // (return pc, saved sp); the entry frame returns to a sentinel.
        let mut frames: Vec<(Option<Addr>, u64)> = vec![(None, STACK_TOP)];
        let mut pc = entry;
        let mut meter = self.budget.meter();

        loop {
            meter.spend(1)?;
            let function = self.loaded.function_containing(pc).ok_or(VmError::BadPc(pc))?;
            let idx = function.index_of(pc).ok_or(VmError::BadPc(pc))?;
            let d = function.instrs()[idx];
            let mut next = d.next_addr();
            match d.instr {
                Instr::Enter { frame } => {
                    let sp = self.reg(Reg::SP).wrapping_sub(frame as u64);
                    self.set_reg(Reg::SP, sp);
                }
                Instr::Ret => {
                    let (ret_pc, saved_sp) = frames.pop().expect("frame underflow");
                    self.set_reg(Reg::SP, saved_sp);
                    match ret_pc {
                        Some(r) => next = r,
                        None => {
                            return Ok(Outcome {
                                steps: meter.spent(),
                                return_value: self.reg(Reg::R0),
                                halted: false,
                            })
                        }
                    }
                }
                Instr::Halt => {
                    return Ok(Outcome {
                        steps: meter.spent(),
                        return_value: self.reg(Reg::R0),
                        halted: true,
                    })
                }
                Instr::Nop => {}
                Instr::MovImm { dst, imm } => self.set_reg(dst, imm),
                Instr::MovReg { dst, src } => {
                    let v = self.reg(src);
                    self.set_reg(dst, v);
                }
                Instr::Load { dst, base, offset } => {
                    let addr = Addr::new(self.reg(base).wrapping_add_signed(offset as i64));
                    if addr.value() < 0x1000 {
                        return Err(VmError::NullAccess(addr));
                    }
                    let v = self.read_word(addr);
                    self.set_reg(dst, v);
                }
                Instr::Store { base, offset, src } => {
                    let addr = Addr::new(self.reg(base).wrapping_add_signed(offset as i64));
                    if addr.value() < 0x1000 {
                        return Err(VmError::NullAccess(addr));
                    }
                    let v = self.reg(src);
                    self.write_word(addr, v);
                }
                Instr::Lea { dst, base, offset } => {
                    let v = self.reg(base).wrapping_add_signed(offset as i64);
                    self.set_reg(dst, v);
                }
                Instr::BinOp { op, dst, lhs, rhs } => {
                    let v = op.eval(self.reg(lhs), self.reg(rhs));
                    self.set_reg(dst, v);
                }
                Instr::Jmp { target } => next = target,
                Instr::Branch { cond, target } => {
                    if self.reg(cond) != 0 {
                        next = target;
                    }
                }
                Instr::Call { target } => {
                    if let Some(n) = self.enter_callee(target, next, &mut frames)? {
                        next = n;
                    }
                }
                Instr::CallReg { target } => {
                    let t = Addr::new(self.reg(target));
                    if self.loaded.function_at(t).is_none() {
                        return Err(VmError::BadIndirectTarget(t));
                    }
                    // Reconstruct the dispatch context for the trace.
                    let receiver = Addr::new(self.reg(Reg::R0));
                    let vptr = Addr::new(self.read_word(receiver));
                    if let Some(vt) = self.loaded.vtable_at(vptr) {
                        if let Some(slot) = vt.slots().iter().position(|s| *s == t) {
                            self.trace.push(TraceEvent::VirtualCall {
                                receiver,
                                vtable: vptr,
                                slot,
                                target: t,
                            });
                        }
                    }
                    if let Some(n) = self.enter_callee(t, next, &mut frames)? {
                        next = n;
                    }
                }
            }
            pc = next;
        }
    }

    /// Handles a call: runtime intercepts return `None` (fall through to
    /// the next instruction), ordinary calls return the callee entry.
    fn enter_callee(
        &mut self,
        target: Addr,
        return_pc: Addr,
        frames: &mut Vec<(Option<Addr>, u64)>,
    ) -> Result<Option<Addr>, VmError> {
        if self.alloc_fns.contains(&target) {
            let size = self.reg(Reg::R0).max(8);
            let at = Addr::new(self.heap_next);
            // 16-byte align each allocation.
            self.heap_next += (size + 15) & !15;
            self.set_reg(Reg::R0, at.value());
            self.trace.push(TraceEvent::Alloc { at, size });
            return Ok(None);
        }
        if self.free_fns.contains(&target) {
            return Ok(None);
        }
        if self.purecall_fns.contains(&target) {
            return Err(VmError::PureVirtualCall { at: target });
        }
        if self.loaded.function_at(target).is_none() {
            return Err(VmError::BadIndirectTarget(target));
        }
        self.trace.push(TraceEvent::DirectCall { target, receiver: Addr::new(self.reg(Reg::R0)) });
        frames.push((Some(return_pc), self.reg(Reg::SP)));
        Ok(Some(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_minicpp::{compile, CompileOptions, Expr, ProgramBuilder};

    fn machine_for(p: ProgramBuilder, opts: &CompileOptions) -> (Machine, rock_minicpp::Compiled) {
        let compiled = compile(&p.finish(), opts).unwrap();
        let vm = Machine::new(compiled.image().clone()).unwrap();
        (vm, compiled)
    }

    fn entry(compiled: &rock_minicpp::Compiled, name: &str) -> Addr {
        compiled.image().symbols().by_name(name).unwrap().addr
    }

    #[test]
    fn arithmetic_and_return() {
        let mut p = ProgramBuilder::new();
        p.func("f", |f| {
            f.let_("x", Expr::bin(rock_binary::BinOp::Mul, Expr::Const(6), Expr::Const(7)));
            f.ret_val(Expr::Var("x".into()));
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        let out = vm.run(entry(&compiled, "f"), &[]).unwrap();
        assert_eq!(out.return_value, 42);
        assert!(!out.halted);
    }

    #[test]
    fn params_flow_through() {
        let mut p = ProgramBuilder::new();
        p.func("add", |f| {
            f.param_val("a");
            f.param_val("b");
            f.ret_val(Expr::bin(rock_binary::BinOp::Add, Expr::Param(0), Expr::Param(1)));
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        let out = vm.run(entry(&compiled, "add"), &[40, 2]).unwrap();
        assert_eq!(out.return_value, 42);
    }

    #[test]
    fn branches_take_both_arms() {
        let mut p = ProgramBuilder::new();
        p.func("pick", |f| {
            f.param_val("c");
            f.if_else(
                Expr::Param(0),
                |t| {
                    t.ret_val(Expr::Const(1));
                },
                |e| {
                    e.ret_val(Expr::Const(2));
                },
            );
            f.ret();
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        assert_eq!(vm.run(entry(&compiled, "pick"), &[1]).unwrap().return_value, 1);
        assert_eq!(vm.run(entry(&compiled, "pick"), &[0]).unwrap().return_value, 2);
    }

    #[test]
    fn virtual_dispatch_reaches_override() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("value", |b| {
            b.ret_val(Expr::Const(10));
        });
        p.class("B").base("A").method("value", |b| {
            b.ret_val(Expr::Const(20));
        });
        p.func("drive", |f| {
            f.param_val("which");
            f.if_else(
                Expr::Param(0),
                |t| {
                    t.new_obj("o", "B");
                    t.vcall_dst("r", "o", "value", vec![]);
                    t.ret_val(Expr::Var("r".into()));
                },
                |e| {
                    e.new_obj("o2", "A");
                    e.vcall_dst("r2", "o2", "value", vec![]);
                    e.ret_val(Expr::Var("r2".into()));
                },
            );
            f.ret();
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        let drive = entry(&compiled, "drive");
        assert_eq!(vm.run(drive, &[1]).unwrap().return_value, 20, "B::value");
        assert_eq!(vm.run(drive, &[0]).unwrap().return_value, 10, "A::value");
        assert!(vm.trace().virtual_calls().count() >= 2);
    }

    #[test]
    fn fields_persist_across_calls() {
        let mut p = ProgramBuilder::new();
        p.class("Counter")
            .field("n")
            .method("bump", |b| {
                b.read("v", "this", "n");
                b.let_(
                    "v2",
                    Expr::bin(rock_binary::BinOp::Add, Expr::Var("v".into()), Expr::Const(1)),
                );
                b.write("this", "n", Expr::Var("v2".into()));
                b.ret();
            })
            .method("get", |b| {
                b.read("v", "this", "n");
                b.ret_val(Expr::Var("v".into()));
            });
        p.func("drive", |f| {
            f.new_obj("c", "Counter");
            f.vcall("c", "bump", vec![]);
            f.vcall("c", "bump", vec![]);
            f.vcall("c", "bump", vec![]);
            f.vcall_dst("r", "c", "get", vec![]);
            f.ret_val(Expr::Var("r".into()));
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        assert_eq!(vm.run(entry(&compiled, "drive"), &[]).unwrap().return_value, 3);
    }

    #[test]
    fn ctor_chain_traces_vtable_stores_in_debug_builds() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m", |b| {
            b.ret();
        });
        p.class("B").base("A").method("n", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "B");
            f.ret();
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        vm.run(entry(&compiled, "drive"), &[]).unwrap();
        // Construction stores A's vtable, then overwrites with B's — the
        // dynamic-type evolution Lego-style tools rely on.
        let stores: Vec<Addr> = vm.trace().vtable_stores().map(|(_, vt)| vt).collect();
        assert_eq!(stores.len(), 2);
        assert_eq!(stores[0], compiled.vtable_of("A").unwrap());
        assert_eq!(stores[1], compiled.vtable_of("B").unwrap());
    }

    #[test]
    fn inlined_ctor_erases_the_dynamic_evidence() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m", |b| {
            b.ret();
        });
        p.class("B").base("A").method("n", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("b", "B");
            f.ret();
        });
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = true;
        let (mut vm, compiled) = machine_for(p, &opts);
        vm.run(entry(&compiled, "drive"), &[]).unwrap();
        let stores: Vec<Addr> = vm.trace().vtable_stores().map(|(_, vt)| vt).collect();
        assert_eq!(stores, vec![compiled.vtable_of("B").unwrap()], "DSE left only B's store");
    }

    #[test]
    fn stack_objects_work() {
        let mut p = ProgramBuilder::new();
        p.class("S")
            .field("v")
            .method("put", |b| {
                b.write("this", "v", Expr::Const(9));
                b.ret();
            })
            .method("get", |b| {
                b.read("x", "this", "v");
                b.ret_val(Expr::Var("x".into()));
            });
        p.func("drive", |f| {
            f.new_stack("s", "S");
            f.vcall("s", "put", vec![]);
            f.vcall_dst("r", "s", "get", vec![]);
            f.ret_val(Expr::Var("r".into()));
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        assert_eq!(vm.run(entry(&compiled, "drive"), &[]).unwrap().return_value, 9);
        // No heap allocation happened.
        assert!(!vm.trace().events().iter().any(|e| matches!(e, TraceEvent::Alloc { .. })));
    }

    #[test]
    fn delete_runs_the_dtor() {
        let mut p = ProgramBuilder::new();
        p.class("D").method("m", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("d", "D");
            f.delete("d");
            f.ret();
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        vm.run(entry(&compiled, "drive"), &[]).unwrap();
        let dtor = entry(&compiled, "D::~D");
        let called = vm
            .trace()
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::DirectCall { target, .. } if *target == dtor));
        assert!(called, "delete must invoke the destructor");
    }

    #[test]
    fn pure_virtual_call_traps() {
        let mut p = ProgramBuilder::new();
        p.class("I").pure_method("run").method("other", |b| {
            b.ret();
        });
        p.class("Impl").base("I").method("run", |b| {
            b.ret();
        });
        // Force a pure call: dispatch `run` on a hand-rolled I-typed
        // object is not expressible in MiniCpp (I is abstract), so call
        // through Impl but overwrite the vptr first — the VM test uses
        // raw execution of Impl's table anyway; instead simply assert the
        // trap classifies as a VmError if invoked directly.
        p.func("drive", |f| {
            f.new_obj("x", "Impl");
            f.vcall("x", "run", vec![]);
            f.ret();
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        // The legitimate path works...
        vm.run(entry(&compiled, "drive"), &[]).unwrap();
        // ...and invoking the trap raises the dedicated error.
        let trap = entry(&compiled, "__purecall");
        // Calling the trap directly is not a function call through
        // enter_callee, so emulate a dispatch to it:
        let err = vm.run(trap, &[]);
        // Running the trap as an entry executes Enter; Halt.
        assert!(matches!(err, Ok(Outcome { halted: true, .. })));
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        // Hand-written spin loop.
        use rock_binary::ImageBuilder;
        let mut b = ImageBuilder::new();
        b.begin_function("spin");
        let top = b.new_label();
        b.push(Instr::Enter { frame: 0 });
        b.bind_label(top);
        b.push_jmp(top);
        b.end_function();
        let image = b.finish();
        let mut vm = Machine::new(image).unwrap();
        vm.set_budget(Budget::steps(1000));
        let e = vm.run(rock_binary::Addr::new(0x1000), &[]).unwrap_err();
        assert_eq!(e, VmError::Exhausted(Exhausted { limit: 1000 }));
    }

    #[test]
    fn set_step_limit_is_budget_sugar() {
        use rock_binary::ImageBuilder;
        let mut b = ImageBuilder::new();
        b.begin_function("spin");
        let top = b.new_label();
        b.push(Instr::Enter { frame: 0 });
        b.bind_label(top);
        b.push_jmp(top);
        b.end_function();
        let mut vm = Machine::new(b.finish()).unwrap();
        vm.set_step_limit(7);
        let e = vm.run(rock_binary::Addr::new(0x1000), &[]).unwrap_err();
        assert_eq!(e, VmError::Exhausted(Exhausted { limit: 7 }));
    }

    #[test]
    fn run_rejects_non_function_entry() {
        let mut p = ProgramBuilder::new();
        p.func("f", |f| {
            f.ret();
        });
        let (mut vm, _) = machine_for(p, &CompileOptions::default());
        assert!(matches!(vm.run(Addr::new(0x9999), &[]), Err(VmError::NotAFunction(_))));
    }

    #[test]
    fn reset_clears_state() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("a", "A");
            f.vcall("a", "m", vec![]);
            f.ret();
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        vm.run(entry(&compiled, "drive"), &[]).unwrap();
        assert!(!vm.trace().is_empty());
        vm.reset();
        assert!(vm.trace().is_empty());
    }

    #[test]
    fn null_access_faults() {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m", |b| {
            b.ret();
        });
        let (mut vm, compiled) = machine_for(p, &CompileOptions::default());
        // Run A's ctor directly with r0 = 0 (as a bogus "entry point"):
        // the vtable store through null must fault, like a real process.
        let ctor = entry(&compiled, "A::A");
        let err = vm.run(ctor, &[0]).unwrap_err();
        assert!(matches!(err, VmError::NullAccess(_)));
        // And nothing polluted the trace before the fault.
        assert_eq!(vm.trace().vtable_stores().count(), 0);
    }

    #[test]
    fn error_display() {
        assert!(VmError::BadPc(Addr::new(1)).to_string().contains("left text"));
        assert!(VmError::Exhausted(Exhausted { limit: 5 }).to_string().contains("step budget"));
        let e: VmError = LoadError::NoTextSection.into();
        assert!(Error::source(&e).is_some());
    }
}
