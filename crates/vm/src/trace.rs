//! Execution traces recorded by the interpreter.

use std::fmt;

use rock_binary::Addr;

/// One observable event during execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A known vtable address was stored to memory (the dynamic-type
    /// change Lego-style tools key on).
    VtableStore {
        /// Absolute address written to (the object's vptr slot).
        at: Addr,
        /// The vtable stored.
        vtable: Addr,
    },
    /// An indirect call resolved through a vtable slot.
    VirtualCall {
        /// Receiver pointer (`r0` at the call).
        receiver: Addr,
        /// The vtable the pointer was loaded from.
        vtable: Addr,
        /// Slot index.
        slot: usize,
        /// Resolved callee entry.
        target: Addr,
    },
    /// A direct call.
    DirectCall {
        /// Callee entry.
        target: Addr,
        /// `r0` at the call (the receiver for methods/ctors).
        receiver: Addr,
    },
    /// A heap allocation served by the `__alloc` runtime.
    Alloc {
        /// Returned object base address.
        at: Addr,
        /// Requested size in bytes.
        size: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::VtableStore { at, vtable } => write!(f, "vstore [{at}] <- {vtable}"),
            TraceEvent::VirtualCall { receiver, vtable, slot, target } => {
                write!(f, "vcall obj={receiver} vt={vtable} slot={slot} -> {target}")
            }
            TraceEvent::DirectCall { target, receiver } => {
                write!(f, "call {target} (r0={receiver})")
            }
            TraceEvent::Alloc { at, size } => write!(f, "alloc {size} -> {at}"),
        }
    }
}

/// An ordered execution trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Just the vtable stores, in order.
    pub fn vtable_stores(&self) -> impl Iterator<Item = (Addr, Addr)> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::VtableStore { at, vtable } => Some((*at, *vtable)),
            _ => None,
        })
    }

    /// Just the virtual calls, in order.
    pub fn virtual_calls(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| matches!(e, TraceEvent::VirtualCall { .. }))
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_and_filters() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(TraceEvent::Alloc { at: Addr::new(0x100), size: 16 });
        t.push(TraceEvent::VtableStore { at: Addr::new(0x100), vtable: Addr::new(0x2000) });
        t.push(TraceEvent::VirtualCall {
            receiver: Addr::new(0x100),
            vtable: Addr::new(0x2000),
            slot: 0,
            target: Addr::new(0x1000),
        });
        t.push(TraceEvent::DirectCall { target: Addr::new(0x1000), receiver: Addr::new(0) });
        assert_eq!(t.len(), 4);
        assert_eq!(t.vtable_stores().count(), 1);
        assert_eq!(t.virtual_calls().count(), 1);
        let text = t.to_string();
        assert!(text.contains("vstore"));
        assert!(text.contains("slot=0"));
        t.clear();
        assert!(t.is_empty());
    }
}
