//! Fine-grained incremental persistence of corpus sub-artifacts.
//!
//! The artifact store's per-job checkpoints ([`crate::artifact`]) are
//! keyed by an *image-level* content hash: change one byte of the
//! binary and the whole job recomputes. This module adds the layer
//! below — the corpus cache's *sub-artifacts* are checkpointed to disk
//! individually, each under its own content-derived key:
//!
//! | tier       | one entry per                   | key derived from                     |
//! |------------|---------------------------------|--------------------------------------|
//! | `exec`     | distinct function body          | position-independent WL content label + analysis config salt |
//! | `model`    | distinct tracelet multiset      | commutative hash of the trained windows + SLM depth |
//! | `distance` | ordered model pair × metric     | both model keys + metric tag         |
//! | `lifting`  | family lifting problem          | member model keys + edge list + tie config |
//!
//! Because every key is content-derived, *dirty-set propagation needs
//! no bookkeeping*: editing one function changes its WL label, which
//! misses the exec tier, which changes the tracelet multisets of
//! exactly the types that observe it, which changes their pool keys,
//! which misses the model tier, which invalidates precisely the
//! distance rows touching a changed model and the lift keys of the
//! families containing a changed type. Everything else re-keys
//! identically and is served from disk. In particular the exec key is
//! independent of the function's *address*, so byte-identical
//! functions at shifted offsets still hit (the image-level
//! [`crate::artifact::content_key`] cannot do this — see its docs).
//!
//! On-disk layout, under the artifact store root:
//!
//! ```text
//! <root>/sub/<tier>/<key:032x>.sub   (loose: source of truth)
//! <root>/sub/snapshot.pack           (read-optimized accelerator)
//! ```
//!
//! The loose files give scrub its per-artifact quarantine granularity;
//! the snapshot pack bundles the same frames into one file so a warm
//! preload is one large read instead of thousands of tiny opens.
//! Preload imports a pack entry only when the matching loose file is
//! present in the tier listing (the listing is authoritative — a
//! quarantined artifact cannot be resurrected from a stale pack), and
//! falls back to loose reads for anything the pack cannot serve.
//!
//! Each file is framed as:
//!
//! ```text
//! magic "ROCKSUB\x01" | tier tag u8 | key lo u64 | key hi u64
//! | payload len u64 | payload | FNV-1a checksum u64 (over everything
//! before it)
//! ```
//!
//! Staleness defenses are layered: the frame checksum catches torn or
//! bit-rotted files; the frame's tier/key must agree with the path the
//! file was found under (a misfiled artifact is rejected, not
//! re-homed); and [`rock_core::CorpusCache::import_entry`] re-derives
//! each payload's own key from its decoded content (a model must
//! reproduce its pool key, a distance its disk key), so a payload can
//! never be loaded under a key it does not hash to. A rejected file is
//! counted ([`IncrStats::corrupt_skipped`]) and simply recomputes —
//! degradation, never stale reuse. `rock store scrub` quarantines such
//! files individually without touching their tier siblings.
//!
//! Writes are write-only-new (first-write-wins, like the in-memory
//! corpus tiers) through a temp file + atomic rename; in `durable`
//! mode files are fsynced before rename and each tier directory after
//! its batch. All traffic shares the store's [`crate::vfs::Vfs`] seam,
//! retry policy, and fault accounting, so chaos tests exercise this
//! layer with the same storage faults as the artifact layer.
//!
//! The warm ≡ cold invariant holds end to end: preloaded entries only
//! ever short-circuit work whose outputs are bit-identical to
//! recomputation (enforced by `tests/incremental_delta.rs`), and
//! [`IncrStats`] counters ride in timings/metrics only, never in the
//! pipeline's own registry or diagnostics.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use rock_core::{CorpusCache, IncrStats, SubTier};

use crate::artifact::{ArtifactStore, OpClass};
use crate::wire::{fnv1a, Reader, Writer};

/// The 8-byte sub-artifact file magic; the trailing byte is the format
/// version. Bumps invalidate every existing sub-artifact.
pub const SUB_MAGIC: &[u8; 8] = b"ROCKSUB\x01";

/// The 8-byte snapshot-pack magic; the trailing byte is the format
/// version. Bumps make existing packs unreadable, which merely drops
/// preload back to loose files until the next flush rewrites the pack.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ROCKSPK\x01";

/// Filename of the read-optimized snapshot pack, directly under
/// `<root>/sub/`. The pack bundles every framed sub-artifact into one
/// file so a warm preload costs one read instead of one per artifact —
/// on the patch-and-rerun critical path, thousands of tiny loose-file
/// opens are the dominant cost. The loose files stay the source of
/// truth (scrub granularity, first-write-wins); the pack is purely an
/// accelerator and is rebuilt by any flush that wrote something.
pub const SNAPSHOT_NAME: &str = "snapshot.pack";

/// The filename of one sub-artifact: 32 lowercase hex digits + `.sub`.
pub fn sub_file_name(key: u128) -> String {
    format!("{key:032x}.sub")
}

/// Parses a `<key:032x>.sub` filename back to its key. Returns `None`
/// unless the name round-trips exactly (length, case, suffix).
pub fn key_of_sub_name(name: &str) -> Option<u128> {
    let hex = name.strip_suffix(".sub")?;
    if hex.len() != 32 {
        return None;
    }
    let key = u128::from_str_radix(hex, 16).ok()?;
    (name == sub_file_name(key)).then_some(key)
}

/// Frames one sub-artifact payload for disk.
pub fn encode_sub(tier: SubTier, key: u128, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(tier.tag());
    w.u64(key as u64);
    w.u64((key >> 64) as u64);
    w.len(payload.len());
    let header = w.into_bytes();
    let mut buf = Vec::with_capacity(SUB_MAGIC.len() + header.len() + payload.len() + 8);
    buf.extend_from_slice(SUB_MAGIC);
    buf.extend_from_slice(&header);
    buf.extend_from_slice(payload);
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Decodes a framed sub-artifact. Checksum, magic, tier tag, and
/// payload length are all verified; the payload itself is *not*
/// validated here (that is the corpus importer's job).
pub fn decode_sub(bytes: &[u8]) -> Result<(SubTier, u128, Vec<u8>), String> {
    if bytes.len() < SUB_MAGIC.len() + 1 + 8 + 8 + 8 + 8 {
        return Err("file shorter than the fixed frame".into());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != checksum {
        return Err("checksum mismatch".into());
    }
    if &body[..SUB_MAGIC.len()] != SUB_MAGIC {
        return Err("bad magic or unsupported format version".into());
    }
    let mut r = Reader::new(&body[SUB_MAGIC.len()..]);
    let fail = |e: crate::wire::WireError| e.to_string();
    let tag = r.u8("tier tag").map_err(fail)?;
    let Some(tier) = SubTier::from_tag(tag) else {
        return Err(format!("unknown tier tag {tag}"));
    };
    let lo = r.u64("key lo").map_err(fail)?;
    let hi = r.u64("key hi").map_err(fail)?;
    let key = (lo as u128) | ((hi as u128) << 64);
    let payload_len = r.len("payload length").map_err(fail)?;
    let payload_start = SUB_MAGIC.len() + 1 + 8 + 8 + 8;
    if body.len() - payload_start != payload_len {
        return Err("payload length field disagrees with file size".into());
    }
    Ok((tier, key, body[payload_start..].to_vec()))
}

/// Bundles already-framed sub-artifacts into one snapshot pack:
///
/// ```text
/// magic "ROCKSPK\x01" | entry count u64
/// | count × (frame len u64 | encode_sub frame)
/// | FNV-1a checksum u64 (over everything before it)
/// ```
///
/// Each embedded frame keeps its own checksum, so a pack entry is
/// exactly as trustworthy as the loose file it mirrors.
pub fn encode_snapshot(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.len(frames.len());
    for frame in frames {
        w.blob(frame);
    }
    let body = w.into_bytes();
    let mut buf = Vec::with_capacity(SNAPSHOT_MAGIC.len() + body.len() + 8);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    buf.extend_from_slice(&body);
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Decodes a snapshot pack into its (tier, key, payload) entries.
/// Whole-file checksum, magic, entry framing, and each embedded
/// sub-artifact frame are all verified; any damage rejects the whole
/// pack (callers fall back to loose files — the pack is never the only
/// copy).
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<(SubTier, u128, Vec<u8>)>, String> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 + 8 {
        return Err("pack shorter than the fixed frame".into());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != checksum {
        return Err("pack checksum mismatch".into());
    }
    if &body[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err("bad pack magic or unsupported format version".into());
    }
    let mut r = Reader::new(&body[SNAPSHOT_MAGIC.len()..]);
    let fail = |e: crate::wire::WireError| e.to_string();
    let count = r.len("entry count").map_err(fail)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let frame = r.blob("pack entry").map_err(fail)?;
        entries.push(decode_sub(&frame)?);
    }
    if !r.is_at_end() {
        return Err("trailing bytes after the last pack entry".into());
    }
    Ok(entries)
}

/// Deep verification for scrub: the frame must decode, its tier and
/// key must match where the file was found, and the payload must pass
/// the corpus importer's full content validation (replayed into
/// `scratch`, a throwaway cache).
pub fn verify_sub_bytes(
    tier: SubTier,
    key: u128,
    bytes: &[u8],
    scratch: &CorpusCache,
) -> Result<(), String> {
    let (t, k, payload) = decode_sub(bytes)?;
    if t != tier {
        return Err(format!("tier {} does not match directory {}", t.name(), tier.name()));
    }
    if k != key {
        return Err(format!("key {k:032x} does not match filename {key:032x}"));
    }
    if !scratch.import_entry(t, k, &payload) {
        return Err("payload failed corpus validation".into());
    }
    Ok(())
}

/// Restores every trusted sub-artifact on disk into `corpus`.
///
/// Untrusted files (bad frame, tier/key mismatch, payload that fails
/// the importer's content validation) are skipped and counted — they
/// recompute, and the next flush or scrub deals with them. Call before
/// running jobs; preloading is cheap relative to one reconstruction
/// and makes every unchanged function/type/pair/family a cache hit.
pub fn preload_subartifacts(store: &ArtifactStore, corpus: &CorpusCache) -> IncrStats {
    let mut stats = IncrStats::default();
    // Gather the per-tier listings up front (one readdir per tier):
    // the listings are the index of what the store currently trusts.
    // Everything the snapshot pack can serve is imported from it in
    // one read; only stragglers (entries newer than the pack, or a
    // corrupt/missing pack) fall back to loose-file reads, fanned
    // across threads. Preload sits on the patch-and-rerun critical
    // path, where a serial loop over thousands of small files would
    // eat the very latency the incremental store exists to save.
    let mut work: Vec<(SubTier, PathBuf, u128)> = Vec::new();
    for tier in SubTier::ALL {
        let dir = store.sub_tier_dir(tier);
        let files = match store.with_retry_op(OpClass::Read, || store.vfs().list(&dir)) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(_) => {
                stats.io_errors += 1;
                continue;
            }
        };
        for file in files {
            let name = file_name(&file);
            if name.ends_with(".sub.tmp") {
                continue; // crash debris; the open-time sweep owns it
            }
            let Some(key) = key_of_sub_name(&name) else {
                stats.corrupt_skipped += 1;
                continue;
            };
            work.push((tier, file, key));
        }
    }
    // Serve what we can from the snapshot pack first. An entry is only
    // imported if its loose file appears in the tier listing gathered
    // above — the listing is authoritative, so a quarantined or
    // deleted artifact can never be resurrected from a stale pack.
    // Any pack damage (or a pack entry whose payload fails the
    // importer) simply leaves that entry to the loose-file path below.
    let listed: HashSet<(u8, u128)> = work.iter().map(|(t, _, k)| (t.tag(), *k)).collect();
    let mut served: HashSet<(u8, u128)> = HashSet::new();
    let snap_path = store.sub_dir().join(SNAPSHOT_NAME);
    match store.with_retry_op(OpClass::Read, || store.vfs().read(&snap_path)) {
        Ok(bytes) => match decode_snapshot(&bytes) {
            Ok(entries) => {
                for (tier, key, payload) in entries {
                    let id = (tier.tag(), key);
                    if listed.contains(&id)
                        && !served.contains(&id)
                        && corpus.import_entry(tier, key, &payload)
                    {
                        stats.preloaded += 1;
                        served.insert(id);
                    }
                }
            }
            Err(_) => stats.corrupt_skipped += 1, // scrub quarantines it
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(_) => stats.io_errors += 1,
    }
    work.retain(|(t, _, k)| !served.contains(&(t.tag(), *k)));
    let preload_one =
        |(tier, file, key): &(SubTier, PathBuf, u128), local: &mut IncrStats| match store
            .with_retry_op(OpClass::Read, || store.vfs().read(file))
        {
            Ok(bytes) => match decode_sub(&bytes) {
                Ok((t, k, payload)) if t == *tier && k == *key => {
                    if corpus.import_entry(t, k, &payload) {
                        local.preloaded += 1;
                    } else {
                        local.corrupt_skipped += 1;
                    }
                }
                _ => local.corrupt_skipped += 1,
            },
            Err(_) => local.io_errors += 1,
        };
    stats.add(&for_each_parallel(&work, preload_one));
    stats
}

/// Runs `f` over `work` on a small thread pool, summing the per-thread
/// [`IncrStats`]. Falls back to the calling thread for small batches,
/// where spawn overhead would dominate.
fn for_each_parallel<T, F>(work: &[T], f: F) -> IncrStats
where
    T: Sync,
    F: Fn(&T, &mut IncrStats) + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    let mut stats = IncrStats::default();
    if threads <= 1 || work.len() < 64 {
        for item in work {
            f(item, &mut stats);
        }
        return stats;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = IncrStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = work.get(i) else { break };
                        f(item, &mut local);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            stats.add(&handle.join().expect("preload worker panicked"));
        }
    });
    stats
}

/// Writes every corpus entry not yet on disk to the store, one framed
/// file per sub-artifact (temp file + atomic rename; fsyncs in
/// `durable` mode).
///
/// Entries whose file already exists are never rewritten
/// (first-write-wins, matching the in-memory tiers), so a flush after
/// a warm run touches only the genuinely new work.
pub fn flush_subartifacts(store: &ArtifactStore, corpus: &CorpusCache) -> IncrStats {
    let mut stats = IncrStats::default();
    let entries = corpus.export_entries();
    for tier in SubTier::ALL {
        let tier_entries: Vec<_> = entries.iter().filter(|(t, _, _)| *t == tier).collect();
        if tier_entries.is_empty() {
            continue;
        }
        let dir = store.sub_tier_dir(tier);
        if store.with_retry_op(OpClass::Write, || store.vfs().create_dir_all(&dir)).is_err() {
            stats.io_errors += 1;
            continue;
        }
        let existing: HashSet<String> = store
            .vfs()
            .list(&dir)
            .map(|files| files.iter().map(|f| file_name(f)).collect())
            .unwrap_or_default();
        let mut fresh: Vec<(u128, &Vec<u8>)> = Vec::new();
        for (_, key, payload) in tier_entries {
            if existing.contains(&sub_file_name(*key)) {
                stats.unchanged += 1;
            } else {
                fresh.push((*key, payload));
            }
        }
        // Distinct keys mean distinct tmp and destination paths, so the
        // writes commute; fan them out like the preload reads.
        let flush_one = |(key, payload): &(u128, &Vec<u8>), local: &mut IncrStats| {
            let name = sub_file_name(*key);
            let bytes = encode_sub(tier, *key, payload);
            let tmp = dir.join(format!(".{name}.tmp"));
            let dst = dir.join(&name);
            let result = store.with_retry_op(OpClass::Write, || {
                store.vfs().write(&tmp, &bytes)?;
                if store.durable() {
                    store.vfs().sync_file(&tmp)?;
                }
                store.vfs().rename(&tmp, &dst)
            });
            match result {
                Ok(()) => local.flushed += 1,
                Err(_) => {
                    local.io_errors += 1;
                    let _ = store.vfs().remove_file(&tmp);
                }
            }
        };
        let tier_stats = for_each_parallel(&fresh, flush_one);
        let wrote = tier_stats.flushed > 0;
        stats.add(&tier_stats);
        if wrote && store.durable() && store.vfs().sync_dir(&dir).is_err() {
            stats.io_errors += 1;
        }
    }
    // Rebuild the read-optimized snapshot pack whenever the loose set
    // moved (or the pack is missing — e.g. a prior pack write failed),
    // from everything the corpus currently holds. The in-memory corpus
    // is a superset of what this flush wrote, so the pack mirrors the
    // loose files it accelerates; preload's listing gate keeps any
    // momentary divergence harmless.
    if !entries.is_empty() {
        let sub_root = store.sub_dir();
        let have_pack = store
            .vfs()
            .list(&sub_root)
            .map(|fs| fs.iter().any(|f| file_name(f) == SNAPSHOT_NAME))
            .unwrap_or(false);
        if stats.flushed > 0 || !have_pack {
            let frames: Vec<Vec<u8>> =
                entries.iter().map(|(t, k, p)| encode_sub(*t, *k, p)).collect();
            let bytes = encode_snapshot(&frames);
            let tmp = sub_root.join(format!(".{SNAPSHOT_NAME}.tmp"));
            let dst = sub_root.join(SNAPSHOT_NAME);
            let result = store.with_retry_op(OpClass::Write, || {
                store.vfs().create_dir_all(&sub_root)?;
                store.vfs().write(&tmp, &bytes)?;
                if store.durable() {
                    store.vfs().sync_file(&tmp)?;
                }
                store.vfs().rename(&tmp, &dst)
            });
            match result {
                Ok(()) if store.durable() && store.vfs().sync_dir(&sub_root).is_err() => {
                    stats.io_errors += 1;
                }
                Ok(()) => {}
                Err(_) => {
                    stats.io_errors += 1;
                    let _ = store.vfs().remove_file(&tmp);
                }
            }
        }
    }
    stats
}

fn file_name(path: &Path) -> String {
    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let key = 0xdead_beef_0123_4567_89ab_cdef_1122_3344u128;
        for tier in SubTier::ALL {
            let bytes = encode_sub(tier, key, &payload);
            let (t, k, p) = decode_sub(&bytes).expect("round trip");
            assert_eq!(t, tier);
            assert_eq!(k, key);
            assert_eq!(p, payload);
        }
    }

    #[test]
    fn frame_rejects_damage() {
        let bytes = encode_sub(SubTier::Model, 42, b"payload");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_sub(&bad).is_err(), "flip at byte {i} must be caught");
        }
        assert!(decode_sub(&bytes[..bytes.len() - 1]).is_err(), "truncation must be caught");
        assert!(decode_sub(&[]).is_err());
    }

    #[test]
    fn frame_rejects_unknown_tier_tag() {
        let bytes = encode_sub(SubTier::Exec, 7, b"x");
        // Rebuild with a bogus tier tag and a fixed-up checksum: the
        // tag check itself must fire, not just the checksum.
        let mut bad = bytes[..bytes.len() - 8].to_vec();
        bad[SUB_MAGIC.len()] = 99;
        let checksum = fnv1a(&bad);
        bad.extend_from_slice(&checksum.to_le_bytes());
        let err = decode_sub(&bad).expect_err("bad tag");
        assert!(err.contains("tier tag"), "{err}");
    }

    #[test]
    fn sub_names_round_trip_and_reject_lookalikes() {
        let key = 0x0000_0000_0000_0000_0000_0000_0000_002au128;
        let name = sub_file_name(key);
        assert_eq!(name, "0000000000000000000000000000002a.sub");
        assert_eq!(key_of_sub_name(&name), Some(key));
        assert_eq!(key_of_sub_name("0000000000000000000000000000002A.sub"), None);
        assert_eq!(key_of_sub_name("2a.sub"), None);
        assert_eq!(key_of_sub_name("0000000000000000000000000000002a.art"), None);
        assert_eq!(key_of_sub_name(".0000000000000000000000000000002a.sub.tmp"), None);
    }

    #[test]
    fn snapshot_round_trips() {
        let frames = vec![
            encode_sub(SubTier::Exec, 1, b"\x00abc"),
            encode_sub(SubTier::Model, 0xffee_ddcc_bbaa_9988_7766_5544_3322_1100, b"m"),
            encode_sub(SubTier::Lifting, 7, &[]),
        ];
        let pack = encode_snapshot(&frames);
        let entries = decode_snapshot(&pack).expect("round trip");
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], (SubTier::Exec, 1, b"\x00abc".to_vec()));
        assert_eq!(
            entries[1],
            (SubTier::Model, 0xffee_ddcc_bbaa_9988_7766_5544_3322_1100, b"m".to_vec())
        );
        assert_eq!(entries[2], (SubTier::Lifting, 7, Vec::new()));
        let empty = decode_snapshot(&encode_snapshot(&[])).expect("empty pack");
        assert!(empty.is_empty());
    }

    #[test]
    fn snapshot_rejects_damage() {
        let pack = encode_snapshot(&[encode_sub(SubTier::Distance, 9, b"d")]);
        for i in 0..pack.len() {
            let mut bad = pack.clone();
            bad[i] ^= 0x01;
            assert!(decode_snapshot(&bad).is_err(), "flip at byte {i} must be caught");
        }
        assert!(decode_snapshot(&pack[..pack.len() - 1]).is_err(), "truncation must be caught");
        assert!(decode_snapshot(&[]).is_err());
        // A sub-artifact frame is not a pack.
        assert!(decode_snapshot(&encode_sub(SubTier::Exec, 1, b"x")).is_err());
    }

    #[test]
    fn verify_rejects_misfiled_frames() {
        let scratch = CorpusCache::new();
        let bytes = encode_sub(SubTier::Lifting, 5, &[]);
        let err = verify_sub_bytes(SubTier::Model, 5, &bytes, &scratch).expect_err("tier");
        assert!(err.contains("does not match directory"), "{err}");
        let err = verify_sub_bytes(SubTier::Lifting, 6, &bytes, &scratch).expect_err("key");
        assert!(err.contains("does not match filename"), "{err}");
    }
}
