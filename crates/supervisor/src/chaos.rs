//! Seeded, clock-free storage fault injection.
//!
//! [`FaultyVfs`] wraps a real [`Vfs`] and makes it lie on schedule:
//! torn writes, ENOSPC, transient EIO, rename failures, partial reads,
//! and crash-shaped stale tmp files. Which operation faults — and how —
//! is decided by a [`ChaosPlan`], which follows the same SplitMix64
//! discipline as `rock_core::FaultPlan`: a seed plus a per-mille rate,
//! hashed per operation *sequence number*, so a given seed produces the
//! same fault schedule on every run and at every thread count, with no
//! clocks and no global RNG state.
//!
//! Two knobs:
//! - **seeded sweeps** — `ChaosPlan::seeded(seed, rate_per_mille)`
//!   faults a pseudo-random subset of operations; CI sweeps seeds.
//! - **directives** — `with_directive(op, nth, flavor)` pins one exact
//!   fault ("the 3rd rename fails ENOSPC") for targeted regressions.
//!
//! Determinism caveat: the *schedule* is deterministic per op-sequence,
//! so it is reproducible for a fixed call pattern (one job, or jobs
//! submitted serially). Concurrent workers interleave op sequences
//! nondeterministically — the chaos soak embraces that: whatever
//! subset fires, the recovery obligations must hold.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::vfs::Vfs;

/// SplitMix64 — the same mixer `rock_core::faultplan` uses, duplicated
/// here because that one is a private detail of its module.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The Vfs operation classes a [`ChaosPlan`] can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosOp {
    /// Whole-file reads ([`Vfs::read`]).
    Read,
    /// Whole-file writes ([`Vfs::write`]).
    Write,
    /// Commit renames ([`Vfs::rename`]).
    Rename,
    /// File / tree removal ([`Vfs::remove_file`], [`Vfs::remove_dir_all`]).
    Remove,
    /// Directory listing ([`Vfs::list`]).
    List,
    /// Durability syncs ([`Vfs::sync_file`], [`Vfs::sync_dir`]).
    Sync,
    /// Directory creation ([`Vfs::create_dir_all`]).
    CreateDir,
}

impl ChaosOp {
    fn lane(self) -> u64 {
        self as u64
    }
}

/// How an injected fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosFlavor {
    /// The write lands a seeded prefix of the data, then errors: the
    /// classic torn write. Persistent for this attempt; the tmp-file
    /// protocol keeps the torn bytes out of committed artifacts.
    TornWrite,
    /// The write lands a seeded prefix of the data and *reports
    /// success* — only the artifact checksum can catch this one.
    SilentTorn,
    /// ENOSPC: the disk is full. Persistent — retrying won't help.
    Enospc,
    /// EINTR-shaped transient error; a bounded retry clears it.
    TransientEio,
    /// The rename (commit point) fails; the tmp file is still
    /// removable, so a store cleanup leaves no debris.
    RenameFail,
    /// The read returns a seeded prefix of the real bytes, as a short
    /// read would after a torn write on the far side of a crash.
    PartialRead,
    /// Crash shape: the rename fails AND the tmp file becomes
    /// unremovable for one attempt, stranding a stale `.art.tmp`
    /// exactly like a process that died between write and rename.
    CrashTmp,
    /// The operation fails with a generic persistent EIO.
    Eio,
}

/// One pinned fault: the `nth` call (0-based) of `op` fails as `flavor`.
#[derive(Clone, Copy, Debug)]
pub struct ChaosDirective {
    /// Operation class to target.
    pub op: ChaosOp,
    /// Which call of that class (0-based, counted per plan instance).
    pub nth: u64,
    /// How the fault manifests.
    pub flavor: ChaosFlavor,
}

/// A deterministic storage fault schedule (see module docs).
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    seed: u64,
    rate_per_mille: u64,
    directives: Vec<ChaosDirective>,
}

impl ChaosPlan {
    /// A plan that faults roughly `rate_per_mille`/1000 of operations,
    /// chosen by `seed`. Rates above 1000 clamp to "always".
    pub fn seeded(seed: u64, rate_per_mille: u64) -> ChaosPlan {
        ChaosPlan { seed, rate_per_mille: rate_per_mille.min(1000), directives: Vec::new() }
    }

    /// A plan that never fires on its own; add directives for pinpoint
    /// faults.
    pub fn quiet() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Adds one pinned fault (builder-style).
    pub fn with_directive(mut self, op: ChaosOp, nth: u64, flavor: ChaosFlavor) -> ChaosPlan {
        self.directives.push(ChaosDirective { op, nth, flavor });
        self
    }

    fn draw(&self, op: ChaosOp, seq: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64((op.lane() << 32) ^ seq))
    }

    /// Decides the fate of the `seq`-th call of `op`. Directives win
    /// over the seeded rate; the seeded flavor comes from a second,
    /// independent draw so rate and flavor don't correlate.
    pub fn decide(&self, op: ChaosOp, seq: u64) -> Option<ChaosFlavor> {
        for d in &self.directives {
            if d.op == op && d.nth == seq {
                return Some(d.flavor);
            }
        }
        if self.rate_per_mille == 0 || self.draw(op, seq) % 1000 >= self.rate_per_mille {
            return None;
        }
        let pick = self.draw(op, !seq);
        Some(match op {
            ChaosOp::Write => match pick % 4 {
                0 => ChaosFlavor::TornWrite,
                1 => ChaosFlavor::SilentTorn,
                2 => ChaosFlavor::Enospc,
                _ => ChaosFlavor::TransientEio,
            },
            ChaosOp::Rename => match pick % 3 {
                0 => ChaosFlavor::RenameFail,
                1 => ChaosFlavor::CrashTmp,
                _ => ChaosFlavor::TransientEio,
            },
            ChaosOp::Read => match pick % 3 {
                0 => ChaosFlavor::PartialRead,
                1 => ChaosFlavor::Eio,
                _ => ChaosFlavor::TransientEio,
            },
            // The bookkeeping ops only see transient noise from the
            // seeded sweep; persistent variants come via directives.
            ChaosOp::Remove | ChaosOp::List | ChaosOp::Sync | ChaosOp::CreateDir => {
                ChaosFlavor::TransientEio
            }
        })
    }

    /// Seeded cut point in `[1, len)` for torn writes / partial reads
    /// (always strictly short, never empty for multi-byte payloads).
    pub fn cut(&self, op: ChaosOp, seq: u64, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        1 + (self.draw(op, seq ^ 0xC47) as usize) % (len - 1)
    }
}

fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected {what}"))
}

/// A [`Vfs`] that fails on schedule. Wraps any inner Vfs (normally
/// [`crate::vfs::StdVfs`]); every operation first consults the
/// [`ChaosPlan`], then — fault or not — leaves the filesystem in a
/// state a real kernel could have produced.
#[derive(Debug)]
pub struct FaultyVfs {
    inner: Arc<dyn Vfs>,
    plan: ChaosPlan,
    // One sequence counter per ChaosOp lane.
    seqs: [AtomicU64; 7],
    // Tmp paths a CrashTmp fault has made sticky: their next
    // remove_file fails too, stranding the stale tmp like a crash.
    crashed: Mutex<BTreeSet<PathBuf>>,
    injected: AtomicU64,
}

impl FaultyVfs {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: Arc<dyn Vfs>, plan: ChaosPlan) -> FaultyVfs {
        FaultyVfs {
            inner,
            plan,
            seqs: std::array::from_fn(|_| AtomicU64::new(0)),
            crashed: Mutex::new(BTreeSet::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Total faults injected so far (all flavors).
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn next(&self, op: ChaosOp) -> (u64, Option<ChaosFlavor>) {
        let seq = self.seqs[op.lane() as usize].fetch_add(1, Ordering::Relaxed);
        let fate = self.plan.decide(op, seq);
        if fate.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        (seq, fate)
    }
}

impl Vfs for FaultyVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let (seq, fate) = self.next(ChaosOp::Read);
        match fate {
            None => self.inner.read(path),
            Some(ChaosFlavor::PartialRead) => {
                let data = self.inner.read(path)?;
                let cut = self.plan.cut(ChaosOp::Read, seq, data.len());
                Ok(data[..cut].to_vec())
            }
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient read fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "read fault")),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let (seq, fate) = self.next(ChaosOp::Write);
        match fate {
            None => self.inner.write(path, data),
            Some(ChaosFlavor::TornWrite) => {
                let cut = self.plan.cut(ChaosOp::Write, seq, data.len());
                let _ = self.inner.write(path, &data[..cut]);
                Err(injected(io::ErrorKind::Other, "torn write"))
            }
            Some(ChaosFlavor::SilentTorn) => {
                let cut = self.plan.cut(ChaosOp::Write, seq, data.len());
                self.inner.write(path, &data[..cut])
            }
            Some(ChaosFlavor::Enospc) => Err(injected(io::ErrorKind::StorageFull, "disk full")),
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient write fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "write fault")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (_, fate) = self.next(ChaosOp::Rename);
        match fate {
            None => self.inner.rename(from, to),
            Some(ChaosFlavor::CrashTmp) => {
                self.crashed.lock().unwrap().insert(from.to_path_buf());
                Err(injected(io::ErrorKind::Other, "crash at commit point"))
            }
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient rename fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "rename fault")),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.crashed.lock().unwrap().remove(path) {
            // The one-shot tail of CrashTmp: cleanup fails once, the
            // stale tmp survives until the next open-time sweep.
            return Err(injected(io::ErrorKind::Other, "crash before tmp cleanup"));
        }
        let (_, fate) = self.next(ChaosOp::Remove);
        match fate {
            None => self.inner.remove_file(path),
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient remove fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "remove fault")),
        }
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        let (_, fate) = self.next(ChaosOp::Remove);
        match fate {
            None => self.inner.remove_dir_all(path),
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient remove fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "remove fault")),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let (_, fate) = self.next(ChaosOp::CreateDir);
        match fate {
            None => self.inner.create_dir_all(path),
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient mkdir fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "mkdir fault")),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let (_, fate) = self.next(ChaosOp::List);
        match fate {
            None => self.inner.list(dir),
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient list fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "list fault")),
        }
    }

    fn is_dir(&self, path: &Path) -> bool {
        self.inner.is_dir(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let (_, fate) = self.next(ChaosOp::Sync);
        match fate {
            None => self.inner.sync_file(path),
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient sync fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "sync fault")),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let (_, fate) = self.next(ChaosOp::Sync);
        match fate {
            None => self.inner.sync_dir(dir),
            Some(ChaosFlavor::TransientEio) => {
                Err(injected(io::ErrorKind::Interrupted, "transient sync fault"))
            }
            Some(_) => Err(injected(io::ErrorKind::Other, "sync fault")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{is_transient, StdVfs};
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rock-chaos-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_rate_shaped() {
        let plan = ChaosPlan::seeded(7, 250);
        let twin = ChaosPlan::seeded(7, 250);
        let mut hits = 0u32;
        for seq in 0..4000 {
            let a = plan.decide(ChaosOp::Write, seq);
            assert_eq!(a, twin.decide(ChaosOp::Write, seq));
            hits += a.is_some() as u32;
        }
        // 250/1000 nominal; allow generous slack, reject degenerate.
        assert!((700..=1300).contains(&hits), "hits={hits}");
        // Different lanes get different schedules.
        let writes: Vec<_> = (0..64).map(|s| plan.decide(ChaosOp::Write, s).is_some()).collect();
        let reads: Vec<_> = (0..64).map(|s| plan.decide(ChaosOp::Read, s).is_some()).collect();
        assert_ne!(writes, reads);
        // Rate 0 never fires; rate >= 1000 always fires.
        assert!((0..1000).all(|s| ChaosPlan::seeded(7, 0).decide(ChaosOp::Read, s).is_none()));
        assert!((0..1000).all(|s| ChaosPlan::seeded(7, 5000).decide(ChaosOp::Read, s).is_some()));
    }

    #[test]
    fn directives_pin_exact_operations() {
        let plan = ChaosPlan::quiet()
            .with_directive(ChaosOp::Rename, 2, ChaosFlavor::RenameFail)
            .with_directive(ChaosOp::Write, 0, ChaosFlavor::Enospc);
        assert_eq!(plan.decide(ChaosOp::Rename, 2), Some(ChaosFlavor::RenameFail));
        assert_eq!(plan.decide(ChaosOp::Rename, 1), None);
        assert_eq!(plan.decide(ChaosOp::Write, 0), Some(ChaosFlavor::Enospc));
        assert_eq!(plan.decide(ChaosOp::Write, 1), None);
    }

    #[test]
    fn cut_is_strictly_short_and_nonempty() {
        let plan = ChaosPlan::seeded(3, 1000);
        for len in [2usize, 3, 17, 4096] {
            for seq in 0..32 {
                let cut = plan.cut(ChaosOp::Write, seq, len);
                assert!((1..len).contains(&cut), "len={len} cut={cut}");
            }
        }
        assert_eq!(plan.cut(ChaosOp::Write, 0, 0), 0);
        assert_eq!(plan.cut(ChaosOp::Write, 0, 1), 0);
    }

    #[test]
    fn torn_write_leaves_a_true_prefix() {
        let dir = tmpdir("torn");
        let vfs = FaultyVfs::new(
            StdVfs::arc(),
            ChaosPlan::quiet().with_directive(ChaosOp::Write, 0, ChaosFlavor::TornWrite),
        );
        let path = dir.join("t.bin");
        let data: Vec<u8> = (0..=255).collect();
        let err = vfs.write(&path, &data).unwrap_err();
        assert!(!is_transient(&err));
        let on_disk = fs::read(&path).unwrap();
        assert!(!on_disk.is_empty() && on_disk.len() < data.len());
        assert_eq!(on_disk[..], data[..on_disk.len()]);
        // The next write is clean.
        vfs.write(&path, &data).unwrap();
        assert_eq!(fs::read(&path).unwrap(), data);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_tmp_strands_the_tmp_file_once() {
        let dir = tmpdir("crash");
        let vfs = FaultyVfs::new(
            StdVfs::arc(),
            ChaosPlan::quiet().with_directive(ChaosOp::Rename, 0, ChaosFlavor::CrashTmp),
        );
        let tmp = dir.join(".x.art.tmp");
        vfs.write(&tmp, b"half-finished").unwrap();
        assert!(vfs.rename(&tmp, &dir.join("x.art")).is_err());
        // Cleanup fails once — exactly the crash window.
        assert!(vfs.remove_file(&tmp).is_err());
        assert!(tmp.exists());
        // A later sweep (post-"reboot") can remove it.
        vfs.remove_file(&tmp).unwrap();
        assert!(!tmp.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_read_and_transient_flavors() {
        let dir = tmpdir("partial");
        let vfs = FaultyVfs::new(
            StdVfs::arc(),
            ChaosPlan::quiet()
                .with_directive(ChaosOp::Read, 0, ChaosFlavor::PartialRead)
                .with_directive(ChaosOp::Read, 1, ChaosFlavor::TransientEio),
        );
        let path = dir.join("p.bin");
        fs::write(&path, [9u8; 64]).unwrap();
        let short = vfs.read(&path).unwrap();
        assert!(!short.is_empty() && short.len() < 64);
        let err = vfs.read(&path).unwrap_err();
        assert!(is_transient(&err), "{err}");
        assert_eq!(vfs.read(&path).unwrap().len(), 64);
        assert_eq!(vfs.injected_count(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
