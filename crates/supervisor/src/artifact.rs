//! The versioned on-disk artifact store for stage checkpoints.
//!
//! Every completed pipeline stage of a supervised job is snapshotted to
//! one file, so an interrupted run resumes from the last completed stage
//! instead of restarting:
//!
//! ```text
//! <root>/<key:016x>/<stage>.art
//! ```
//!
//! `key` is a *content hash*: FNV-1a over the job's image bytes plus a
//! fingerprint of every reconstruction-relevant config knob (see
//! [`content_key`]). Changing the binary or any knob that affects the
//! output silently lands the job in a fresh directory — stale artifacts
//! are never mixed into a run, and invalidation needs no bookkeeping.
//! Parallelism is deliberately *excluded* from the fingerprint: the
//! pipeline is deterministic across thread counts, so a run interrupted
//! under `Threads(8)` may resume under `Serial` (and vice versa) and
//! still produce bit-identical output.
//!
//! Each file is framed as:
//!
//! ```text
//! magic "ROCKART\x01" | stage tag u8 | content key u64 | payload len u64
//! | payload | FNV-1a checksum u64 (over everything before it)
//! ```
//!
//! Decoding is fully defensive: bad magic, a stage/key mismatch, a
//! truncated payload, or a checksum failure all surface as
//! [`StoreError::Corrupt`] — the supervisor reacts by wiping the job
//! directory and recomputing, never by trusting a damaged artifact.
//! Writes go through a temp file + atomic rename, so a crash mid-write
//! leaves either the old artifact or none, not a torn one.
//!
//! All filesystem traffic goes through a [`Vfs`] handle ([`StdVfs`] in
//! production, `FaultyVfs` under chaos testing). The store classifies
//! i/o faults with [`crate::vfs::is_transient`]: transient faults get a
//! bounded clock-free retry (schedule from [`RetryPolicy`], recorded in
//! [`StoreStats`], slept only when `sleep_backoff` is set); persistent
//! faults surface to the caller, which degrades instead of spinning.
//! In `durable` mode the tmp file is fsynced before the rename and the
//! parent directory after it, so a committed checkpoint survives power
//! loss; the default skips both fsyncs (honest benchmarks, and a lost
//! checkpoint merely recomputes). Opening a store sweeps orphaned
//! `.art.tmp` files left by crashes, and [`ArtifactStore::scrub`]
//! deep-verifies every artifact, quarantining what cannot be trusted.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rock_analysis::{Analysis, CtorMap, Event, IncidentKind, TypeTracelets};
use rock_binary::Addr;
use rock_budget::RetryPolicy;
use rock_core::{
    Coverage, FaultKind, RockConfig, Severity, Stage, StageError, StageId, StoreStats, Subject,
};
use rock_graph::Forest;
use rock_slm::Metric;

use crate::vfs::{is_transient, StdVfs, Vfs};
use crate::wire::{fnv1a, Reader, WireError, Writer};

/// The 8-byte file magic; the trailing byte is the format version.
pub const MAGIC: &[u8; 8] = b"ROCKART\x02";

/// Bumps invalidate every existing artifact (the magic encodes it).
/// v2: the config fingerprint gained `canonical_calls` — canonical and
/// address-keyed runs of the same image must never share artifacts.
pub const FORMAT_VERSION: u8 = 2;

/// One stage's checkpointed output plus the observability snapshot
/// (cumulative diagnostics + coverage) at that stage's boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Stage output.
    pub payload: StagePayload,
    /// Every diagnostic recorded up to and including this stage.
    pub diagnostics: Vec<StageError>,
    /// Coverage accumulated up to and including this stage.
    pub coverage: Coverage,
}

/// The per-stage artifact payloads.
///
/// Training pins only *which* types trained — SLMs are re-derived
/// deterministically from the analysis artifact on restore, which keeps
/// the store small and sidesteps serializing the model internals.
#[derive(Clone, Debug, PartialEq)]
pub enum StagePayload {
    /// Behavioral analysis: tracelets + ctors + incidents.
    Analysis(Analysis),
    /// Addresses of the types whose SLM trained successfully.
    Training(Vec<Addr>),
    /// Scored candidate edges: `(parent, child) -> divergence`.
    Distances(BTreeMap<(Addr, Addr), f64>),
    /// The lifted hierarchy.
    Hierarchy(Forest<Addr>),
}

impl StagePayload {
    /// The stage this payload belongs to.
    pub fn stage(&self) -> StageId {
        match self {
            StagePayload::Analysis(_) => StageId::Analysis,
            StagePayload::Training(_) => StageId::Training,
            StagePayload::Distances(_) => StageId::Distances,
            StagePayload::Hierarchy(_) => StageId::Lifting,
        }
    }
}

/// Why the store could not produce an artifact.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem failed underneath the store.
    Io(io::Error),
    /// An artifact file exists but cannot be trusted.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What check failed.
        why: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact store i/o: {e}"),
            StoreError::Corrupt { path, why } => {
                write!(f, "corrupt artifact {}: {why}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The *image-level* content-hashed cache key for one (image, config)
/// job.
///
/// FNV-1a over the raw image bytes followed by a fingerprint of every
/// config knob that can change reconstruction output. `parallelism` is
/// excluded on purpose (see the module docs); `strict` is *included*
/// because it changes which runs complete at all.
///
/// This key is deliberately coarse: any byte of the image changing —
/// even a shift that leaves every function body identical — lands the
/// job in a fresh directory. *Function-level* reuse is handled one
/// layer down by the incremental sub-artifact store (see
/// [`crate::incr`]), whose keys are derived from position-independent
/// Weisfeiler-Lehman content labels of each function body rather than
/// from image bytes, so byte-identical functions at shifted addresses
/// still hit.
pub fn content_key(image_bytes: &[u8], config: &RockConfig) -> u64 {
    let fingerprint = config_fingerprint(config);
    let mut all = Vec::with_capacity(image_bytes.len() + fingerprint.len());
    all.extend_from_slice(image_bytes);
    all.extend_from_slice(&fingerprint);
    fnv1a(&all)
}

/// The serialized fingerprint of every reconstruction-relevant config
/// knob, shared by the image-level [`content_key`] and by anything else
/// that must partition cached state by configuration.
pub fn config_fingerprint(config: &RockConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(FORMAT_VERSION);
    w.len(config.analysis.tracelet_len);
    w.len(config.analysis.max_paths);
    w.len(config.analysis.block_visit_limit);
    w.len(config.analysis.max_events_per_object);
    w.len(config.analysis.slm_depth);
    w.u64(config.analysis.fuel.limit());
    match config.analysis.deadline_ms {
        Some(ms) => {
            w.u8(1);
            w.u64(ms);
        }
        None => w.u8(0),
    }
    w.u8(match config.metric {
        Metric::KlDivergence => 0,
        Metric::JsDivergence => 1,
        Metric::JsDistance => 2,
    });
    w.u8(config.resolve_ties as u8);
    w.f64_bits(config.tie_epsilon);
    w.len(config.max_tie_variants);
    w.u8(config.repartition_families as u8);
    w.u8(config.strict as u8);
    w.u8(config.canonical_calls as u8);
    w.into_bytes()
}

/// Atomic mirror of [`StoreStats`], shared by every clone of a store.
#[derive(Debug, Default)]
struct StatsCell {
    tmp_swept: AtomicU64,
    write_retries: AtomicU64,
    write_failures: AtomicU64,
    read_retries: AtomicU64,
    read_failures: AtomicU64,
    corrupt_detected: AtomicU64,
    retry_backoff_ms: AtomicU64,
}

/// Which counter lane a retried operation charges.
#[derive(Clone, Copy)]
pub(crate) enum OpClass {
    Read,
    Write,
}

/// The subdirectory scrub moves untrusted files into.
pub const QUARANTINE_DIR: &str = ".quarantine";

/// The subdirectory holding incremental sub-artifacts (one tier
/// directory per [`rock_core::SubTier`]; see [`crate::incr`]).
pub const SUB_DIR: &str = "sub";

/// A directory of per-job, per-stage checkpoint artifacts.
///
/// Cloning is cheap and shares the [`Vfs`] handle and fault counters;
/// the serve daemon opens one store at bind time and clones it per job.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
    durable: bool,
    sleep_backoff: bool,
    retry: RetryPolicy,
    stats: Arc<StatsCell>,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`, on the real
    /// filesystem, without durability fsyncs. Orphaned `.art.tmp` files
    /// from earlier crashes are swept (best-effort) before use.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with(root, StdVfs::arc(), false)
    }

    /// Opens a store on an explicit [`Vfs`] with an explicit durability
    /// mode. `durable` makes every save fsync the artifact before its
    /// commit rename and the job directory after it — a committed
    /// checkpoint then survives power loss, at real fsync cost per
    /// stage; without it a torn commit merely recomputes one stage.
    pub fn open_with(
        root: impl Into<PathBuf>,
        vfs: Arc<dyn Vfs>,
        durable: bool,
    ) -> io::Result<Self> {
        let store = ArtifactStore {
            root: root.into(),
            vfs,
            durable,
            sleep_backoff: false,
            // Store retries are cheap whole-file reruns: short fuse,
            // short (recorded, not slept) backoff curve.
            retry: RetryPolicy::new(3).with_backoff(10, 160),
            stats: Arc::new(StatsCell::default()),
        };
        store.with_retry_op(OpClass::Write, || store.vfs.create_dir_all(&store.root))?;
        // Safe here: nothing can be mid-commit while the store is still
        // being opened (batch and serve both open before running jobs).
        store.sweep_tmp();
        Ok(store)
    }

    /// Opens an existing store *without* the open-time tmp sweep, for
    /// offline inspection (`rock store scrub`): the scrub report then
    /// owns all tmp accounting, and a dry run genuinely touches
    /// nothing. Unlike [`ArtifactStore::open`] the root must already
    /// exist — scrubbing a mistyped path is an error, not a mkdir.
    pub fn open_unswept(root: impl Into<PathBuf>) -> io::Result<Self> {
        let store = ArtifactStore {
            root: root.into(),
            vfs: StdVfs::arc(),
            durable: false,
            sleep_backoff: false,
            retry: RetryPolicy::new(3).with_backoff(10, 160),
            stats: Arc::new(StatsCell::default()),
        };
        if !store.vfs.is_dir(&store.root) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("store root {} is not a directory", store.root.display()),
            ));
        }
        Ok(store)
    }

    /// Replaces the transient-fault retry policy (builder-style).
    pub fn with_retry(self, retry: RetryPolicy) -> Self {
        ArtifactStore { retry, ..self }
    }

    /// Makes retries actually sleep their backoff schedule instead of
    /// only recording it (tests stay clock-free by default).
    pub fn with_sleep_backoff(self, sleep_backoff: bool) -> Self {
        ArtifactStore { sleep_backoff, ..self }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether saves fsync through to stable storage.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// A snapshot of the store's fault-path counters (process totals;
    /// use [`StoreStats::since`] for per-job deltas).
    pub fn stats(&self) -> StoreStats {
        let s = &self.stats;
        StoreStats {
            tmp_swept: s.tmp_swept.load(Ordering::Relaxed),
            write_retries: s.write_retries.load(Ordering::Relaxed),
            write_failures: s.write_failures.load(Ordering::Relaxed),
            read_retries: s.read_retries.load(Ordering::Relaxed),
            read_failures: s.read_failures.load(Ordering::Relaxed),
            corrupt_detected: s.corrupt_detected.load(Ordering::Relaxed),
            checkpoints_skipped: 0, // supervisor-side; see JobReport
            retry_backoff_ms: s.retry_backoff_ms.load(Ordering::Relaxed),
        }
    }

    /// The directory holding one job's artifacts.
    pub fn job_dir(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}"))
    }

    /// The directory holding one tier's incremental sub-artifacts.
    pub fn sub_tier_dir(&self, tier: rock_core::SubTier) -> PathBuf {
        self.root.join(SUB_DIR).join(tier.name())
    }

    /// The root of the incremental sub-artifact area (tier directories
    /// plus the read-optimized [`crate::incr::SNAPSHOT_NAME`] pack).
    pub fn sub_dir(&self) -> PathBuf {
        self.root.join(SUB_DIR)
    }

    /// The store's filesystem seam, shared with the [`crate::incr`]
    /// layer so sub-artifact traffic sees the same faults as artifacts.
    pub(crate) fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    fn artifact_path(&self, key: u64, stage: StageId) -> PathBuf {
        self.job_dir(key).join(format!("{}.art", stage.name()))
    }

    /// Runs `op`, retrying transient faults on the store's bounded
    /// backoff schedule. Persistent faults return immediately.
    pub(crate) fn with_retry_op<T>(
        &self,
        class: OpClass,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && self.retry.allows(attempt) => {
                    let lane = match class {
                        OpClass::Read => &self.stats.read_retries,
                        OpClass::Write => &self.stats.write_retries,
                    };
                    lane.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.retry.backoff_ms(attempt);
                    self.stats.retry_backoff_ms.fetch_add(backoff, Ordering::Relaxed);
                    if self.sleep_backoff {
                        std::thread::sleep(std::time::Duration::from_millis(backoff));
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Atomically writes one stage checkpoint for job `key`.
    ///
    /// Transient faults are retried (whole commit sequence — it is
    /// idempotent); on any final failure the tmp file is removed
    /// best-effort so only a true crash strands one.
    pub fn save(&self, key: u64, checkpoint: &Checkpoint) -> io::Result<()> {
        let stage = checkpoint.payload.stage();
        let dir = self.job_dir(key);
        let bytes = encode_artifact(key, checkpoint);
        let tmp = dir.join(format!(".{}.art.tmp", stage.name()));
        let dst = self.artifact_path(key, stage);
        let result = self.with_retry_op(OpClass::Write, || {
            self.vfs.create_dir_all(&dir)?;
            self.vfs.write(&tmp, &bytes)?;
            if self.durable {
                self.vfs.sync_file(&tmp)?;
            }
            self.vfs.rename(&tmp, &dst)?;
            if self.durable {
                self.vfs.sync_dir(&dir)?;
            }
            Ok(())
        });
        if result.is_err() {
            self.stats.write_failures.fetch_add(1, Ordering::Relaxed);
            let _ = self.vfs.remove_file(&tmp);
        }
        result
    }

    /// Loads one stage checkpoint for job `key`.
    ///
    /// `Ok(None)` means "never checkpointed" (run the stage live);
    /// [`StoreError::Corrupt`] means the file exists but failed
    /// validation (the caller should [`ArtifactStore::invalidate`] the
    /// job and recompute).
    pub fn load(&self, key: u64, stage: StageId) -> Result<Option<Checkpoint>, StoreError> {
        let path = self.artifact_path(key, stage);
        let bytes = match self.with_retry_op(OpClass::Read, || self.vfs.read(&path)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                self.stats.read_failures.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::Io(e));
            }
        };
        decode_artifact(key, stage, &bytes).map(Some).map_err(|why| {
            self.stats.corrupt_detected.fetch_add(1, Ordering::Relaxed);
            StoreError::Corrupt { path, why }
        })
    }

    /// The contiguous prefix of stages already checkpointed for `key`,
    /// in execution order. Stops at the first gap: a later artifact
    /// without its predecessors cannot be restored (restore order is
    /// enforced by the pipeline) and is ignored.
    pub fn completed_prefix(&self, key: u64) -> Result<Vec<Checkpoint>, StoreError> {
        let mut prefix = Vec::new();
        for stage in StageId::ALL {
            match self.load(key, stage)? {
                Some(cp) => prefix.push(cp),
                None => break,
            }
        }
        Ok(prefix)
    }

    /// Drops every artifact of job `key` (used after corruption, or to
    /// force a fresh run).
    pub fn invalidate(&self, key: u64) -> io::Result<()> {
        match self.vfs.remove_dir_all(&self.job_dir(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Removes orphaned `.art.tmp` files (crash debris) from every job
    /// directory — and orphaned `.sub.tmp` files from every sub-artifact
    /// tier directory — best-effort. Returns how many were removed.
    /// Only call while no writer can be mid-commit — store open time,
    /// or scrub.
    pub fn sweep_tmp(&self) -> u64 {
        let mut swept = 0u64;
        let Ok(entries) = self.vfs.list(&self.root) else { return 0 };
        for dir in entries {
            if !self.vfs.is_dir(&dir) {
                continue;
            }
            if entry_name(&dir) == SUB_DIR {
                let Ok(tiers) = self.vfs.list(&dir) else { continue };
                for tier_dir in tiers {
                    if is_tmp_snapshot(&tier_dir) && self.vfs.remove_file(&tier_dir).is_ok() {
                        swept += 1;
                        continue;
                    }
                    let Ok(files) = self.vfs.list(&tier_dir) else { continue };
                    for file in files {
                        if is_tmp_sub(&file) && self.vfs.remove_file(&file).is_ok() {
                            swept += 1;
                        }
                    }
                }
                continue;
            }
            let Ok(files) = self.vfs.list(&dir) else { continue };
            for file in files {
                if is_tmp_artifact(&file) && self.vfs.remove_file(&file).is_ok() {
                    swept += 1;
                }
            }
        }
        self.stats.tmp_swept.fetch_add(swept, Ordering::Relaxed);
        swept
    }

    /// Deep-verifies the whole store: every artifact is read and
    /// checksum-decoded against the key its directory names.
    ///
    /// - corrupt artifacts are quarantined (moved under
    ///   [`QUARANTINE_DIR`]) so resume stops trusting them;
    /// - incremental sub-artifacts under [`SUB_DIR`] are individually
    ///   frame- and payload-verified; a corrupt one is quarantined
    ///   alone, leaving its tier siblings trusted;
    /// - the read-optimized snapshot pack is verified whole (every
    ///   embedded frame and payload) and quarantined whole if damaged
    ///   — it is an accelerator, so the next flush rebuilds it;
    /// - orphaned `.art.tmp` and `.sub.tmp` files are swept;
    /// - entries with unknown names (directories that are not 16-hex
    ///   content keys, stray files) are quarantined;
    /// - i/o errors are counted and scrubbing continues.
    ///
    /// With `dry_run` everything is counted but nothing is moved.
    /// Valid artifacts stranded behind a quarantined predecessor stay
    /// in place — `completed_prefix` already ignores post-gap stages,
    /// and the recomputing job overwrites them.
    pub fn scrub(&self, dry_run: bool) -> ScrubReport {
        let mut report = ScrubReport { dry_run, ..ScrubReport::default() };
        let entries = match self.vfs.list(&self.root) {
            Ok(e) => e,
            Err(e) => {
                report.io_errors += 1;
                report.details.push(format!("list {}: {e}", self.root.display()));
                return report;
            }
        };
        for entry in entries {
            let name = entry_name(&entry);
            if name == QUARANTINE_DIR {
                continue;
            }
            if name == SUB_DIR && self.vfs.is_dir(&entry) {
                self.scrub_sub_dirs(&entry, &mut report);
                continue;
            }
            let key = u64::from_str_radix(&name, 16).ok().filter(|_| name.len() == 16);
            match key {
                Some(key) if self.vfs.is_dir(&entry) => {
                    report.jobs_scanned += 1;
                    self.scrub_job_dir(&entry, key, &mut report);
                }
                _ => {
                    report.unknown_quarantined += 1;
                    report.details.push(format!("unknown entry: {name}"));
                    if !dry_run {
                        self.quarantine(&entry, &name, &mut report);
                    }
                }
            }
        }
        if report.tmp_swept > 0 && !dry_run {
            self.stats.tmp_swept.fetch_add(report.tmp_swept, Ordering::Relaxed);
        }
        report
    }

    fn scrub_job_dir(&self, dir: &Path, key: u64, report: &mut ScrubReport) {
        let files = match self.vfs.list(dir) {
            Ok(f) => f,
            Err(e) => {
                report.io_errors += 1;
                report.details.push(format!("list {}: {e}", dir.display()));
                return;
            }
        };
        for file in files {
            let name = entry_name(&file);
            if is_tmp_artifact(&file) {
                report.tmp_swept += 1;
                report.details.push(format!("{key:016x}: swept tmp {name}"));
                if !report.dry_run && self.vfs.remove_file(&file).is_err() {
                    report.io_errors += 1;
                }
                continue;
            }
            let Some(stage) = stage_of_artifact_name(&name) else {
                report.unknown_quarantined += 1;
                report.details.push(format!("{key:016x}: unknown file {name}"));
                if !report.dry_run {
                    self.quarantine(&file, &format!("{key:016x}.{name}"), report);
                }
                continue;
            };
            match self.with_retry_op(OpClass::Read, || self.vfs.read(&file)) {
                Ok(bytes) => match decode_artifact(key, stage, &bytes) {
                    Ok(_) => report.artifacts_ok += 1,
                    Err(why) => {
                        self.stats.corrupt_detected.fetch_add(1, Ordering::Relaxed);
                        report.corrupt_quarantined += 1;
                        report.details.push(format!("{key:016x}: corrupt {name}: {why}"));
                        if !report.dry_run {
                            self.quarantine(&file, &format!("{key:016x}.{name}"), report);
                        }
                    }
                },
                Err(e) => {
                    report.io_errors += 1;
                    report.details.push(format!("{key:016x}: read {name}: {e}"));
                }
            }
        }
    }

    /// Verifies every incremental sub-artifact under `<root>/sub/`.
    ///
    /// Each file is read, frame-decoded ([`crate::incr`]: checksum, the
    /// tier tag and the key its filename claims must all agree), and
    /// its payload replayed through the corpus importer's full
    /// validation. A damaged file is quarantined as
    /// `sub.<tier>.<name>` *individually* — its tier siblings keep
    /// their artifacts, so one corrupt function-level entry costs
    /// exactly one recompute, never the whole cache.
    fn scrub_sub_dirs(&self, dir: &Path, report: &mut ScrubReport) {
        let tiers = match self.vfs.list(dir) {
            Ok(t) => t,
            Err(e) => {
                report.io_errors += 1;
                report.details.push(format!("list {}: {e}", dir.display()));
                return;
            }
        };
        // Validation sink only; hit/miss counters are never consulted.
        let scratch = rock_core::CorpusCache::new();
        for tier_dir in tiers {
            let tname = entry_name(&tier_dir);
            if !self.vfs.is_dir(&tier_dir) {
                if tname == crate::incr::SNAPSHOT_NAME {
                    self.scrub_snapshot(&tier_dir, &scratch, report);
                    continue;
                }
                if is_tmp_snapshot(&tier_dir) {
                    report.tmp_swept += 1;
                    report.details.push(format!("sub: swept tmp {tname}"));
                    if !report.dry_run && self.vfs.remove_file(&tier_dir).is_err() {
                        report.io_errors += 1;
                    }
                    continue;
                }
            }
            let tier = rock_core::SubTier::ALL
                .into_iter()
                .find(|t| t.name() == tname)
                .filter(|_| self.vfs.is_dir(&tier_dir));
            let Some(tier) = tier else {
                report.unknown_quarantined += 1;
                report.details.push(format!("sub: unknown entry {tname}"));
                if !report.dry_run {
                    self.quarantine(&tier_dir, &format!("sub.{tname}"), report);
                }
                continue;
            };
            let files = match self.vfs.list(&tier_dir) {
                Ok(f) => f,
                Err(e) => {
                    report.io_errors += 1;
                    report.details.push(format!("list {}: {e}", tier_dir.display()));
                    continue;
                }
            };
            for file in files {
                let name = entry_name(&file);
                if is_tmp_sub(&file) {
                    report.tmp_swept += 1;
                    report.details.push(format!("sub/{tname}: swept tmp {name}"));
                    if !report.dry_run && self.vfs.remove_file(&file).is_err() {
                        report.io_errors += 1;
                    }
                    continue;
                }
                let Some(key) = crate::incr::key_of_sub_name(&name) else {
                    report.unknown_quarantined += 1;
                    report.details.push(format!("sub/{tname}: unknown file {name}"));
                    if !report.dry_run {
                        self.quarantine(&file, &format!("sub.{tname}.{name}"), report);
                    }
                    continue;
                };
                match self.with_retry_op(OpClass::Read, || self.vfs.read(&file)) {
                    Ok(bytes) => match crate::incr::verify_sub_bytes(tier, key, &bytes, &scratch) {
                        Ok(()) => report.artifacts_ok += 1,
                        Err(why) => {
                            self.stats.corrupt_detected.fetch_add(1, Ordering::Relaxed);
                            report.corrupt_quarantined += 1;
                            report.details.push(format!("sub/{tname}: corrupt {name}: {why}"));
                            if !report.dry_run {
                                self.quarantine(&file, &format!("sub.{tname}.{name}"), report);
                            }
                        }
                    },
                    Err(e) => {
                        report.io_errors += 1;
                        report.details.push(format!("sub/{tname}: read {name}: {e}"));
                    }
                }
            }
        }
    }

    /// Verifies the read-optimized snapshot pack: whole-file checksum,
    /// every embedded frame, and every payload through the corpus
    /// importer. The pack is an accelerator, not an artifact — a valid
    /// pack is left in place but *not* counted in `artifacts_ok`
    /// (its entries are already counted via their loose files), and a
    /// damaged one is quarantined whole (`sub.snapshot.pack`); the
    /// next flush rebuilds it.
    fn scrub_snapshot(
        &self,
        file: &Path,
        scratch: &rock_core::CorpusCache,
        report: &mut ScrubReport,
    ) {
        let verdict = match self.with_retry_op(OpClass::Read, || self.vfs.read(file)) {
            Ok(bytes) => match crate::incr::decode_snapshot(&bytes) {
                Ok(entries) => {
                    entries.iter().find(|(t, k, p)| !scratch.import_entry(*t, *k, p)).map(
                        |(t, k, _)| format!("entry {}/{k:032x} failed corpus validation", t.name()),
                    )
                }
                Err(why) => Some(why),
            },
            Err(e) => {
                report.io_errors += 1;
                report.details.push(format!("sub: read {}: {e}", crate::incr::SNAPSHOT_NAME));
                return;
            }
        };
        if let Some(why) = verdict {
            self.stats.corrupt_detected.fetch_add(1, Ordering::Relaxed);
            report.corrupt_quarantined += 1;
            report.details.push(format!("sub: corrupt {}: {why}", crate::incr::SNAPSHOT_NAME));
            if !report.dry_run {
                self.quarantine(file, &format!("sub.{}", crate::incr::SNAPSHOT_NAME), report);
            }
        }
    }

    /// Moves `path` under the quarantine directory as `name`, falling
    /// back to plain removal if the rename cannot land.
    fn quarantine(&self, path: &Path, name: &str, report: &mut ScrubReport) {
        let qdir = self.root.join(QUARANTINE_DIR);
        let ok = self.vfs.create_dir_all(&qdir).is_ok()
            && self.vfs.rename(path, &qdir.join(name)).is_ok();
        if !ok && self.vfs.remove_file(path).is_err() && self.vfs.remove_dir_all(path).is_err() {
            report.io_errors += 1;
            report.details.push(format!("quarantine failed: {}", path.display()));
        }
    }
}

/// `true` for `.{stage}.art.tmp` commit debris.
fn is_tmp_artifact(path: &Path) -> bool {
    entry_name(path).ends_with(".art.tmp")
}

/// `true` for `.{key}.sub.tmp` sub-artifact commit debris.
fn is_tmp_sub(path: &Path) -> bool {
    entry_name(path).ends_with(".sub.tmp")
}

/// `true` for `.snapshot.pack.tmp` pack commit debris.
fn is_tmp_snapshot(path: &Path) -> bool {
    entry_name(path) == format!(".{}.tmp", crate::incr::SNAPSHOT_NAME)
}

fn entry_name(path: &Path) -> String {
    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

/// Maps `analysis.art` → `StageId::Analysis`, etc.
fn stage_of_artifact_name(name: &str) -> Option<StageId> {
    StageId::ALL.into_iter().find(|s| name == format!("{}.art", s.name()))
}

/// What [`ArtifactStore::scrub`] found (and, unless `dry_run`, fixed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Job directories visited.
    pub jobs_scanned: u64,
    /// Artifacts that read and checksum-verified clean.
    pub artifacts_ok: u64,
    /// Corrupt artifacts moved to quarantine.
    pub corrupt_quarantined: u64,
    /// Orphaned `.art.tmp` files removed.
    pub tmp_swept: u64,
    /// Unknown-named entries (non-key directories, stray files) moved
    /// to quarantine.
    pub unknown_quarantined: u64,
    /// Operations that failed with i/o errors (scrub continued).
    pub io_errors: u64,
    /// Whether this was a counting-only pass.
    pub dry_run: bool,
    /// One human-readable line per finding, in deterministic order.
    pub details: Vec<String>,
}

impl ScrubReport {
    /// `true` when nothing needed fixing and nothing failed.
    pub fn is_clean(&self) -> bool {
        self.corrupt_quarantined == 0
            && self.tmp_swept == 0
            && self.unknown_quarantined == 0
            && self.io_errors == 0
    }

    /// Single-line JSON rendering (same hand-rolled style as job
    /// reports — no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"jobs_scanned\":{},\"artifacts_ok\":{},\"corrupt_quarantined\":{},\
             \"tmp_swept\":{},\"unknown_quarantined\":{},\"io_errors\":{},\
             \"dry_run\":{},\"clean\":{},\"details\":[",
            self.jobs_scanned,
            self.artifacts_ok,
            self.corrupt_quarantined,
            self.tmp_swept,
            self.unknown_quarantined,
            self.io_errors,
            self.dry_run,
            self.is_clean(),
        );
        for (i, d) in self.details.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", d.replace('\\', "\\\\").replace('"', "\\\""));
        }
        s.push_str("]}");
        s
    }
}

fn encode_artifact(key: u64, checkpoint: &Checkpoint) -> Vec<u8> {
    let mut payload = Writer::new();
    encode_observability(&mut payload, &checkpoint.diagnostics, &checkpoint.coverage);
    match &checkpoint.payload {
        StagePayload::Analysis(a) => encode_analysis(&mut payload, a),
        StagePayload::Training(t) => {
            payload.len(t.len());
            for a in t {
                payload.addr(*a);
            }
        }
        StagePayload::Distances(d) => {
            payload.len(d.len());
            for (&(p, c), &dist) in d {
                payload.addr(p);
                payload.addr(c);
                payload.f64_bits(dist);
            }
        }
        StagePayload::Hierarchy(h) => {
            payload.len(h.len());
            for node in h.nodes() {
                payload.addr(*node);
                match h.parent_of(node) {
                    Some(p) => {
                        payload.u8(1);
                        payload.addr(*p);
                    }
                    None => payload.u8(0),
                }
            }
        }
    }
    let payload = payload.into_bytes();

    let mut w = Writer::new();
    let mut buf = Vec::with_capacity(payload.len() + 33);
    buf.extend_from_slice(MAGIC);
    w.u8(stage_tag(checkpoint.payload.stage()));
    w.u64(key);
    w.len(payload.len());
    buf.extend_from_slice(&w.into_bytes());
    buf.extend_from_slice(&payload);
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

fn decode_artifact(key: u64, stage: StageId, bytes: &[u8]) -> Result<Checkpoint, String> {
    if bytes.len() < MAGIC.len() + 1 + 8 + 8 + 8 {
        return Err("file shorter than the fixed frame".into());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != checksum {
        return Err("checksum mismatch".into());
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err("bad magic or unsupported format version".into());
    }
    let mut r = Reader::new(&body[MAGIC.len()..]);
    let fail = |e: WireError| e.to_string();
    let tag = r.u8("stage tag").map_err(fail)?;
    if tag != stage_tag(stage) {
        return Err(format!("stage tag {tag} does not match expected stage {stage}"));
    }
    let stored_key = r.u64("content key").map_err(fail)?;
    if stored_key != key {
        return Err(format!("content key {stored_key:016x} does not match job {key:016x}"));
    }
    let payload_len = r.len("payload length").map_err(fail)?;
    let payload_start = MAGIC.len() + 1 + 8 + 8;
    if body.len() - payload_start != payload_len {
        return Err("payload length field disagrees with file size".into());
    }
    let mut r = Reader::new(&body[payload_start..]);
    let (diagnostics, coverage) = decode_observability(&mut r).map_err(fail)?;
    let payload = match stage {
        StageId::Analysis => StagePayload::Analysis(decode_analysis(&mut r).map_err(fail)?),
        StageId::Training => {
            let n = r.len("trained count").map_err(fail)?;
            let mut trained = Vec::with_capacity(n);
            for _ in 0..n {
                trained.push(r.addr("trained addr").map_err(fail)?);
            }
            StagePayload::Training(trained)
        }
        StageId::Distances => {
            let n = r.len("distance count").map_err(fail)?;
            let mut d = BTreeMap::new();
            for _ in 0..n {
                let p = r.addr("edge parent").map_err(fail)?;
                let c = r.addr("edge child").map_err(fail)?;
                d.insert((p, c), r.f64_bits("edge distance").map_err(fail)?);
            }
            StagePayload::Distances(d)
        }
        StageId::Lifting => {
            let n = r.len("node count").map_err(fail)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let node = r.addr("forest node").map_err(fail)?;
                let parent = match r.u8("parent flag").map_err(fail)? {
                    0 => None,
                    1 => Some(r.addr("forest parent").map_err(fail)?),
                    f => return Err(format!("bad parent flag {f}")),
                };
                pairs.push((node, parent));
            }
            StagePayload::Hierarchy(Forest::from_parents(pairs))
        }
    };
    if !r.is_at_end() {
        return Err("trailing bytes after payload".into());
    }
    Ok(Checkpoint { payload, diagnostics, coverage })
}

fn stage_tag(stage: StageId) -> u8 {
    match stage {
        StageId::Analysis => 0,
        StageId::Training => 1,
        StageId::Distances => 2,
        StageId::Lifting => 3,
    }
}

fn encode_observability(w: &mut Writer, diagnostics: &[StageError], coverage: &Coverage) {
    w.len(diagnostics.len());
    for e in diagnostics {
        w.u8(match e.stage {
            Stage::Load => 0,
            Stage::Analysis => 1,
            Stage::Structural => 2,
            Stage::Training => 3,
            Stage::Distances => 4,
            Stage::Lifting => 5,
            Stage::Repartition => 6,
        });
        match &e.subject {
            Subject::Image => w.u8(0),
            Subject::Function(a) => {
                w.u8(1);
                w.addr(*a);
            }
            Subject::Vtable(a) => {
                w.u8(2);
                w.addr(*a);
            }
            Subject::Family(i) => {
                w.u8(3);
                w.len(*i);
            }
            Subject::Edge(p, c) => {
                w.u8(4);
                w.addr(*p);
                w.addr(*c);
            }
        }
        match &e.kind {
            FaultKind::Panicked(msg) => {
                w.u8(0);
                w.string(msg);
            }
            FaultKind::FuelExhausted => w.u8(1),
            FaultKind::DeadlineExceeded => w.u8(2),
            FaultKind::Skipped => w.u8(3),
            FaultKind::TruncatedDecode => w.u8(4),
            FaultKind::SkippedPrefix => w.u8(5),
            FaultKind::MissingText => w.u8(6),
            FaultKind::RejectedVtable => w.u8(7),
            FaultKind::MissingModel => w.u8(8),
        }
        w.u8(match e.severity {
            Severity::Warning => 0,
            Severity::Error => 1,
        });
    }
    for v in [
        coverage.functions_total,
        coverage.functions_analyzed,
        coverage.functions_skipped,
        coverage.functions_timed_out,
        coverage.vtables_parsed,
        coverage.vtables_rejected,
        coverage.models_trained,
        coverage.families_total,
        coverage.families_lifted,
        coverage.families_degraded,
    ] {
        w.u64(v as u64);
    }
}

fn decode_observability(r: &mut Reader<'_>) -> Result<(Vec<StageError>, Coverage), WireError> {
    let bad = |offset: usize, what: &'static str| WireError { offset, what };
    let n = r.len("diagnostic count")?;
    let mut diagnostics = Vec::with_capacity(n);
    for _ in 0..n {
        let stage = match r.u8("stage")? {
            0 => Stage::Load,
            1 => Stage::Analysis,
            2 => Stage::Structural,
            3 => Stage::Training,
            4 => Stage::Distances,
            5 => Stage::Lifting,
            6 => Stage::Repartition,
            _ => return Err(bad(0, "stage variant")),
        };
        let subject = match r.u8("subject tag")? {
            0 => Subject::Image,
            1 => Subject::Function(r.addr("subject function")?),
            2 => Subject::Vtable(r.addr("subject vtable")?),
            3 => Subject::Family(r.len("subject family")?),
            4 => Subject::Edge(r.addr("edge parent")?, r.addr("edge child")?),
            _ => return Err(bad(0, "subject variant")),
        };
        let kind = match r.u8("fault tag")? {
            0 => FaultKind::Panicked(r.string("panic message")?),
            1 => FaultKind::FuelExhausted,
            2 => FaultKind::DeadlineExceeded,
            3 => FaultKind::Skipped,
            4 => FaultKind::TruncatedDecode,
            5 => FaultKind::SkippedPrefix,
            6 => FaultKind::MissingText,
            7 => FaultKind::RejectedVtable,
            8 => FaultKind::MissingModel,
            _ => return Err(bad(0, "fault variant")),
        };
        let severity = match r.u8("severity")? {
            0 => Severity::Warning,
            1 => Severity::Error,
            _ => return Err(bad(0, "severity variant")),
        };
        diagnostics.push(StageError { stage, subject, kind, severity });
    }
    let mut fields = [0usize; 10];
    for (i, f) in fields.iter_mut().enumerate() {
        let what = [
            "functions_total",
            "functions_analyzed",
            "functions_skipped",
            "functions_timed_out",
            "vtables_parsed",
            "vtables_rejected",
            "models_trained",
            "families_total",
            "families_lifted",
            "families_degraded",
        ][i];
        *f = r.u64(what)? as usize;
    }
    let coverage = Coverage {
        functions_total: fields[0],
        functions_analyzed: fields[1],
        functions_skipped: fields[2],
        functions_timed_out: fields[3],
        vtables_parsed: fields[4],
        vtables_rejected: fields[5],
        models_trained: fields[6],
        families_total: fields[7],
        families_lifted: fields[8],
        families_degraded: fields[9],
    };
    Ok((diagnostics, coverage))
}

fn encode_analysis(w: &mut Writer, analysis: &Analysis) {
    let tracelets = analysis.tracelets();
    let types: Vec<Addr> = tracelets.types().collect();
    w.len(types.len());
    for &t in &types {
        w.addr(t);
        let pool = tracelets.of_type(t);
        w.len(pool.len());
        for tracelet in pool {
            w.len(tracelet.len());
            for ev in tracelet.iter() {
                encode_event(w, *ev);
            }
        }
    }
    let entries: Vec<_> = analysis.ctors().entries().collect();
    w.len(entries.len());
    for (f, stores) in entries {
        w.addr(*f);
        w.len(stores.len());
        for &(off, vt) in stores {
            w.i32(off);
            w.addr(vt);
        }
    }
    let incidents = analysis.incidents();
    w.len(incidents.len());
    for (entry, kind) in incidents {
        w.addr(*entry);
        match kind {
            IncidentKind::Panicked(msg) => {
                w.u8(0);
                w.string(msg);
            }
            IncidentKind::FuelExhausted => w.u8(1),
            IncidentKind::DeadlineExceeded => w.u8(2),
            IncidentKind::Skipped => w.u8(3),
        }
    }
}

fn decode_analysis(r: &mut Reader<'_>) -> Result<Analysis, WireError> {
    let mut tracelets = TypeTracelets::default();
    let types = r.len("type count")?;
    for _ in 0..types {
        let vt = r.addr("type vtable")?;
        let pool = r.len("tracelet count")?;
        for _ in 0..pool {
            let events = r.len("event count")?;
            let mut tracelet = Vec::with_capacity(events);
            for _ in 0..events {
                tracelet.push(decode_event(r)?);
            }
            tracelets.add(vt, tracelet.into());
        }
    }
    let ctor_count = r.len("ctor count")?;
    let mut ctors = Vec::with_capacity(ctor_count);
    for _ in 0..ctor_count {
        let f = r.addr("ctor entry")?;
        let store_count = r.len("store count")?;
        let mut stores = Vec::with_capacity(store_count);
        for _ in 0..store_count {
            let off = r.i32("store offset")?;
            stores.push((off, r.addr("store vtable")?));
        }
        ctors.push((f, stores));
    }
    let incident_count = r.len("incident count")?;
    let mut incidents = Vec::with_capacity(incident_count);
    for _ in 0..incident_count {
        let entry = r.addr("incident entry")?;
        let kind = match r.u8("incident tag")? {
            0 => IncidentKind::Panicked(r.string("incident message")?),
            1 => IncidentKind::FuelExhausted,
            2 => IncidentKind::DeadlineExceeded,
            3 => IncidentKind::Skipped,
            _ => return Err(WireError { offset: 0, what: "incident variant" }),
        };
        incidents.push((entry, kind));
    }
    Ok(Analysis::from_parts(tracelets, CtorMap::from_entries(ctors), incidents))
}

fn encode_event(w: &mut Writer, ev: Event) {
    match ev {
        Event::C(i) => {
            w.u8(0);
            w.len(i);
        }
        Event::R(off) => {
            w.u8(1);
            w.i32(off);
        }
        Event::W(off) => {
            w.u8(2);
            w.i32(off);
        }
        Event::This => w.u8(3),
        Event::Arg(i) => {
            w.u8(4);
            w.len(i);
        }
        Event::Ret => w.u8(5),
        Event::Call(f) => {
            w.u8(6);
            w.addr(f);
        }
    }
}

fn decode_event(r: &mut Reader<'_>) -> Result<Event, WireError> {
    Ok(match r.u8("event tag")? {
        0 => Event::C(r.len("slot")?),
        1 => Event::R(r.i32("read offset")?),
        2 => Event::W(r.i32("write offset")?),
        3 => Event::This,
        4 => Event::Arg(r.len("arg index")?),
        5 => Event::Ret,
        6 => Event::Call(r.addr("callee")?),
        _ => return Err(WireError { offset: 0, what: "event variant" }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rock-artifact-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_observability() -> (Vec<StageError>, Coverage) {
        let diagnostics = vec![
            StageError {
                stage: Stage::Analysis,
                subject: Subject::Function(Addr::new(0x100)),
                kind: FaultKind::Panicked("boom".into()),
                severity: Severity::Error,
            },
            StageError {
                stage: Stage::Distances,
                subject: Subject::Edge(Addr::new(1), Addr::new(2)),
                kind: FaultKind::MissingModel,
                severity: Severity::Warning,
            },
            StageError {
                stage: Stage::Load,
                subject: Subject::Image,
                kind: FaultKind::MissingText,
                severity: Severity::Error,
            },
        ];
        let coverage = Coverage { functions_total: 9, functions_analyzed: 8, ..Default::default() };
        (diagnostics, coverage)
    }

    fn sample_analysis() -> Analysis {
        let mut t = TypeTracelets::default();
        t.add(Addr::new(0x4000), vec![Event::W(0), Event::C(1), Event::Ret].into());
        t.add(Addr::new(0x4000), vec![Event::This, Event::Call(Addr::new(0x80))].into());
        t.add(Addr::new(0x5000), vec![Event::R(8), Event::Arg(2)].into());
        let ctors = CtorMap::from_entries([
            (Addr::new(0x100), vec![(0, Addr::new(0x4000))]),
            (Addr::new(0x200), vec![(0, Addr::new(0x5000)), (16, Addr::new(0x4000))]),
        ]);
        let incidents = vec![
            (Addr::new(0x300), IncidentKind::FuelExhausted),
            (Addr::new(0x400), IncidentKind::Panicked("ouch".into())),
        ];
        Analysis::from_parts(t, ctors, incidents)
    }

    fn roundtrip(cp: &Checkpoint) -> Checkpoint {
        let bytes = encode_artifact(42, cp);
        decode_artifact(42, cp.payload.stage(), &bytes).expect("roundtrip")
    }

    #[test]
    fn all_payloads_roundtrip() {
        let (diagnostics, coverage) = sample_observability();
        for payload in [
            StagePayload::Analysis(sample_analysis()),
            StagePayload::Training(vec![Addr::new(0x4000), Addr::new(0x5000)]),
            StagePayload::Distances(BTreeMap::from([
                ((Addr::new(1), Addr::new(2)), 0.25),
                ((Addr::new(1), Addr::new(3)), f64::INFINITY),
                ((Addr::new(2), Addr::new(3)), -0.0),
            ])),
            StagePayload::Hierarchy(Forest::from_parents([
                (Addr::new(1), None),
                (Addr::new(2), Some(Addr::new(1))),
            ])),
        ] {
            let cp = Checkpoint { payload, diagnostics: diagnostics.clone(), coverage };
            assert_eq!(roundtrip(&cp), cp);
        }
    }

    #[test]
    fn distance_bits_survive_exactly() {
        let subtle = f64::from_bits(0x3FF0_0000_0000_0001); // 1.0 + 1 ulp
        let cp = Checkpoint {
            payload: StagePayload::Distances(BTreeMap::from([(
                (Addr::new(1), Addr::new(2)),
                subtle,
            )])),
            diagnostics: Vec::new(),
            coverage: Coverage::default(),
        };
        let StagePayload::Distances(d) = roundtrip(&cp).payload else { panic!("payload kind") };
        assert_eq!(d[&(Addr::new(1), Addr::new(2))].to_bits(), subtle.to_bits());
    }

    #[test]
    fn corruption_is_detected_not_trusted() {
        let cp = Checkpoint {
            payload: StagePayload::Training(vec![Addr::new(0x10)]),
            diagnostics: Vec::new(),
            coverage: Coverage::default(),
        };
        let good = encode_artifact(7, &cp);
        // Flip one payload byte: checksum must catch it.
        let mut bad = good.clone();
        bad[MAGIC.len() + 20] ^= 0xFF;
        assert!(decode_artifact(7, StageId::Training, &bad).unwrap_err().contains("checksum"));
        // Truncation.
        assert!(decode_artifact(7, StageId::Training, &good[..10]).is_err());
        // Wrong stage requested.
        assert!(decode_artifact(7, StageId::Distances, &good).unwrap_err().contains("stage tag"));
        // Wrong job key.
        assert!(decode_artifact(8, StageId::Training, &good).unwrap_err().contains("content key"));
        // Wrong magic/version.
        let mut wrong_magic = good.clone();
        wrong_magic[7] = 0x7F;
        // (checksum still covers the magic, so re-seal to isolate the check)
        let body_len = wrong_magic.len() - 8;
        let seal = fnv1a(&wrong_magic[..body_len]);
        wrong_magic[body_len..].copy_from_slice(&seal.to_le_bytes());
        assert!(decode_artifact(7, StageId::Training, &wrong_magic).unwrap_err().contains("magic"));
    }

    #[test]
    fn store_saves_loads_and_invalidates() {
        let store = ArtifactStore::open(tmpdir("store")).unwrap();
        let key = 0xABCD;
        assert!(store.load(key, StageId::Analysis).unwrap().is_none(), "empty store");
        let (diagnostics, coverage) = sample_observability();
        let cp = Checkpoint {
            payload: StagePayload::Analysis(sample_analysis()),
            diagnostics,
            coverage,
        };
        store.save(key, &cp).unwrap();
        assert_eq!(store.load(key, StageId::Analysis).unwrap().unwrap(), cp);
        assert!(store.load(key, StageId::Training).unwrap().is_none(), "only analysis saved");
        store.invalidate(key).unwrap();
        assert!(store.load(key, StageId::Analysis).unwrap().is_none(), "invalidated");
        store.invalidate(key).unwrap(); // idempotent
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn completed_prefix_stops_at_the_first_gap() {
        let store = ArtifactStore::open(tmpdir("prefix")).unwrap();
        let key = 1;
        let mk = |payload| Checkpoint {
            payload,
            diagnostics: Vec::new(),
            coverage: Coverage::default(),
        };
        store.save(key, &mk(StagePayload::Analysis(sample_analysis()))).unwrap();
        // Skip training; save distances — it must NOT appear in the prefix.
        store.save(key, &mk(StagePayload::Distances(BTreeMap::new()))).unwrap();
        let prefix = store.completed_prefix(key).unwrap();
        assert_eq!(prefix.len(), 1);
        assert_eq!(prefix[0].payload.stage(), StageId::Analysis);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_files_surface_as_store_errors() {
        let store = ArtifactStore::open(tmpdir("corrupt")).unwrap();
        let key = 2;
        let dir = store.job_dir(key);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("analysis.art"), b"garbage").unwrap();
        let err = store.load(key, StageId::Analysis).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        assert!(err.to_string().contains("corrupt artifact"));
        store.invalidate(key).unwrap();
        assert!(store.load(key, StageId::Analysis).unwrap().is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn open_unswept_preserves_tmps_and_rejects_missing_roots() {
        let root = tmpdir("unswept");
        assert_eq!(
            ArtifactStore::open_unswept(&root).unwrap_err().kind(),
            std::io::ErrorKind::NotFound,
            "scrubbing a mistyped path must not mkdir it"
        );
        let store = ArtifactStore::open(&root).unwrap();
        let dir = store.job_dir(7);
        fs::create_dir_all(&dir).unwrap();
        let tmp = dir.join(".analysis.art.tmp");
        fs::write(&tmp, b"half a commit").unwrap();
        drop(store);
        // The scrub entry point must leave the stale tmp in place so
        // the scrub report (and a dry run in particular) owns it.
        let store = ArtifactStore::open_unswept(&root).unwrap();
        assert!(tmp.exists(), "open_unswept must not sweep");
        let dry = store.scrub(true);
        assert_eq!(dry.tmp_swept, 1);
        assert!(tmp.exists(), "dry run must touch nothing");
        let real = store.scrub(false);
        assert_eq!(real.tmp_swept, 1);
        assert!(!tmp.exists());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn content_keys_separate_configs_but_not_parallelism() {
        let image = b"fake image bytes";
        let base = RockConfig::paper();
        let k0 = content_key(image, &base);
        assert_eq!(k0, content_key(image, &base), "deterministic");
        assert_ne!(k0, content_key(b"other image", &base), "image changes the key");
        let mut strict = base;
        strict.strict = true;
        assert_ne!(k0, content_key(image, &strict), "strictness changes the key");
        let canonical = base.with_canonical_calls();
        assert_ne!(
            k0,
            content_key(image, &canonical),
            "canonical calls change the event alphabet and must change the key"
        );
        let mut fast = base;
        fast.analysis = rock_analysis::AnalysisConfig::fast();
        assert_ne!(k0, content_key(image, &fast), "analysis knobs change the key");
        let mut threaded = base;
        threaded.parallelism = rock_core::Parallelism::Threads(8);
        assert_eq!(
            k0,
            content_key(image, &threaded),
            "parallelism must not change the key: resume may cross thread counts"
        );
    }
}
