//! The supervised job runner: watchdog deadline, retry ladder,
//! checkpoint/resume, and per-job reports.
//!
//! One *job* is one binary image to reconstruct. The supervisor drives
//! the staged pipeline ([`rock_core::StagedRun`]) and wraps it in
//! policy:
//!
//! * **Checkpointing** — after every completed stage the stage artifact
//!   is saved to the [`ArtifactStore`]. With `resume` on, the next run
//!   of the same (image, config) restores the completed prefix and
//!   skips straight to the first unfinished stage. Restored state is
//!   bit-identical to live state, so an interrupted-then-resumed job
//!   equals an uninterrupted one.
//! * **Watchdog** — an optional per-job wall-clock deadline, checked
//!   cooperatively at stage boundaries. A blown deadline does not kill
//!   the job: it short-circuits to the structural-only fallback.
//! * **Retry ladder** — a faulting attempt is retried down the
//!   [`Rung`] ladder under the [`rock_budget::RetryPolicy`]'s backoff
//!   schedule. The schedule is *recorded*, and only slept when
//!   [`SupervisorOptions::sleep_backoff`] is set, which keeps every
//!   test of the retry logic clock-free.
//! * **Graceful floor** — if the ladder is exhausted the job still
//!   emits a structural-only hierarchy with diagnostics; a loadable
//!   image never produces an empty result.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use rock_binary::{image_from_bytes, Addr};
use rock_budget::{Deadline, RetryPolicy};
use rock_core::{
    CorpusCache, CorpusStats, FaultPlan, IncrStats, Reconstruction, Rock, RockConfig, Severity,
    StageId, StagedRun, StoreStats,
};
use rock_graph::Forest;
use rock_loader::LoadedBinary;
use rock_structural::Structural;
use rock_trace::{names, MetricsRegistry, TraceCtx, TraceLevel, Tracer};

use crate::artifact::{content_key, ArtifactStore, Checkpoint, StagePayload, StoreError};
use crate::ladder::{structural_only_hierarchy, Rung};

/// Typed process exit codes for supervised runs (documented in the
/// README; the CLI maps a batch to the numerically largest per-job
/// code, so the worst condition in the batch wins).
pub mod exit {
    /// Every job completed at full strength with complete coverage.
    pub const OK: u8 = 0;
    /// A job was interrupted at a stage boundary (fault injection).
    pub const INTERRUPTED: u8 = 1;
    /// A job completed, but degraded: a lower ladder rung, contained
    /// faults, or incomplete coverage.
    pub const DEGRADED: u8 = 2;
    /// A job failed outright: unloadable image, or strict mode hit an
    /// error-severity diagnostic.
    pub const FAILED: u8 = 3;
    /// A job blew its wall-clock deadline (structural fallback emitted).
    pub const DEADLINE: u8 = 4;
    /// Resume was requested but the job's artifacts were corrupt (the
    /// job recomputed from scratch; the damage is still surfaced).
    pub const RESUME_CORRUPT: u8 = 5;
}

/// Supervision policy, orthogonal to the reconstruction config.
#[derive(Clone, Debug, Default)]
pub struct SupervisorOptions {
    /// Retry count + backoff curve for the ladder's middle rungs.
    pub retry: RetryPolicy,
    /// Per-job wall-clock deadline in milliseconds (`None`: no watchdog).
    pub deadline_ms: Option<u64>,
    /// Restore checkpointed stages instead of re-running them.
    pub resume: bool,
    /// Actually sleep the backoff delays. Off by default so retry
    /// behavior is testable without a wall clock; the schedule is
    /// recorded in the report either way.
    pub sleep_backoff: bool,
    /// Abort the batch after this many hard failures (code ≥ 3).
    pub max_failures: Option<usize>,
    /// Embed the run's versioned metrics document in each job report
    /// (`rock batch --metrics`). The registry is computed by the
    /// pipeline either way; this only controls report size.
    pub collect_metrics: bool,
    /// Persist the corpus cache's sub-artifacts across processes:
    /// preload them from the store before the batch and flush new ones
    /// after it (see [`crate::incr`]). Requires an attached
    /// [`CorpusCache`]; a patched image then recomputes only what its
    /// edit actually touched.
    pub incremental: bool,
}

/// How one job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Full-strength success with complete coverage.
    Ok,
    /// Interrupted at a stage boundary by the fault plan (the simulated
    /// crash of the resume tests; checkpoints up to the boundary are on
    /// disk).
    Interrupted(StageId),
    /// Completed, but on a lower rung and/or with contained faults.
    Degraded(Rung),
    /// No result: unloadable image or a strict-mode failure.
    Failed(String),
    /// The watchdog fired; the structural-only fallback was emitted.
    DeadlineBlown,
}

impl JobOutcome {
    /// Stable lowercase name (reports).
    pub fn name(&self) -> &'static str {
        match self {
            JobOutcome::Ok => "ok",
            JobOutcome::Interrupted(_) => "interrupted",
            JobOutcome::Degraded(_) => "degraded",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::DeadlineBlown => "deadline",
        }
    }

    /// The exit-code contribution of this outcome alone (corrupt-resume
    /// is tracked separately and folded in by [`JobReport::exit_code`]).
    pub fn code(&self) -> u8 {
        match self {
            JobOutcome::Ok => exit::OK,
            JobOutcome::Interrupted(_) => exit::INTERRUPTED,
            JobOutcome::Degraded(_) => exit::DEGRADED,
            JobOutcome::Failed(_) => exit::FAILED,
            JobOutcome::DeadlineBlown => exit::DEADLINE,
        }
    }
}

impl fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOutcome::Interrupted(s) => write!(f, "interrupted after {s}"),
            JobOutcome::Degraded(r) => write!(f, "degraded ({r})"),
            JobOutcome::Failed(why) => write!(f, "failed: {why}"),
            _ => f.write_str(self.name()),
        }
    }
}

/// A typed storage incident recorded in a job report.
///
/// Incidents ride in the *report* only — never in pipeline diagnostics,
/// which must stay bit-identical between warm and cold runs. The store
/// has already retried transient faults internally by the time one of
/// these is recorded, so every incident reflects a persistent fault and
/// the graceful degradation that answered it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreIncident {
    /// A checkpoint save failed persistently; the supervisor degraded
    /// the job to recompute-without-checkpointing (later saves of this
    /// job are skipped, the job itself runs to completion).
    CheckpointLost {
        /// The stage whose artifact could not be written.
        stage: StageId,
        /// The underlying store error.
        detail: String,
    },
    /// The resume prefix could not be read (persistent i/o fault); the
    /// job recomputed from scratch.
    ResumeUnavailable {
        /// The underlying store error.
        detail: String,
    },
    /// Resume found corrupt artifacts; the job slot was wiped and the
    /// job recomputed from scratch.
    ResumeCorrupt {
        /// What failed validation.
        detail: String,
    },
}

impl StoreIncident {
    /// Stable lowercase kind name (reports).
    pub fn kind(&self) -> &'static str {
        match self {
            StoreIncident::CheckpointLost { .. } => "checkpoint_lost",
            StoreIncident::ResumeUnavailable { .. } => "resume_unavailable",
            StoreIncident::ResumeCorrupt { .. } => "resume_corrupt",
        }
    }

    /// The underlying error text.
    pub fn detail(&self) -> &str {
        match self {
            StoreIncident::CheckpointLost { detail, .. }
            | StoreIncident::ResumeUnavailable { detail }
            | StoreIncident::ResumeCorrupt { detail } => detail,
        }
    }
}

/// One ladder attempt, as recorded in the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptRecord {
    /// The rung this attempt ran on.
    pub rung: Rung,
    /// The backoff delay scheduled before this attempt (recorded even
    /// when `sleep_backoff` is off).
    pub backoff_ms: u64,
    /// What happened ("ok", "panicked: ...", "deadline", ...).
    pub result: String,
}

/// The machine-readable summary of one supervised job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Job name (usually the image file stem).
    pub name: String,
    /// Content key of the full-strength configuration (the canonical
    /// artifact-store slot for this job).
    pub key: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Every attempt, in order, including the fallback if it ran.
    pub attempts: Vec<AttemptRecord>,
    /// Stages skipped by restoring checkpoints instead of re-running.
    pub restored: Vec<StageId>,
    /// Resume found corrupt artifacts (wiped and recomputed).
    pub resume_corrupt: bool,
    /// Error-severity diagnostics in the final result.
    pub errors: usize,
    /// Warning-severity diagnostics in the final result.
    pub warnings: usize,
    /// Types in the emitted hierarchy.
    pub types: usize,
    /// Roots in the emitted hierarchy.
    pub roots: usize,
    /// Wall-clock time spent on the job.
    pub elapsed_ms: u64,
    /// The run's versioned metrics document (pipeline registry plus the
    /// `supervisor.*` counters), when
    /// [`SupervisorOptions::collect_metrics`] is set. Deterministic work
    /// counts only — no wall-clock values.
    pub metrics: Option<String>,
    /// This job's corpus-cache traffic (hit/miss/bytes deltas across all
    /// three tiers), when the supervisor has a [`CorpusCache`] attached.
    pub corpus: Option<CorpusStats>,
    /// This job's artifact-store fault-path traffic (sweep / retry /
    /// failure / corruption deltas), present only when something fired —
    /// healthy runs on a healthy disk omit it. Deltas against a store
    /// shared by concurrent jobs (serve) are approximate, like `corpus`.
    pub store: Option<StoreStats>,
    /// Typed storage incidents (persistent faults) this job absorbed.
    pub store_incidents: Vec<StoreIncident>,
}

impl JobReport {
    /// The job's process exit code: the outcome's code, raised to
    /// [`exit::RESUME_CORRUPT`] if resume found damaged artifacts.
    pub fn exit_code(&self) -> u8 {
        let base = self.outcome.code();
        if self.resume_corrupt {
            base.max(exit::RESUME_CORRUPT)
        } else {
            base
        }
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"name\":\"{}\",", json_escape(&self.name)));
        s.push_str(&format!("\"key\":\"{:016x}\",", self.key));
        s.push_str(&format!("\"outcome\":\"{}\",", self.outcome.name()));
        if let JobOutcome::Degraded(rung) = &self.outcome {
            s.push_str(&format!("\"rung\":\"{rung}\","));
        }
        if let JobOutcome::Failed(why) = &self.outcome {
            s.push_str(&format!("\"reason\":\"{}\",", json_escape(why)));
        }
        if let JobOutcome::Interrupted(stage) = &self.outcome {
            s.push_str(&format!("\"interrupted_after\":\"{stage}\","));
        }
        s.push_str(&format!("\"exit_code\":{},", self.exit_code()));
        s.push_str("\"attempts\":[");
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rung\":\"{}\",\"backoff_ms\":{},\"result\":\"{}\"}}",
                a.rung,
                a.backoff_ms,
                json_escape(&a.result)
            ));
        }
        s.push_str("],");
        s.push_str("\"restored\":[");
        for (i, stage) in self.restored.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{stage}\""));
        }
        s.push_str("],");
        s.push_str(&format!("\"resume_corrupt\":{},", self.resume_corrupt));
        s.push_str(&format!("\"errors\":{},", self.errors));
        s.push_str(&format!("\"warnings\":{},", self.warnings));
        s.push_str(&format!("\"types\":{},", self.types));
        s.push_str(&format!("\"roots\":{},", self.roots));
        if let Some(doc) = &self.metrics {
            // Already a rendered JSON object; embed it verbatim.
            s.push_str(&format!("\"metrics\":{doc},"));
        }
        if let Some(c) = &self.corpus {
            s.push_str(&format!(
                "\"corpus\":{{\"tracelet_hits\":{},\"tracelet_misses\":{},\
                 \"slm_hits\":{},\"slm_misses\":{},\
                 \"distance_hits\":{},\"distance_misses\":{},\
                 \"lifting_hits\":{},\"lifting_misses\":{},\
                 \"bytes_stored\":{},\"corrupt_dropped\":{},\"evicted\":{}}},",
                c.tracelet_hits,
                c.tracelet_misses,
                c.slm_hits,
                c.slm_misses,
                c.distance_hits,
                c.distance_misses,
                c.lifting_hits,
                c.lifting_misses,
                c.bytes_stored,
                c.corrupt_dropped,
                c.evicted,
            ));
        }
        if let Some(st) = &self.store {
            s.push_str(&format!(
                "\"store\":{{\"tmp_swept\":{},\"write_retries\":{},\"write_failures\":{},\
                 \"read_retries\":{},\"read_failures\":{},\"corrupt_detected\":{},\
                 \"checkpoints_skipped\":{},\"retry_backoff_ms\":{}}},",
                st.tmp_swept,
                st.write_retries,
                st.write_failures,
                st.read_retries,
                st.read_failures,
                st.corrupt_detected,
                st.checkpoints_skipped,
                st.retry_backoff_ms,
            ));
        }
        if !self.store_incidents.is_empty() {
            s.push_str("\"store_incidents\":[");
            for (i, inc) in self.store_incidents.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{{\"kind\":\"{}\",", inc.kind()));
                if let StoreIncident::CheckpointLost { stage, .. } = inc {
                    s.push_str(&format!("\"stage\":\"{stage}\","));
                }
                s.push_str(&format!("\"detail\":\"{}\"}}", json_escape(inc.detail())));
            }
            s.push_str("],");
        }
        s.push_str(&format!("\"elapsed_ms\":{}", self.elapsed_ms));
        s.push('}');
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// What a job actually produced.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// The full pipeline result (possibly from a reduced rung).
    Full(Box<Reconstruction>),
    /// The bottom-rung fallback: hierarchy + structural facts + the
    /// issues that forced the degradation.
    StructuralOnly {
        /// The structurally-determined hierarchy.
        hierarchy: Forest<Addr>,
        /// The structural analysis it was read from.
        structural: Structural,
        /// Rendered diagnostics: load issues + failed-attempt records.
        issues: Vec<String>,
    },
    /// Nothing: the image did not load, strict mode failed the run, or
    /// the run was interrupted.
    None,
}

impl JobOutput {
    /// The emitted hierarchy, if any.
    pub fn hierarchy(&self) -> Option<&Forest<Addr>> {
        match self {
            JobOutput::Full(r) => Some(&r.hierarchy),
            JobOutput::StructuralOnly { hierarchy, .. } => Some(hierarchy),
            JobOutput::None => None,
        }
    }
}

/// Report plus output for one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The machine-readable summary.
    pub report: JobReport,
    /// The reconstruction (or fallback) itself.
    pub output: JobOutput,
}

/// The outcome of a whole batch.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-job results, in submission order (prefix only if aborted).
    pub jobs: Vec<JobResult>,
    /// Numerically largest per-job exit code (0 for an empty batch).
    pub exit_code: u8,
    /// `Some(n)`: the batch stopped after `n` jobs because
    /// [`SupervisorOptions::max_failures`] tripped.
    pub aborted_after: Option<usize>,
    /// Combined sub-artifact preload + flush accounting, present when
    /// [`SupervisorOptions::incremental`] was on.
    pub incr: Option<IncrStats>,
}

/// Drives supervised reconstructions against one artifact store.
pub struct Supervisor {
    config: RockConfig,
    options: SupervisorOptions,
    store: ArtifactStore,
    corpus: Option<Arc<CorpusCache>>,
    fault: Option<Arc<FaultPlan>>,
    tracer: Option<Arc<Tracer>>,
    trace_level: TraceLevel,
}

/// Work counts one job accumulates outside the pipeline registry.
#[derive(Default)]
struct SupervisorCounters {
    checkpoints_saved: u64,
    backoff_ms_total: u64,
    checkpoints_skipped: u64,
    /// A persistent save fault degraded this job to
    /// recompute-without-checkpointing: later saves are skipped.
    checkpointing_disabled: bool,
}

enum AttemptOutcome {
    Completed(Box<Reconstruction>),
    Strict(String),
    Interrupted(StageId),
    Deadline,
    Panicked(String),
}

impl Supervisor {
    /// A supervisor reconstructing under `config` with checkpoints in
    /// `store`.
    pub fn new(config: RockConfig, store: ArtifactStore, options: SupervisorOptions) -> Self {
        Supervisor {
            config,
            options,
            store,
            corpus: None,
            fault: None,
            tracer: None,
            trace_level: TraceLevel::default(),
        }
    }

    /// Attaches a fleet-wide [`CorpusCache`]: every attempt of every job
    /// reads and warms the shared three-tier store, and each report
    /// carries the job's hit/miss deltas. Pair with
    /// [`RockConfig::with_canonical_calls`] so content keys survive
    /// layout differences between the batch's images.
    pub fn with_corpus(mut self, corpus: Arc<CorpusCache>) -> Self {
        self.corpus = Some(corpus);
        self
    }

    /// The attached corpus cache, if any.
    pub fn corpus(&self) -> Option<&Arc<CorpusCache>> {
        self.corpus.as_ref()
    }

    /// Attaches a span [`Tracer`]: every job records `supervisor.*`
    /// spans (job, attempts, checkpoint saves, restores, backoff waits)
    /// and the pipeline's stage/item spans into it, filtered through the
    /// level set by [`Supervisor::with_trace_level`] ([`TraceLevel::Full`]
    /// by default).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Sets the [`TraceLevel`] for this supervisor *and* the pipelines it
    /// drives. `supervisor.*` spans are coarse, so they survive every
    /// enabled level; only the pipeline's per-item spans are sampled away.
    pub fn with_trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// The span-recording context at this supervisor's level.
    fn trace_ctx(&self) -> TraceCtx<'_> {
        match self.tracer.as_deref() {
            Some(t) => TraceCtx::with_level(t, self.trace_level),
            None => TraceCtx::disabled(),
        }
    }

    /// Attaches a fault plan (tests: injected panics + stage
    /// interrupts). The plan reaches the pipeline *and* the
    /// supervisor's interrupt checks.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The artifact store this supervisor checkpoints into.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// The canonical (full-rung) content key of an image under this
    /// supervisor's config.
    pub fn job_key(&self, image_bytes: &[u8]) -> u64 {
        content_key(image_bytes, &Rung::Full.apply(&self.config))
    }

    /// Runs one job to a report + output. Never panics; never returns
    /// an empty output for a loadable image unless the run is strict,
    /// failed, or interrupted.
    pub fn run_job(&self, name: &str, image_bytes: &[u8]) -> JobResult {
        let start = Instant::now();
        let key = self.job_key(image_bytes);
        let ctx = self.trace_ctx();
        let _job_span = ctx.span(names::SUPERVISOR_JOB, key);
        let mut counters = SupervisorCounters::default();
        let corpus_stats0 = self.corpus.as_ref().map(|c| c.stats());
        let store_stats0 = self.store.stats();
        let mut report = JobReport {
            name: name.to_string(),
            key,
            outcome: JobOutcome::Ok,
            attempts: Vec::new(),
            restored: Vec::new(),
            resume_corrupt: false,
            errors: 0,
            warnings: 0,
            types: 0,
            roots: 0,
            elapsed_ms: 0,
            metrics: None,
            corpus: None,
            store: None,
            store_incidents: Vec::new(),
        };
        let image = match image_from_bytes(image_bytes) {
            Ok(image) => image,
            Err(e) => {
                report.outcome = JobOutcome::Failed(format!("unloadable image: {e}"));
                report.errors = 1;
                report.elapsed_ms = start.elapsed().as_millis() as u64;
                return JobResult { report, output: JobOutput::None };
            }
        };
        let loaded = LoadedBinary::load_lenient(image);
        let deadline = Deadline::from_config(self.options.deadline_ms);

        let mut fall_through_to_fallback = false;
        let mut output = JobOutput::None;
        let total_attempts = 1 + self.options.retry.max_retries();
        let mut attempt = 0u32;
        loop {
            if attempt >= total_attempts {
                fall_through_to_fallback = true;
                break;
            }
            let rung = if attempt == 0 { Rung::Full } else { Rung::Reduced };
            let backoff_ms =
                if attempt == 0 { 0 } else { self.options.retry.backoff_ms(attempt - 1) };
            if backoff_ms > 0 {
                counters.backoff_ms_total += backoff_ms;
                let _backoff_span = ctx.span(names::SUPERVISOR_BACKOFF, backoff_ms);
                if self.options.sleep_backoff {
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                }
            }
            if deadline.expired() {
                report.attempts.push(AttemptRecord { rung, backoff_ms, result: "deadline".into() });
                report.outcome = JobOutcome::DeadlineBlown;
                fall_through_to_fallback = true;
                break;
            }
            match self.attempt(
                attempt,
                rung,
                &loaded,
                image_bytes,
                &deadline,
                &mut report,
                &mut counters,
            ) {
                AttemptOutcome::Completed(recon) => {
                    report.attempts.push(AttemptRecord { rung, backoff_ms, result: "ok".into() });
                    report.errors = count_severity(&recon, Severity::Error);
                    report.warnings = count_severity(&recon, Severity::Warning);
                    report.types = recon.hierarchy.len();
                    report.roots = recon.hierarchy.roots().len();
                    report.outcome =
                        if rung == Rung::Full && report.errors == 0 && recon.coverage.is_complete()
                        {
                            JobOutcome::Ok
                        } else {
                            JobOutcome::Degraded(rung)
                        };
                    output = JobOutput::Full(recon);
                    break;
                }
                AttemptOutcome::Strict(why) => {
                    report.attempts.push(AttemptRecord {
                        rung,
                        backoff_ms,
                        result: format!("strict: {why}"),
                    });
                    // Strict failures are deterministic — retrying or
                    // degrading would betray the mode's contract.
                    report.outcome = JobOutcome::Failed(why);
                    report.errors = 1;
                    break;
                }
                AttemptOutcome::Interrupted(stage) => {
                    report.attempts.push(AttemptRecord {
                        rung,
                        backoff_ms,
                        result: format!("interrupted after {stage}"),
                    });
                    report.outcome = JobOutcome::Interrupted(stage);
                    break;
                }
                AttemptOutcome::Deadline => {
                    report.attempts.push(AttemptRecord {
                        rung,
                        backoff_ms,
                        result: "deadline".into(),
                    });
                    report.outcome = JobOutcome::DeadlineBlown;
                    fall_through_to_fallback = true;
                    break;
                }
                AttemptOutcome::Panicked(msg) => {
                    report.attempts.push(AttemptRecord {
                        rung,
                        backoff_ms,
                        result: format!("panicked: {msg}"),
                    });
                    attempt += 1;
                }
            }
        }

        if fall_through_to_fallback {
            // The graceful floor: no deadline check, no faults, no
            // retries — a loadable image always yields a hierarchy.
            let (hierarchy, structural) = structural_only_hierarchy(&loaded, &self.config.analysis);
            let mut issues: Vec<String> = loaded.issues().iter().map(|i| i.to_string()).collect();
            issues.extend(
                report
                    .attempts
                    .iter()
                    .filter(|a| a.result != "ok")
                    .map(|a| format!("attempt on rung {}: {}", a.rung, a.result)),
            );
            report.attempts.push(AttemptRecord {
                rung: Rung::StructuralOnly,
                backoff_ms: 0,
                result: "ok".into(),
            });
            if report.outcome != JobOutcome::DeadlineBlown {
                report.outcome = JobOutcome::Degraded(Rung::StructuralOnly);
            }
            report.errors = issues.len();
            report.types = hierarchy.len();
            report.roots = hierarchy.roots().len();
            output = JobOutput::StructuralOnly { hierarchy, structural, issues };
        }

        // The job's corpus-tier traffic: a delta against the shared
        // cache's counters at job start. Folded into the emitted
        // reconstruction's timings (and the report's metrics doc), but
        // never into the pipeline's own registry — cold and warm runs
        // stay byte-identical there.
        if let (Some(corpus), Some(stats0)) = (&self.corpus, &corpus_stats0) {
            let delta = corpus.stats().since(stats0);
            if let JobOutput::Full(recon) = &mut output {
                let mut scratch = MetricsRegistry::new();
                recon.timings.absorb_corpus_stats(&delta, &mut scratch);
            }
            report.corpus = Some(delta);
        }

        // Same discipline for the store's fault-path counters, attached
        // only when something actually fired so healthy reports stay
        // unchanged byte-for-byte.
        let mut store_delta = self.store.stats().since(&store_stats0);
        store_delta.checkpoints_skipped = counters.checkpoints_skipped;
        if store_delta.has_activity() || !report.store_incidents.is_empty() {
            if let JobOutput::Full(recon) = &mut output {
                let mut scratch = MetricsRegistry::new();
                recon.timings.absorb_store_stats(&store_delta, &mut scratch);
            }
            report.store = Some(store_delta);
        }

        if self.options.collect_metrics {
            let mut metrics = match &output {
                JobOutput::Full(recon) => recon.metrics.clone(),
                _ => MetricsRegistry::new(),
            };
            metrics.set(names::SUPERVISOR_ATTEMPTS, report.attempts.len() as u64);
            metrics.set(names::SUPERVISOR_CHECKPOINTS_SAVED, counters.checkpoints_saved);
            metrics.set(names::SUPERVISOR_STAGES_RESTORED, report.restored.len() as u64);
            metrics.set(names::SUPERVISOR_BACKOFF_MS, counters.backoff_ms_total);
            if let Some(delta) = &report.corpus {
                let mut t = rock_core::StageTimings::default();
                t.absorb_corpus_stats(delta, &mut metrics);
            }
            if let Some(delta) = &report.store {
                let mut t = rock_core::StageTimings::default();
                t.absorb_store_stats(delta, &mut metrics);
            }
            report.metrics = Some(metrics.to_json());
        }
        report.elapsed_ms = start.elapsed().as_millis() as u64;
        JobResult { report, output }
    }

    /// Restores persisted sub-artifacts into the attached corpus cache
    /// (no-op without one). Idempotent; call before running jobs.
    pub fn preload_incremental(&self) -> IncrStats {
        match &self.corpus {
            Some(corpus) => crate::incr::preload_subartifacts(&self.store, corpus),
            None => IncrStats::default(),
        }
    }

    /// Writes the attached corpus cache's new sub-artifacts to the
    /// store (no-op without one). Idempotent; already-persisted entries
    /// count as `unchanged`.
    pub fn flush_incremental(&self) -> IncrStats {
        match &self.corpus {
            Some(corpus) => crate::incr::flush_subartifacts(&self.store, corpus),
            None => IncrStats::default(),
        }
    }

    /// Runs a batch of `(name, image bytes)` jobs sequentially. With
    /// [`SupervisorOptions::incremental`] set, sub-artifacts are
    /// preloaded before the first job and flushed after the last (even
    /// when the batch aborts early — completed work stays persisted).
    pub fn run_batch(&self, jobs: &[(String, Vec<u8>)]) -> BatchResult {
        let incr0 = self.options.incremental.then(|| self.preload_incremental());
        let mut results = Vec::new();
        let mut failures = 0usize;
        let mut aborted_after = None;
        for (i, (name, bytes)) in jobs.iter().enumerate() {
            let r = self.run_job(name, bytes);
            if r.report.exit_code() >= exit::FAILED {
                failures += 1;
            }
            results.push(r);
            if let Some(max) = self.options.max_failures {
                if failures >= max && i + 1 < jobs.len() {
                    aborted_after = Some(i + 1);
                    break;
                }
            }
        }
        let incr = incr0.map(|mut stats| {
            stats.add(&self.flush_incremental());
            stats
        });
        let exit_code = results.iter().map(|r| r.report.exit_code()).max().unwrap_or(exit::OK);
        BatchResult { jobs: results, exit_code, aborted_after, incr }
    }

    /// One pipeline attempt on `rung`: resume the checkpointed prefix,
    /// advance the rest live, checkpoint each completed stage, honor
    /// interrupt directives and the watchdog. Panics are contained and
    /// reported, never propagated.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        attempt: u32,
        rung: Rung,
        loaded: &LoadedBinary,
        image_bytes: &[u8],
        deadline: &Deadline,
        report: &mut JobReport,
        counters: &mut SupervisorCounters,
    ) -> AttemptOutcome {
        let ctx = self.trace_ctx();
        let _attempt_span = ctx.span(names::SUPERVISOR_ATTEMPT, attempt as u64);
        let config = rung.apply(&self.config);
        let key = content_key(image_bytes, &config);
        let mut rock = Rock::new(config).with_trace_level(self.trace_level);
        if let Some(corpus) = &self.corpus {
            rock = rock.with_corpus_cache(corpus.clone());
        }
        if let Some(plan) = &self.fault {
            rock = rock.with_fault_plan(plan.clone());
        }
        if let Some(tracer) = &self.tracer {
            rock = rock.with_tracer(tracer.clone());
        }
        let mut restored: Vec<StageId> = Vec::new();
        let mut resume_corrupt = false;
        let mut checkpoints_saved = 0u64;
        let mut checkpoints_skipped = 0u64;
        let mut checkpointing_disabled = counters.checkpointing_disabled;
        let mut incidents: Vec<StoreIncident> = Vec::new();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if self.fault.as_ref().is_some_and(|p| p.should_fail_attempt(attempt)) {
                panic!("injected attempt fault");
            }
            let mut run = rock.begin(loaded);
            if self.options.resume {
                let restore_span = ctx.span(names::SUPERVISOR_RESTORE, key);
                self.restore_prefix(
                    &mut run,
                    key,
                    &mut restored,
                    &mut resume_corrupt,
                    &mut incidents,
                );
                drop(restore_span);
            }
            loop {
                if deadline.expired() {
                    return AttemptOutcome::Deadline;
                }
                match run.advance() {
                    Err(e) => return AttemptOutcome::Strict(e.to_string()),
                    Ok(None) => break,
                    Ok(Some(stage)) => {
                        if let Some(cp) = checkpoint_of(&run, stage) {
                            let cp_span = ctx.span(names::SUPERVISOR_CHECKPOINT, stage as u64);
                            // A failed save must not fail the job: the
                            // stage already ran; only resume is lost.
                            // The store retried transient faults, so an
                            // error here is persistent — degrade to
                            // recompute-without-checkpointing instead
                            // of hammering a broken disk every stage.
                            if checkpointing_disabled {
                                checkpoints_skipped += 1;
                            } else {
                                match self.store.save(key, &cp) {
                                    Ok(()) => checkpoints_saved += 1,
                                    Err(e) => {
                                        checkpointing_disabled = true;
                                        incidents.push(StoreIncident::CheckpointLost {
                                            stage,
                                            detail: e.to_string(),
                                        });
                                    }
                                }
                            }
                            drop(cp_span);
                        }
                        if self.fault.as_ref().is_some_and(|p| p.should_interrupt_after(stage)) {
                            return AttemptOutcome::Interrupted(stage);
                        }
                    }
                }
            }
            AttemptOutcome::Completed(Box::new(run.finish()))
        }));
        report.restored.extend(restored);
        report.resume_corrupt |= resume_corrupt;
        report.store_incidents.extend(incidents);
        counters.checkpoints_saved += checkpoints_saved;
        counters.checkpoints_skipped += checkpoints_skipped;
        counters.checkpointing_disabled = checkpointing_disabled;
        match caught {
            Ok(outcome) => outcome,
            Err(payload) => AttemptOutcome::Panicked(panic_message(&payload)),
        }
    }

    /// Restores the contiguous checkpointed prefix into `run`. Corrupt
    /// or out-of-order artifacts invalidate the whole job slot and fall
    /// back to live execution from the start.
    fn restore_prefix(
        &self,
        run: &mut StagedRun<'_>,
        key: u64,
        restored: &mut Vec<StageId>,
        resume_corrupt: &mut bool,
        incidents: &mut Vec<StoreIncident>,
    ) {
        let prefix = match self.store.completed_prefix(key) {
            Ok(prefix) => prefix,
            Err(e @ StoreError::Corrupt { .. }) => {
                *resume_corrupt = true;
                incidents.push(StoreIncident::ResumeCorrupt { detail: e.to_string() });
                let _ = self.store.invalidate(key);
                return;
            }
            Err(e @ StoreError::Io(_)) => {
                // Persistent read fault (transients were retried in the
                // store): recompute from scratch, keep the job alive.
                incidents.push(StoreIncident::ResumeUnavailable { detail: e.to_string() });
                return;
            }
        };
        for cp in prefix {
            let stage = cp.payload.stage();
            let Checkpoint { payload, diagnostics, coverage } = cp;
            let ok = match payload {
                StagePayload::Analysis(a) => run.restore_analysis(a, diagnostics, coverage),
                StagePayload::Training(t) => run.restore_models(&t, diagnostics, coverage),
                StagePayload::Distances(d) => run.restore_distances(d, diagnostics, coverage),
                StagePayload::Hierarchy(h) => run.restore_hierarchy(h, diagnostics, coverage),
            };
            match ok {
                Ok(()) => restored.push(stage),
                Err(e) => {
                    // completed_prefix is ordered, so this means the
                    // store and the run disagree — treat as corruption.
                    *resume_corrupt = true;
                    incidents.push(StoreIncident::ResumeCorrupt {
                        detail: format!("restore of {stage} rejected: {e:?}"),
                    });
                    let _ = self.store.invalidate(key);
                    return;
                }
            }
        }
    }
}

/// Snapshots the stage that just completed into a checkpoint.
fn checkpoint_of(run: &StagedRun<'_>, stage: StageId) -> Option<Checkpoint> {
    let payload = match stage {
        StageId::Analysis => StagePayload::Analysis(run.analysis()?.clone()),
        StageId::Training => StagePayload::Training(run.models()?.keys().copied().collect()),
        StageId::Distances => StagePayload::Distances(run.distances()?.clone()),
        StageId::Lifting => StagePayload::Hierarchy(run.hierarchy()?.clone()),
    };
    Some(Checkpoint { payload, diagnostics: run.diagnostics_snapshot(), coverage: run.coverage() })
}

fn count_severity(recon: &Reconstruction, severity: Severity) -> usize {
    recon.diagnostics.iter().filter(|e| e.severity == severity).count()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_ordered_by_badness() {
        let codes = [
            JobOutcome::Ok.code(),
            JobOutcome::Interrupted(StageId::Analysis).code(),
            JobOutcome::Degraded(Rung::Reduced).code(),
            JobOutcome::Failed("x".into()).code(),
            JobOutcome::DeadlineBlown.code(),
        ];
        assert_eq!(codes, [0, 1, 2, 3, 4]);
        let mut sorted = codes;
        sorted.sort_unstable();
        assert_eq!(sorted, codes, "worse outcomes have larger codes");
        assert_eq!(exit::RESUME_CORRUPT, 5);
    }

    #[test]
    fn resume_corruption_dominates_the_exit_code() {
        let mut report = JobReport {
            name: "j".into(),
            key: 1,
            outcome: JobOutcome::Ok,
            attempts: Vec::new(),
            restored: Vec::new(),
            resume_corrupt: false,
            errors: 0,
            warnings: 0,
            types: 0,
            roots: 0,
            elapsed_ms: 0,
            metrics: None,
            corpus: None,
            store: None,
            store_incidents: Vec::new(),
        };
        assert_eq!(report.exit_code(), exit::OK);
        report.resume_corrupt = true;
        assert_eq!(report.exit_code(), exit::RESUME_CORRUPT);
        report.outcome = JobOutcome::DeadlineBlown;
        assert_eq!(report.exit_code(), exit::RESUME_CORRUPT, "5 > 4");
    }

    #[test]
    fn report_json_is_escaped_and_structured() {
        let report = JobReport {
            name: "a\"b\\c\nd".into(),
            key: 0xAB,
            outcome: JobOutcome::Failed("strict \"quote\"".into()),
            attempts: vec![AttemptRecord {
                rung: Rung::Full,
                backoff_ms: 0,
                result: "strict: boom".into(),
            }],
            restored: vec![StageId::Analysis, StageId::Training],
            resume_corrupt: false,
            errors: 1,
            warnings: 2,
            types: 3,
            roots: 1,
            elapsed_ms: 7,
            metrics: None,
            corpus: None,
            store: None,
            store_incidents: Vec::new(),
        };
        let json = report.to_json();
        assert!(json.contains("\"name\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"key\":\"00000000000000ab\""));
        assert!(json.contains("\"outcome\":\"failed\""));
        assert!(json.contains("\"reason\":\"strict \\\"quote\\\"\""));
        assert!(json.contains("\"exit_code\":3"));
        assert!(json.contains("\"restored\":[\"analysis\",\"training\"]"));
        assert!(json.contains("\"backoff_ms\":0"));
        assert!(!json.contains('\n'), "single-line record");
    }

    #[test]
    fn store_sections_render_only_when_present() {
        let mut report = JobReport {
            name: "j".into(),
            key: 1,
            outcome: JobOutcome::Ok,
            attempts: Vec::new(),
            restored: Vec::new(),
            resume_corrupt: false,
            errors: 0,
            warnings: 0,
            types: 0,
            roots: 0,
            elapsed_ms: 0,
            metrics: None,
            corpus: None,
            store: None,
            store_incidents: Vec::new(),
        };
        let json = report.to_json();
        assert!(!json.contains("\"store\""), "healthy reports stay unchanged: {json}");
        report.store = Some(StoreStats { write_retries: 2, ..Default::default() });
        report.store_incidents.push(StoreIncident::CheckpointLost {
            stage: StageId::Training,
            detail: "disk \"full\"".into(),
        });
        report.store_incidents.push(StoreIncident::ResumeUnavailable { detail: "eio".into() });
        let json = report.to_json();
        assert!(json.contains("\"store\":{\"tmp_swept\":0,\"write_retries\":2"), "{json}");
        assert!(
            json.contains("{\"kind\":\"checkpoint_lost\",\"stage\":\"training\",\"detail\":\"disk \\\"full\\\"\"}"),
            "{json}"
        );
        assert!(json.contains("{\"kind\":\"resume_unavailable\",\"detail\":\"eio\"}"), "{json}");
    }

    #[test]
    fn panic_payloads_render_as_text() {
        let e = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(&*e), "static str");
        let e = catch_unwind(|| panic!("{}", String::from("owned"))).unwrap_err();
        assert_eq!(panic_message(&*e), "owned");
        let e = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(&*e), "opaque panic payload");
    }
}
