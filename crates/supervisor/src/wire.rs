//! A tiny length-prefixed binary codec for checkpoint artifacts and the
//! `rock serve` request/response protocol.
//!
//! The workspace has no serialization dependency, so artifacts are
//! encoded by hand: little-endian fixed-width integers, `f64`s as raw
//! bits (checkpoints must round-trip distances *bit for bit*), strings
//! and sequences length-prefixed with `u64`. Decoding is fully
//! bounds-checked — a truncated or lied-about length yields a
//! [`WireError`], never a panic — because artifact files are untrusted
//! input after a crash, and protocol frames are untrusted input
//! *always*: the serve daemon decodes whatever bytes a client sends.
//!
//! The serve protocol ([`Request`]/[`Response`]) frames one message as
//! `u32 LE body length | body`, where `body = u8 tag | payload`. The
//! framing itself (length prefix, socket IO, oversize policy) lives in
//! `rock-serve`; this module owns the pure, panic-free body codec and
//! the protocol-version constants.

use std::fmt;

use rock_binary::Addr;

/// The serve protocol version this build speaks (sent in
/// [`Request::Hello`]; echoed back, possibly lowered, in
/// [`Response::HelloOk`]).
pub const SERVE_PROTOCOL_VERSION: u16 = 1;

/// The oldest client protocol version the daemon still accepts. A
/// [`Request::Hello`] below this is answered with a
/// [`Response::ProtocolError`] and the connection is closed.
pub const SERVE_MIN_PROTOCOL_VERSION: u16 = 1;

/// A malformed artifact payload (truncated, or a length field lies).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset the decoder had reached.
    pub offset: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed artifact: bad {} at byte {}", self.what, self.offset)
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over a byte slice — the store's content-hash and checksum
/// primitive (stable, dependency-free, endianness-independent).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only encoder.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends an address.
    pub fn addr(&mut self, a: Addr) {
        self.u64(a.value());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn blob(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// A bounds-checked decoder over an artifact payload.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts decoding at the front of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Returns `true` once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                let s = &self.data[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WireError { offset: self.pos, what }),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` length and sanity-checks it against the bytes left
    /// (any element needs at least one byte, so a length beyond the
    /// remaining payload is a lie, not an allocation request).
    pub fn len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let at = self.pos;
        let v = self.u64(what)?;
        if v > self.data.len() as u64 {
            return Err(WireError { offset: at, what });
        }
        Ok(v as usize)
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self, what: &'static str) -> Result<i32, WireError> {
        let b = self.take(4, what)?;
        Ok(i32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64_bits(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads an address.
    pub fn addr(&mut self, what: &'static str) -> Result<Addr, WireError> {
        Ok(Addr::new(self.u64(what)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.len(what)?;
        let at = self.pos;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError { offset: at, what })
    }

    /// Reads a length-prefixed byte blob.
    pub fn blob(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let n = self.len(what)?;
        Ok(self.take(n, what)?.to_vec())
    }
}

// --- Serve protocol frames --------------------------------------------

/// Why the daemon refused to admit a request. The taxonomy is part of
/// the protocol: clients dispatch on it (back off on `QueueFull`/
/// `QuotaExceeded`, fail over on `Draining`, never retry `TooLarge`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is at capacity — explicit load
    /// shedding instead of unbounded buffering.
    QueueFull,
    /// The client is over its token-bucket rate or max-inflight limit.
    QuotaExceeded,
    /// The daemon is draining: in-flight work finishes, nothing new is
    /// admitted.
    Draining,
    /// The submitted image (or frame) exceeds the daemon's size cap.
    TooLarge,
}

impl RejectReason {
    /// Every reason, in tag order.
    pub const ALL: [RejectReason; 4] = [
        RejectReason::QueueFull,
        RejectReason::QuotaExceeded,
        RejectReason::Draining,
        RejectReason::TooLarge,
    ];

    /// Stable lowercase name (reports, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::QuotaExceeded => "quota_exceeded",
            RejectReason::Draining => "draining",
            RejectReason::TooLarge => "too_large",
        }
    }

    fn tag(self) -> u8 {
        match self {
            RejectReason::QueueFull => 0,
            RejectReason::QuotaExceeded => 1,
            RejectReason::Draining => 2,
            RejectReason::TooLarge => 3,
        }
    }

    fn from_tag(tag: u8, at: usize) -> Result<Self, WireError> {
        RejectReason::ALL
            .get(tag as usize)
            .copied()
            .ok_or(WireError { offset: at, what: "reject reason" })
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a submitted job currently stands, as reported by
/// [`Response::JobStatus`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// The daemon has no record of this job id.
    Unknown,
    /// Admitted, waiting for a worker; `position` is 0-based.
    Queued {
        /// Jobs ahead of this one in the admission queue.
        position: u64,
    },
    /// A worker is executing the job.
    Running,
    /// The job finished (any outcome — the typed exit code tells how).
    Done {
        /// The job's typed exit code (`rock_supervisor::exit`).
        exit_code: u8,
        /// The outcome name (`ok`, `degraded`, `failed`, ...).
        outcome: String,
        /// Content fingerprint of the emitted result (hierarchy edges,
        /// distance bits, pins, coverage) — lets a client prove two
        /// runs were bit-identical without shipping the artifacts.
        result_fp: u64,
        /// The per-job JSON report, verbatim.
        report_json: String,
    },
    /// The job was cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Unknown => "unknown",
            JobState::Queued { .. } => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Cancelled => "cancelled",
        }
    }

    fn encode(&self, w: &mut Writer) {
        match self {
            JobState::Unknown => w.u8(0),
            JobState::Queued { position } => {
                w.u8(1);
                w.u64(*position);
            }
            JobState::Running => w.u8(2),
            JobState::Done { exit_code, outcome, result_fp, report_json } => {
                w.u8(3);
                w.u8(*exit_code);
                w.string(outcome);
                w.u64(*result_fp);
                w.string(report_json);
            }
            JobState::Cancelled => w.u8(4),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.pos;
        match r.u8("job state tag")? {
            0 => Ok(JobState::Unknown),
            1 => Ok(JobState::Queued { position: r.u64("queue position")? }),
            2 => Ok(JobState::Running),
            3 => Ok(JobState::Done {
                exit_code: r.u8("exit code")?,
                outcome: r.string("outcome")?,
                result_fp: r.u64("result fp")?,
                report_json: r.string("report json")?,
            }),
            4 => Ok(JobState::Cancelled),
            _ => Err(WireError { offset: at, what: "job state tag" }),
        }
    }
}

/// A client → daemon frame body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// The mandatory first frame on every connection: announces the
    /// client's protocol version and identity. Quotas are keyed by
    /// `client`, across all of that identity's connections.
    Hello {
        /// Highest protocol version the client speaks.
        version: u16,
        /// Client identity (quota key).
        client: String,
    },
    /// Submit one image for reconstruction.
    Submit {
        /// Job name (labels the report).
        name: String,
        /// Per-request watchdog deadline in ms; 0 uses the daemon's
        /// configured default.
        deadline_ms: u64,
        /// The serialized binary image.
        image: Vec<u8>,
    },
    /// Poll one job's state.
    Status {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Cancel a job. Best effort: only a still-queued job can be
    /// cancelled; the reply is the job's state after the attempt.
    Cancel {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Ask the daemon to drain: stop admission, finish in-flight and
    /// queued jobs, then exit.
    Drain,
}

impl Request {
    /// Encodes the frame *body* (tag + payload, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Hello { version, client } => {
                w.u8(1);
                w.u16(*version);
                w.string(client);
            }
            Request::Submit { name, deadline_ms, image } => {
                w.u8(2);
                w.string(name);
                w.u64(*deadline_ms);
                w.blob(image);
            }
            Request::Status { job } => {
                w.u8(3);
                w.u64(*job);
            }
            Request::Cancel { job } => {
                w.u8(4);
                w.u64(*job);
            }
            Request::Drain => w.u8(5),
        }
        w.into_bytes()
    }

    /// Decodes one frame body. Fully bounds-checked: truncation, lying
    /// lengths, unknown tags, and trailing garbage are all
    /// [`WireError`]s, never panics.
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(body);
        let at = r.pos;
        let req = match r.u8("request tag")? {
            1 => Request::Hello { version: r.u16("version")?, client: r.string("client")? },
            2 => Request::Submit {
                name: r.string("job name")?,
                deadline_ms: r.u64("deadline")?,
                image: r.blob("image")?,
            },
            3 => Request::Status { job: r.u64("job id")? },
            4 => Request::Cancel { job: r.u64("job id")? },
            5 => Request::Drain,
            _ => return Err(WireError { offset: at, what: "request tag" }),
        };
        if !r.is_at_end() {
            return Err(WireError { offset: r.pos, what: "trailing bytes" });
        }
        Ok(req)
    }
}

/// A daemon → client frame body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Hello accepted; `version` is the negotiated protocol version
    /// (`min(client, daemon)`).
    HelloOk {
        /// The version both ends will speak.
        version: u16,
    },
    /// The submission was admitted under this job id.
    Accepted {
        /// Daemon-unique job id.
        job: u64,
    },
    /// The submission was shed with a typed reason.
    Rejected {
        /// Why admission refused the request.
        reason: RejectReason,
        /// Human-readable detail (limits, current depth, ...).
        detail: String,
    },
    /// Reply to [`Request::Status`] and [`Request::Cancel`].
    JobStatus {
        /// The queried job id.
        job: u64,
        /// Its current state.
        state: JobState,
    },
    /// Drain acknowledged; the counts are a snapshot at acknowledgment.
    DrainStarted {
        /// Jobs still waiting in the queue.
        queued: u64,
        /// Jobs currently executing.
        running: u64,
    },
    /// The peer broke the protocol (bad version, malformed frame,
    /// missing Hello). The connection closes after this frame.
    ProtocolError {
        /// What was wrong.
        message: String,
    },
}

impl Response {
    /// Encodes the frame *body* (tag + payload, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::HelloOk { version } => {
                w.u8(128);
                w.u16(*version);
            }
            Response::Accepted { job } => {
                w.u8(129);
                w.u64(*job);
            }
            Response::Rejected { reason, detail } => {
                w.u8(130);
                w.u8(reason.tag());
                w.string(detail);
            }
            Response::JobStatus { job, state } => {
                w.u8(131);
                w.u64(*job);
                state.encode(&mut w);
            }
            Response::DrainStarted { queued, running } => {
                w.u8(132);
                w.u64(*queued);
                w.u64(*running);
            }
            Response::ProtocolError { message } => {
                w.u8(133);
                w.string(message);
            }
        }
        w.into_bytes()
    }

    /// Decodes one frame body (same guarantees as [`Request::decode`]).
    pub fn decode(body: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(body);
        let at = r.pos;
        let resp = match r.u8("response tag")? {
            128 => Response::HelloOk { version: r.u16("version")? },
            129 => Response::Accepted { job: r.u64("job id")? },
            130 => {
                let at = r.pos;
                let tag = r.u8("reject reason")?;
                Response::Rejected {
                    reason: RejectReason::from_tag(tag, at)?,
                    detail: r.string("reject detail")?,
                }
            }
            131 => Response::JobStatus { job: r.u64("job id")?, state: JobState::decode(&mut r)? },
            132 => Response::DrainStarted {
                queued: r.u64("queued count")?,
                running: r.u64("running count")?,
            },
            133 => Response::ProtocolError { message: r.string("error message")? },
            _ => return Err(WireError { offset: at, what: "response tag" }),
        };
        if !r.is_at_end() {
            return Err(WireError { offset: r.pos, what: "trailing bytes" });
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i32(-42);
        w.f64_bits(-0.0);
        w.addr(Addr::new(0x4000));
        w.string("héllo");
        w.len(3);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.i32("d").unwrap(), -42);
        assert_eq!(r.f64_bits("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.addr("f").unwrap(), Addr::new(0x4000));
        assert_eq!(r.string("g").unwrap(), "héllo");
        assert_eq!(r.len("h").unwrap(), 3);
        assert!(r.is_at_end());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(123);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        let err = r.u64("x").unwrap_err();
        assert_eq!(err.what, "x");
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn lying_length_fields_are_rejected() {
        let mut w = Writer::new();
        w.len(1 << 40); // absurd element count over an 8-byte payload
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.len("count").is_err(), "length beyond payload must fail");
        // A string length that lies about remaining bytes also fails.
        let mut w = Writer::new();
        w.len(6);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(b"abc"); // promises 6, delivers 3
        let mut r = Reader::new(&bytes);
        assert!(r.string("s").is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut w = Writer::new();
        w.len(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&bytes).string("s").is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"rock"), fnv1a(b"rock"));
    }

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Hello { version: SERVE_PROTOCOL_VERSION, client: "tenant-a".into() },
            Request::Submit { name: "job".into(), deadline_ms: 0, image: vec![1, 2, 3, 0xFF] },
            Request::Submit { name: String::new(), deadline_ms: u64::MAX, image: Vec::new() },
            Request::Status { job: 42 },
            Request::Cancel { job: u64::MAX },
            Request::Drain,
        ]
    }

    fn all_responses() -> Vec<Response> {
        let mut out = vec![
            Response::HelloOk { version: SERVE_PROTOCOL_VERSION },
            Response::Accepted { job: 7 },
            Response::JobStatus { job: 1, state: JobState::Unknown },
            Response::JobStatus { job: 2, state: JobState::Queued { position: 3 } },
            Response::JobStatus { job: 3, state: JobState::Running },
            Response::JobStatus {
                job: 4,
                state: JobState::Done {
                    exit_code: 2,
                    outcome: "degraded".into(),
                    result_fp: 0xDEAD_BEEF_CAFE_F00D,
                    report_json: "{\"job\":\"x\"}".into(),
                },
            },
            Response::JobStatus { job: 5, state: JobState::Cancelled },
            Response::DrainStarted { queued: 9, running: 4 },
            Response::ProtocolError { message: "bad tag".into() },
        ];
        for reason in RejectReason::ALL {
            out.push(Response::Rejected { reason, detail: format!("shed: {reason}") });
        }
        out
    }

    #[test]
    fn serve_requests_roundtrip() {
        for req in all_requests() {
            let body = req.encode();
            assert_eq!(Request::decode(&body).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn serve_responses_roundtrip() {
        for resp in all_responses() {
            let body = resp.encode();
            assert_eq!(Response::decode(&body).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn serve_frames_reject_unknown_tags_and_trailing_bytes() {
        assert!(Request::decode(&[]).is_err(), "empty body");
        assert!(Request::decode(&[0]).is_err(), "tag 0 is reserved");
        assert!(Request::decode(&[200]).is_err(), "response-range tag in a request");
        assert!(Response::decode(&[1]).is_err(), "request-range tag in a response");
        assert!(Response::decode(&[255]).is_err(), "unknown response tag");
        let mut body = Request::Drain.encode();
        body.push(0);
        let err = Request::decode(&body).unwrap_err();
        assert_eq!(err.what, "trailing bytes");
        let mut body = Response::Accepted { job: 1 }.encode();
        body.push(9);
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn serve_frames_reject_truncation_everywhere() {
        // Every prefix of every valid frame must decode to a typed
        // error, never panic, never succeed.
        for req in all_requests() {
            let body = req.encode();
            for cut in 0..body.len() {
                assert!(Request::decode(&body[..cut]).is_err(), "{req:?} cut at {cut}");
            }
        }
        for resp in all_responses() {
            let body = resp.encode();
            for cut in 0..body.len() {
                assert!(Response::decode(&body[..cut]).is_err(), "{resp:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn reject_reasons_have_stable_names_and_tags() {
        let names: Vec<&str> = RejectReason::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names, ["queue_full", "quota_exceeded", "draining", "too_large"]);
        for (i, reason) in RejectReason::ALL.into_iter().enumerate() {
            assert_eq!(reason.tag() as usize, i);
            assert_eq!(RejectReason::from_tag(reason.tag(), 0).unwrap(), reason);
        }
        assert!(RejectReason::from_tag(4, 0).is_err());
    }
}
