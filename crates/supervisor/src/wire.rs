//! A tiny length-prefixed binary codec for checkpoint artifacts.
//!
//! The workspace has no serialization dependency, so artifacts are
//! encoded by hand: little-endian fixed-width integers, `f64`s as raw
//! bits (checkpoints must round-trip distances *bit for bit*), strings
//! and sequences length-prefixed with `u64`. Decoding is fully
//! bounds-checked — a truncated or lied-about length yields a
//! [`WireError`], never a panic — because artifact files are untrusted
//! input after a crash.

use std::fmt;

use rock_binary::Addr;

/// A malformed artifact payload (truncated, or a length field lies).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset the decoder had reached.
    pub offset: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed artifact: bad {} at byte {}", self.what, self.offset)
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over a byte slice — the store's content-hash and checksum
/// primitive (stable, dependency-free, endianness-independent).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only encoder.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends an address.
    pub fn addr(&mut self, a: Addr) {
        self.u64(a.value());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked decoder over an artifact payload.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts decoding at the front of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Returns `true` once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                let s = &self.data[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WireError { offset: self.pos, what }),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` length and sanity-checks it against the bytes left
    /// (any element needs at least one byte, so a length beyond the
    /// remaining payload is a lie, not an allocation request).
    pub fn len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let at = self.pos;
        let v = self.u64(what)?;
        if v > self.data.len() as u64 {
            return Err(WireError { offset: at, what });
        }
        Ok(v as usize)
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self, what: &'static str) -> Result<i32, WireError> {
        let b = self.take(4, what)?;
        Ok(i32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64_bits(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads an address.
    pub fn addr(&mut self, what: &'static str) -> Result<Addr, WireError> {
        Ok(Addr::new(self.u64(what)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.len(what)?;
        let at = self.pos;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError { offset: at, what })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i32(-42);
        w.f64_bits(-0.0);
        w.addr(Addr::new(0x4000));
        w.string("héllo");
        w.len(3);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.i32("d").unwrap(), -42);
        assert_eq!(r.f64_bits("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.addr("f").unwrap(), Addr::new(0x4000));
        assert_eq!(r.string("g").unwrap(), "héllo");
        assert_eq!(r.len("h").unwrap(), 3);
        assert!(r.is_at_end());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(123);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        let err = r.u64("x").unwrap_err();
        assert_eq!(err.what, "x");
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn lying_length_fields_are_rejected() {
        let mut w = Writer::new();
        w.len(1 << 40); // absurd element count over an 8-byte payload
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.len("count").is_err(), "length beyond payload must fail");
        // A string length that lies about remaining bytes also fails.
        let mut w = Writer::new();
        w.len(6);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(b"abc"); // promises 6, delivers 3
        let mut r = Reader::new(&bytes);
        assert!(r.string("s").is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut w = Writer::new();
        w.len(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&bytes).string("s").is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"rock"), fnv1a(b"rock"));
    }
}
