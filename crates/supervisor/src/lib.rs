//! Supervised batch runtime for Rock reconstructions.
//!
//! `rock-core` makes a *single* reconstruction resilient (contained
//! faults, typed diagnostics, a staged pipeline). This crate makes a
//! *fleet* of reconstructions operable:
//!
//! * [`artifact`] — a versioned on-disk store of per-stage checkpoints,
//!   keyed by a content hash of the image bytes + config fingerprint.
//!   An interrupted job resumes from its last completed stage, and the
//!   resumed output is bit-identical to an uninterrupted run (enforced
//!   by the integration property tests in `tests/batch_resume.rs`).
//! * [`ladder`] — the deterministic degradation ladder: full pipeline →
//!   reduced analysis budgets → structural-only hierarchy. The bottom
//!   rung cannot fail for a loadable image, so a supervised job never
//!   returns empty-handed.
//! * [`incr`] — fine-grained incremental persistence: the corpus
//!   cache's function-, type-, pair- and family-level sub-artifacts
//!   (tracelets, SLMs, distances, liftings) are checkpointed under
//!   `<root>/sub/<tier>/` keyed by position-independent content labels,
//!   so a patched image reuses everything its edit did not touch.
//! * [`job`] — the [`job::Supervisor`] itself: watchdog deadlines
//!   checked at stage boundaries, retries on the
//!   [`rock_budget::RetryPolicy`] backoff schedule (recorded, and only
//!   slept on request, so tests stay clock-free), per-job JSON reports,
//!   and typed exit codes ([`job::exit`]).
//! * [`wire`] — the hand-rolled, fully bounds-checked binary codec the
//!   artifacts are framed in.
//! * [`vfs`] — the narrow storage trait the store runs on ([`StdVfs`]
//!   in production), with the durability (fsync) commit mode.
//! * [`chaos`] — seeded, clock-free storage fault injection
//!   ([`FaultyVfs`] driven by a [`ChaosPlan`]): torn writes, ENOSPC,
//!   transient EIO, rename failures, partial reads, crash-shaped stale
//!   tmp files.
//!
//! The CLI's `rock batch` subcommand is a thin shell around
//! [`job::Supervisor::run_batch`]; `rock store scrub` is a thin shell
//! around [`artifact::ArtifactStore::scrub`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod chaos;
pub mod incr;
pub mod job;
pub mod ladder;
pub mod vfs;
pub mod wire;

pub use artifact::{
    config_fingerprint, content_key, ArtifactStore, Checkpoint, ScrubReport, StagePayload,
    StoreError, QUARANTINE_DIR, SUB_DIR,
};
pub use chaos::{ChaosDirective, ChaosFlavor, ChaosOp, ChaosPlan, FaultyVfs};
pub use incr::{
    decode_snapshot, encode_snapshot, flush_subartifacts, preload_subartifacts, SNAPSHOT_NAME,
};
pub use job::{
    exit, AttemptRecord, BatchResult, JobOutcome, JobOutput, JobReport, JobResult, StoreIncident,
    Supervisor, SupervisorOptions,
};
pub use ladder::{structural_only_hierarchy, Rung};
pub use vfs::{is_transient, StdVfs, Vfs};
