//! Supervised batch runtime for Rock reconstructions.
//!
//! `rock-core` makes a *single* reconstruction resilient (contained
//! faults, typed diagnostics, a staged pipeline). This crate makes a
//! *fleet* of reconstructions operable:
//!
//! * [`artifact`] — a versioned on-disk store of per-stage checkpoints,
//!   keyed by a content hash of the image bytes + config fingerprint.
//!   An interrupted job resumes from its last completed stage, and the
//!   resumed output is bit-identical to an uninterrupted run (enforced
//!   by the integration property tests in `tests/batch_resume.rs`).
//! * [`ladder`] — the deterministic degradation ladder: full pipeline →
//!   reduced analysis budgets → structural-only hierarchy. The bottom
//!   rung cannot fail for a loadable image, so a supervised job never
//!   returns empty-handed.
//! * [`job`] — the [`job::Supervisor`] itself: watchdog deadlines
//!   checked at stage boundaries, retries on the
//!   [`rock_budget::RetryPolicy`] backoff schedule (recorded, and only
//!   slept on request, so tests stay clock-free), per-job JSON reports,
//!   and typed exit codes ([`job::exit`]).
//! * [`wire`] — the hand-rolled, fully bounds-checked binary codec the
//!   artifacts are framed in.
//!
//! The CLI's `rock batch` subcommand is a thin shell around
//! [`job::Supervisor::run_batch`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod job;
pub mod ladder;
pub mod wire;

pub use artifact::{content_key, ArtifactStore, Checkpoint, StagePayload, StoreError};
pub use job::{
    exit, AttemptRecord, BatchResult, JobOutcome, JobOutput, JobReport, JobResult, Supervisor,
    SupervisorOptions,
};
pub use ladder::{structural_only_hierarchy, Rung};
