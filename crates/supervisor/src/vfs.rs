//! Storage abstraction under the artifact store.
//!
//! [`Vfs`] is the narrow filesystem surface [`crate::ArtifactStore`]
//! actually uses: whole-file read/write, rename-commit, directory
//! listing, removal, and explicit durability syncs. Production runs use
//! [`StdVfs`] (plain `std::fs`); chaos tests swap in
//! [`crate::chaos::FaultyVfs`] to make the disk lie on purpose; the
//! same seam is what later lets the daemon swap storage backends (and
//! the WASM build stub the filesystem out entirely, per ROADMAP).
//!
//! Error discipline: implementations return plain [`io::Error`]s.
//! Callers classify them with [`is_transient`] — transient faults are
//! worth a bounded retry, anything else (ENOSPC, permission, corruption
//! upstream) is persistent and must degrade gracefully instead.

use std::fmt::Debug;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The filesystem surface the artifact store runs on.
///
/// Implementations must be thread-safe: one `Arc<dyn Vfs>` is shared by
/// every store clone across the batch driver and the serve worker pool.
pub trait Vfs: Send + Sync + Debug {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes `data` to `path`, creating or truncating it.
    ///
    /// Not atomic — commit protocol is write-to-tmp then [`Vfs::rename`].
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (the commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Removes `path` and everything under it.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries directly under `dir`, as full paths, sorted by
    /// name so every traversal is deterministic.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// `true` if `path` names a directory (false for missing paths).
    fn is_dir(&self, path: &Path) -> bool;

    /// Flushes the file at `path` to stable storage (fsync).
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Flushes the directory at `dir` to stable storage, making a
    /// preceding rename survive power loss.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: plain `std::fs` against the real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

impl StdVfs {
    /// A shareable handle, ready to hand to [`crate::ArtifactStore`].
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        entries.sort();
        Ok(entries)
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // On unix a directory opens read-only like any file and
        // sync_all is the directory fsync that commits a rename.
        fs::File::open(dir)?.sync_all()
    }
}

/// `true` for faults worth a bounded retry: the kernel (or an injected
/// chaos plan) says "try again", not "this disk is broken".
///
/// Everything else — ENOSPC, permission, unexpected EOF, corruption —
/// is persistent: retries would spin, so callers degrade instead.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rock-vfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips_and_lists_sorted() {
        let dir = tmpdir("roundtrip");
        let vfs = StdVfs;
        vfs.write(&dir.join("b.txt"), b"bee").unwrap();
        vfs.write(&dir.join("a.txt"), b"ay").unwrap();
        assert_eq!(vfs.read(&dir.join("b.txt")).unwrap(), b"bee");
        let names: Vec<String> = vfs
            .list(&dir)
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.txt", "b.txt"]);
        vfs.rename(&dir.join("a.txt"), &dir.join("c.txt")).unwrap();
        assert!(vfs.read(&dir.join("a.txt")).is_err());
        assert_eq!(vfs.read(&dir.join("c.txt")).unwrap(), b"ay");
        vfs.remove_file(&dir.join("c.txt")).unwrap();
        assert!(vfs.is_dir(&dir));
        assert!(!vfs.is_dir(&dir.join("b.txt")));
        vfs.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn std_vfs_syncs_files_and_directories() {
        let dir = tmpdir("sync");
        let vfs = StdVfs;
        let file = dir.join("x.bin");
        vfs.write(&file, &[1, 2, 3]).unwrap();
        vfs.sync_file(&file).unwrap();
        vfs.sync_dir(&dir).unwrap();
        // Syncing a missing file reports the error instead of lying.
        assert!(vfs.sync_file(&dir.join("missing")).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_classification() {
        for kind in [io::ErrorKind::Interrupted, io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut]
        {
            assert!(is_transient(&io::Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [
            io::ErrorKind::StorageFull,
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::Other,
        ] {
            assert!(!is_transient(&io::Error::new(kind, "x")), "{kind:?}");
        }
    }
}
