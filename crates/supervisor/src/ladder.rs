//! The deterministic degradation ladder.
//!
//! A supervised job that keeps faulting is not retried forever at full
//! strength — each retry walks one rung down a fixed ladder, trading
//! reconstruction quality for the certainty of *an* answer:
//!
//! 1. [`Rung::Full`] — the configured pipeline, untouched.
//! 2. [`Rung::Reduced`] — the same pipeline under
//!    [`AnalysisConfig::fast`] budgets (shorter tracelets, fewer paths,
//!    capped fuel) with repartitioning off; this is the paper's §3.2
//!    scalability lever ("extract fewer and/or shorter tracelets")
//!    applied as a fault-recovery policy.
//! 3. [`Rung::StructuralOnly`] — no behavioral analysis at all: the
//!    hierarchy is read straight off the structural constraints (pinned
//!    parents, then uniquely-determined candidates, everything else a
//!    root). This rung cannot meaningfully fail for a loadable image,
//!    which is what lets the supervisor promise a non-empty result even
//!    after the retry budget is gone.
//!
//! Each rung has its own [`crate::artifact::content_key`] (the config
//! fingerprint differs), so checkpoints from different rungs never mix.

use std::fmt;

use rock_analysis::{recognize_ctors, AnalysisConfig};
use rock_binary::Addr;
use rock_core::RockConfig;
use rock_graph::Forest;
use rock_loader::LoadedBinary;
use rock_structural::{analyze, Structural};

/// One rung of the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// The configured pipeline, at full budgets.
    Full,
    /// The pipeline under reduced (fast) analysis budgets.
    Reduced,
    /// Structural constraints only; no behavioral analysis.
    StructuralOnly,
}

impl Rung {
    /// The ladder, best rung first.
    pub const LADDER: [Rung; 3] = [Rung::Full, Rung::Reduced, Rung::StructuralOnly];

    /// Stable lowercase name (reports).
    pub fn name(self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::Reduced => "reduced",
            Rung::StructuralOnly => "structural-only",
        }
    }

    /// The next rung down, if any.
    pub fn next(self) -> Option<Rung> {
        match self {
            Rung::Full => Some(Rung::Reduced),
            Rung::Reduced => Some(Rung::StructuralOnly),
            Rung::StructuralOnly => None,
        }
    }

    /// The pipeline config this rung runs under (meaningless for
    /// [`Rung::StructuralOnly`], which bypasses the pipeline).
    pub fn apply(self, base: &RockConfig) -> RockConfig {
        match self {
            Rung::Full | Rung::StructuralOnly => *base,
            Rung::Reduced => {
                let mut c = *base;
                c.analysis = AnalysisConfig::fast();
                c.repartition_families = false;
                c
            }
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The bottom-rung reconstruction: a hierarchy read directly off the
/// structural analysis, with no SLMs involved.
///
/// Per type: the pinned parent if constructor evidence fixed one
/// (rule 3), else the unique surviving candidate if elimination left
/// exactly one in-family choice, else a root. A parent that would close
/// a cycle under the choices made so far is dropped (the type stays a
/// root), so the result is always a valid forest.
pub fn structural_only_hierarchy(
    loaded: &LoadedBinary,
    config: &AnalysisConfig,
) -> (Forest<Addr>, Structural) {
    let ctors = recognize_ctors(loaded, config);
    let structural = analyze(loaded, &ctors, config);
    let mut forest: Forest<Addr> = Forest::new();
    for family in structural.families() {
        for &vt in family {
            forest.insert(vt, None);
        }
    }
    for family in structural.families() {
        for &vt in family {
            let pinned = structural.pinned().get(&vt).copied();
            let choice = pinned.or_else(|| {
                let in_family: Vec<Addr> = structural
                    .possible_parents()
                    .of(vt)
                    .into_iter()
                    .filter(|p| *p != vt && family.contains(p))
                    .collect();
                match in_family.as_slice() {
                    [only] => Some(*only),
                    _ => None,
                }
            });
            if let Some(parent) = choice {
                if parent != vt && !is_ancestor(&forest, vt, parent) {
                    forest.insert(vt, Some(parent));
                }
            }
        }
    }
    (forest, structural)
}

/// Returns `true` if `node` is an ancestor of (or equal to) `of` under
/// the forest's current parent assignment.
fn is_ancestor(forest: &Forest<Addr>, node: Addr, of: Addr) -> bool {
    let mut cur = Some(of);
    let mut hops = 0usize;
    while let Some(c) = cur {
        if c == node {
            return true;
        }
        // Parent chains are acyclic by construction; the hop cap is a
        // belt-and-braces bound against a corrupted forest.
        hops += 1;
        if hops > forest.len() {
            return true;
        }
        cur = forest.parent_of(&c).copied();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_minicpp::{compile, CompileOptions, ProgramBuilder};

    fn chain_sample() -> LoadedBinary {
        let mut p = ProgramBuilder::new();
        p.class("A").method("m0", |b| {
            b.ret();
        });
        p.class("B").base("A").method("m1", |b| {
            b.ret();
        });
        p.class("C").base("B").method("m2", |b| {
            b.ret();
        });
        p.func("drive", |f| {
            f.new_obj("c", "C");
            f.vcall("c", "m0", vec![]);
            f.ret();
        });
        let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
        LoadedBinary::load(compiled.stripped_image()).unwrap()
    }

    #[test]
    fn ladder_shape() {
        assert_eq!(Rung::LADDER, [Rung::Full, Rung::Reduced, Rung::StructuralOnly]);
        assert_eq!(Rung::Full.next(), Some(Rung::Reduced));
        assert_eq!(Rung::StructuralOnly.next(), None);
        assert_eq!(Rung::Reduced.to_string(), "reduced");
    }

    #[test]
    fn reduced_rung_shrinks_budgets_but_keeps_the_rest() {
        let base = RockConfig::paper();
        let full = Rung::Full.apply(&base);
        assert_eq!(full.analysis.tracelet_len, base.analysis.tracelet_len);
        let reduced = Rung::Reduced.apply(&base);
        assert_eq!(reduced.analysis, AnalysisConfig::fast());
        assert!(!reduced.repartition_families);
        assert_eq!(reduced.metric, base.metric);
        assert_eq!(reduced.strict, base.strict);
    }

    #[test]
    fn structural_only_covers_every_family_member_acyclically() {
        let loaded = chain_sample();
        let (forest, structural) = structural_only_hierarchy(&loaded, &AnalysisConfig::default());
        let family_members: usize = structural.families().iter().map(Vec::len).sum();
        assert_eq!(forest.len(), family_members, "every type appears");
        assert!(forest.len() >= 3, "A, B, C are all typed");
        assert!(forest.is_acyclic());
        // Debug-build ctor pins fix the chain exactly.
        let parented = forest.nodes().filter(|n| forest.parent_of(n).is_some()).count();
        assert_eq!(parented, 2, "B under A, C under B");
    }

    #[test]
    fn cycle_closing_choices_degrade_to_roots() {
        // Two mutually-pinned nodes can only happen with corrupted
        // structural facts, but the forest must stay a forest anyway.
        let mut forest: Forest<Addr> = Forest::new();
        forest.insert(Addr::new(1), None);
        forest.insert(Addr::new(2), Some(Addr::new(1)));
        assert!(is_ancestor(&forest, Addr::new(1), Addr::new(2)));
        assert!(!is_ancestor(&forest, Addr::new(2), Addr::new(1)));
    }
}
