//! A thread-safe memo table for pairwise model distances.
//!
//! The lifting step of the pipeline is quadratic per family: one SLM per
//! vtable, then a divergence for every surviving parent/child pair
//! (§4.2). The same pair is re-queried by family repartitioning, by
//! `k_most_likely_parents` (§6.4 CFI), and by ablation sweeps that re-run
//! the pipeline with different knobs over the *same* binary. The cache
//! keys each computed distance by `(metric, from, to)` so every pair is
//! computed exactly once per binary, however many passes ask for it.
//!
//! Beneath the distance memo sits a second, cheaper layer: the pair's
//! **union alphabet size** is memoized per *unordered* `(from, to)` key,
//! so the two directions of a pair and every metric of an ablation sweep
//! merge the alphabets once. (The per-model word-evaluation tables — the
//! self-side of each divergence — are cached one layer further down, on
//! the models themselves; see `Slm::eval_table`.)
//!
//! Keys identify models by the caller-chosen `K`. The pipeline keys by
//! **content hash** ([`ModelKey`]: a 128-bit fingerprint of the model's
//! training multiset), so equal keys imply bit-equal models and a cache
//! — or the corpus-wide store behind it — can safely span binaries: two
//! images containing the same type reuse one distance computation. (The
//! pre-corpus design keyed by per-binary vtable address; that key path
//! is gone, content hash is the only pipeline key now.)
//!
//! [`DistanceCache::distance_via`] layers an optional
//! [`GlobalDistanceStore`] under the local memo: a local miss consults
//! the global store before computing, and a computed value is published
//! back. The local hit/miss counters deliberately count a global-store
//! answer as a *miss* (it was not answered locally), which keeps a run's
//! metrics byte-identical whether the global store is cold or warm.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{union_alphabet_len, Metric, Slm, Symbol};

const SHARDS: usize = 16;

/// The pipeline's cache key: a 128-bit content hash of a model's
/// training input (depth + tracelet multiset). Equal keys imply
/// bit-equal trained models, which is what makes sharing distances
/// across runs — and across *binaries* — sound.
pub type ModelKey = u128;

/// A second-level distance store consulted on local misses — typically a
/// corpus-wide cross-binary cache. Implementations must be `Sync`; both
/// methods may be called concurrently from distance workers.
pub trait GlobalDistanceStore<K>: Sync {
    /// Looks up a previously published distance.
    fn load_distance(&self, metric: Metric, from: &K, to: &K) -> Option<f64>;
    /// Publishes a freshly computed distance.
    fn store_distance(&self, metric: Metric, from: &K, to: &K, d: f64);
}

/// One lock-protected slice of the key space.
type Shard<K> = Mutex<BTreeMap<(Metric, K, K), f64>>;

/// One lock-protected slice of the union-alphabet memo (unordered pairs).
type AlphabetShard<K> = Mutex<BTreeMap<(K, K), usize>>;

/// A sharded, thread-safe `(metric, from, to) -> distance` memo table.
///
/// # Example
///
/// ```
/// use rock_slm::{DistanceCache, Metric, Slm};
/// let mut a = Slm::new(2);
/// a.train(&["x", "y"]);
/// let mut b = Slm::new(2);
/// b.train(&["y", "z"]);
/// let cache: DistanceCache<&str> = DistanceCache::new();
/// let first = cache.distance(Metric::KlDivergence, (&"a", &a), (&"b", &b));
/// let again = cache.distance(Metric::KlDivergence, (&"a", &a), (&"b", &b));
/// assert_eq!(first, again);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DistanceCache<K: Ord + Clone + Hash> {
    shards: [Shard<K>; SHARDS],
    alphabet_shards: [AlphabetShard<K>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Ord + Clone + Hash> DistanceCache<K> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DistanceCache {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            alphabet_shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(key: &(Metric, K, K)) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % SHARDS as u64) as usize
    }

    fn pair_shard(key: &(K, K)) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % SHARDS as u64) as usize
    }

    /// The pair's union alphabet size, merged at most once per unordered
    /// `(from, to)` key — shared by both directions and all metrics.
    fn union_len<S: Symbol>(&self, from: (&K, &Slm<S>), to: (&K, &Slm<S>)) -> usize {
        let key = if from.0 <= to.0 {
            (from.0.clone(), to.0.clone())
        } else {
            (to.0.clone(), from.0.clone())
        };
        let shard = &self.alphabet_shards[Self::pair_shard(&key)];
        if let Some(n) = shard.lock().expect("alphabet shard poisoned").get(&key) {
            return *n;
        }
        let n = union_alphabet_len(from.1, to.1);
        shard.lock().expect("alphabet shard poisoned").insert(key, n);
        n
    }

    /// Returns `metric.distance(from_model, to_model)`, computing it at
    /// most once per `(metric, from, to)` key. The pair's union alphabet
    /// size is resolved through the per-pair memo, so an ablation sweep
    /// asking for every [`Metric`] of the same pair merges the two
    /// alphabets exactly once.
    pub fn distance<S: Symbol>(
        &self,
        metric: Metric,
        from: (&K, &Slm<S>),
        to: (&K, &Slm<S>),
    ) -> f64 {
        self.distance_via(metric, from, to, None)
    }

    /// Like [`DistanceCache::distance`], but consults `global` between
    /// the local memo and the computation: a local miss first asks the
    /// global store, and a freshly computed value is published back to
    /// it. A global answer still counts as a local **miss**, so a run's
    /// hit/miss counters do not depend on the global store's warmth —
    /// only its wall clock does.
    pub fn distance_via<S: Symbol>(
        &self,
        metric: Metric,
        from: (&K, &Slm<S>),
        to: (&K, &Slm<S>),
        global: Option<&dyn GlobalDistanceStore<K>>,
    ) -> f64 {
        let key = (metric, from.0.clone(), to.0.clone());
        let shard = &self.shards[Self::shard_of(&key)];
        if let Some(d) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *d;
        }
        if let Some(g) = global {
            if let Some(d) = g.load_distance(metric, from.0, to.0) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                shard.lock().expect("cache shard poisoned").entry(key).or_insert(d);
                return d;
            }
        }
        // Compute outside the lock: divergences are expensive and pairs
        // are unique within one pass, so duplicated work is negligible.
        let n = self.union_len(from, to);
        let d = metric.distance_with_alphabet(from.1, to.1, n);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.lock().expect("cache shard poisoned").entry(key).or_insert(d);
        if let Some(g) = global {
            g.store_distance(metric, from.0, to.0, d);
        }
        d
    }

    /// The cached distance for `(metric, from, to)`, if already computed.
    pub fn get(&self, metric: Metric, from: &K, to: &K) -> Option<f64> {
        let key = (metric, from.clone(), to.clone());
        self.shards[Self::shard_of(&key)].lock().expect("cache shard poisoned").get(&key).copied()
    }

    /// Number of lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached pairs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len()).sum()
    }

    /// Returns `true` if nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of unordered pairs whose union alphabet size is memoized.
    pub fn alphabet_entries(&self) -> usize {
        self.alphabet_shards.iter().map(|s| s.lock().expect("alphabet shard poisoned").len()).sum()
    }

    /// Drops all entries (distances and alphabet memos) and resets the
    /// hit/miss counters. Call when reusing a cache for a *different*
    /// binary.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard poisoned").clear();
        }
        for s in &self.alphabet_shards {
            s.lock().expect("alphabet shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kl_divergence;

    fn model(seqs: &[&[&'static str]]) -> Slm<&'static str> {
        let mut m = Slm::new(2);
        for s in seqs {
            m.train(s);
        }
        m
    }

    #[test]
    fn caches_and_counts() {
        let a = model(&[&["x", "y", "x"]]);
        let b = model(&[&["y", "z"]]);
        let cache: DistanceCache<u32> = DistanceCache::new();
        let d1 = cache.distance(Metric::KlDivergence, (&1, &a), (&2, &b));
        assert_eq!(d1, kl_divergence(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let d2 = cache.distance(Metric::KlDivergence, (&1, &a), (&2, &b));
        assert_eq!(d1, d2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keyed_by_metric_and_direction() {
        let a = model(&[&["x", "x", "x"]]);
        let b = model(&[&["x", "y", "z"]]);
        let cache: DistanceCache<u32> = DistanceCache::new();
        cache.distance(Metric::KlDivergence, (&1, &a), (&2, &b));
        cache.distance(Metric::KlDivergence, (&2, &b), (&1, &a));
        cache.distance(Metric::JsDivergence, (&1, &a), (&2, &b));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.get(Metric::KlDivergence, &1, &2), Some(kl_divergence(&a, &b)));
        assert_eq!(cache.get(Metric::JsDistance, &1, &2), None);
    }

    #[test]
    fn clear_resets() {
        let a = model(&[&["x"]]);
        let cache: DistanceCache<u8> = DistanceCache::new();
        cache.distance(Metric::KlDivergence, (&0, &a), (&1, &a));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.alphabet_entries(), 0);
    }

    #[test]
    fn alphabet_is_memoized_per_unordered_pair() {
        let a = model(&[&["x", "y", "x"]]);
        let b = model(&[&["y", "z"]]);
        let cache: DistanceCache<u32> = DistanceCache::new();
        // Both directions and all three metrics of the same pair: six
        // distance computations, one alphabet merge.
        for metric in Metric::ALL {
            cache.distance(metric, (&1, &a), (&2, &b));
            cache.distance(metric, (&2, &b), (&1, &a));
        }
        assert_eq!(cache.misses(), 6);
        assert_eq!(cache.alphabet_entries(), 1);
        // The memoized size matches a direct merge, so values agree with
        // the uncached entry points bit for bit.
        assert_eq!(cache.get(Metric::KlDivergence, &1, &2), Some(kl_divergence(&a, &b)),);
    }

    #[test]
    fn global_store_is_consulted_on_local_miss_and_counts_as_miss() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct MapStore {
            map: Mutex<std::collections::BTreeMap<(Metric, u32, u32), f64>>,
            loads: std::sync::atomic::AtomicU64,
        }
        impl GlobalDistanceStore<u32> for MapStore {
            fn load_distance(&self, metric: Metric, from: &u32, to: &u32) -> Option<f64> {
                self.loads.fetch_add(1, Ordering::Relaxed);
                self.map.lock().unwrap().get(&(metric, *from, *to)).copied()
            }
            fn store_distance(&self, metric: Metric, from: &u32, to: &u32, d: f64) {
                self.map.lock().unwrap().insert((metric, *from, *to), d);
            }
        }
        let a = model(&[&["x", "y", "x"]]);
        let b = model(&[&["y", "z"]]);
        let global = MapStore::default();
        // Cold local + cold global: compute, publish to both layers.
        let cold: DistanceCache<u32> = DistanceCache::new();
        let d1 = cold.distance_via(Metric::KlDivergence, (&1, &a), (&2, &b), Some(&global));
        assert_eq!(d1, kl_divergence(&a, &b));
        assert_eq!((cold.hits(), cold.misses()), (0, 1));
        assert_eq!(global.map.lock().unwrap().len(), 1);
        // Fresh local + warm global: answered by the store, still a
        // local miss — counters match the cold run bit for bit.
        let warm: DistanceCache<u32> = DistanceCache::new();
        let d2 = warm.distance_via(Metric::KlDivergence, (&1, &a), (&2, &b), Some(&global));
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!((warm.hits(), warm.misses()), (0, 1));
        // No alphabet merge happened on the warm path.
        assert_eq!(warm.alphabet_entries(), 0);
        // A local hit never reaches the store.
        let loads_before = global.loads.load(Ordering::Relaxed);
        warm.distance_via(Metric::KlDivergence, (&1, &a), (&2, &b), Some(&global));
        assert_eq!((warm.hits(), warm.misses()), (1, 1));
        assert_eq!(global.loads.load(Ordering::Relaxed), loads_before);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let a = model(&[&["x", "y", "x", "z"]]);
        let b = model(&[&["y", "z", "y"]]);
        let cache: DistanceCache<usize> = DistanceCache::new();
        let expect = kl_divergence(&a, &b);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..50 {
                        let d = cache.distance(
                            Metric::KlDivergence,
                            (&(i % 5), &a),
                            (&(10 + i % 7), &b),
                        );
                        assert_eq!(d, expect);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 5 * 7);
        assert_eq!(cache.hits() + cache.misses(), 200);
    }
}
