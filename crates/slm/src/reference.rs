//! The seed `BTreeMap`-trie PPM-C implementation, kept verbatim as a
//! **reference oracle** for the arena-backed [`crate::Slm`].
//!
//! The equivalence property tests (`tests/properties.rs`) train both
//! implementations on identical data and assert that every probability
//! agrees to exact `f64` bits; the SLM microbenchmarks use it as the
//! before-side of the arena speedup measurements. It is not wired into
//! the pipeline and should not grow features.

use std::collections::{BTreeMap, BTreeSet};

use crate::Symbol;

/// One context node of the trie: counts of symbols seen *after* this
/// context, plus child contexts (one level deeper).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Node<S: Symbol> {
    counts: BTreeMap<S, u64>,
    children: BTreeMap<S, Node<S>>,
}

impl<S: Symbol> Default for Node<S> {
    fn default() -> Self {
        Node { counts: BTreeMap::new(), children: BTreeMap::new() }
    }
}

impl<S: Symbol> Node<S> {
    fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    fn distinct(&self) -> u64 {
        self.counts.len() as u64
    }
}

/// The seed model: nested `BTreeMap` trie, cloned-symbol keys, totals
/// re-summed per query, training clones stored verbatim.
#[derive(Clone, Debug, PartialEq)]
pub struct ReferenceSlm<S: Symbol> {
    depth: usize,
    root: Node<S>,
    training: Vec<Vec<S>>,
    alphabet: BTreeSet<S>,
}

impl<S: Symbol> ReferenceSlm<S> {
    /// Creates an untrained model with maximum context depth `depth`.
    pub fn new(depth: usize) -> Self {
        ReferenceSlm {
            depth,
            root: Node::default(),
            training: Vec::new(),
            alphabet: BTreeSet::new(),
        }
    }

    /// The maximum context depth `D`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Trains the model on one sequence (clones are stored verbatim).
    pub fn train(&mut self, seq: &[S]) {
        for (i, sym) in seq.iter().enumerate() {
            self.alphabet.insert(sym.clone());
            // Update the counts of every context suffix of length 0..=D.
            let lo = i.saturating_sub(self.depth);
            for start in lo..=i {
                let ctx = &seq[start..i];
                let node = self.node_mut(ctx);
                *node.counts.entry(sym.clone()).or_insert(0) += 1;
            }
        }
        self.training.push(seq.to_vec());
    }

    fn node_mut(&mut self, ctx: &[S]) -> &mut Node<S> {
        let mut node = &mut self.root;
        // Context trie is keyed oldest-symbol-first.
        for sym in ctx {
            node = node.children.entry(sym.clone()).or_default();
        }
        node
    }

    fn node(&self, ctx: &[S]) -> Option<&Node<S>> {
        let mut node = &self.root;
        for sym in ctx {
            node = node.children.get(sym)?;
        }
        Some(node)
    }

    /// Number of distinct symbols observed in training.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet.len()
    }

    /// The sequences this model was trained on, clone by clone.
    pub fn training(&self) -> &[Vec<S>] {
        &self.training
    }

    /// `Pr(sym | context)` using the model's own alphabet size.
    pub fn prob(&self, sym: &S, context: &[S]) -> f64 {
        self.prob_with_alphabet(sym, context, self.alphabet.len().max(1))
    }

    /// `Pr(sym | context)` with an explicit alphabet size.
    pub fn prob_with_alphabet(&self, sym: &S, context: &[S], alphabet_size: usize) -> f64 {
        let n = alphabet_size.max(1);
        // Truncate the context to the model depth (longest suffix).
        let ctx = if context.len() > self.depth {
            &context[context.len() - self.depth..]
        } else {
            context
        };
        self.prob_rec(sym, ctx, n)
    }

    fn prob_rec(&self, sym: &S, ctx: &[S], n: usize) -> f64 {
        if let Some(node) = self.node(ctx) {
            let total = node.total();
            if total > 0 {
                let d = node.distinct();
                if let Some(c) = node.counts.get(sym) {
                    return *c as f64 / (total + d) as f64;
                }
                let escape = d as f64 / (total + d) as f64;
                return escape * self.shorter(sym, ctx, n);
            }
        }
        // Context never observed: back off without paying escape.
        self.shorter(sym, ctx, n)
    }

    fn shorter(&self, sym: &S, ctx: &[S], n: usize) -> f64 {
        if ctx.is_empty() {
            1.0 / n as f64
        } else {
            self.prob_rec(sym, &ctx[1..], n)
        }
    }

    /// Natural-log probability of a sequence, one root walk per symbol.
    pub fn sequence_log_prob_with_alphabet(&self, seq: &[S], alphabet_size: usize) -> f64 {
        let mut lp = 0.0;
        for i in 0..seq.len() {
            let lo = i.saturating_sub(self.depth);
            lp += self.prob_with_alphabet(&seq[i], &seq[lo..i], alphabet_size).ln();
        }
        lp
    }
}

/// The seed per-clone KL loop: `Σ ln(pa/pb)` over every stored training
/// clone of `a`, averaged per symbol. Kept as the cost baseline for the
/// deduplicated, table-driven [`crate::kl_divergence`].
pub fn reference_kl_divergence<S: Symbol>(a: &ReferenceSlm<S>, b: &ReferenceSlm<S>) -> f64 {
    let n = reference_union_alphabet_len(a, b);
    let mut total = 0.0;
    let mut count = 0usize;
    for seq in a.training() {
        for i in 0..seq.len() {
            let lo = i.saturating_sub(a.depth());
            let ctx = &seq[lo..i];
            let pa = a.prob_with_alphabet(&seq[i], ctx, n);
            let pb = b.prob_with_alphabet(&seq[i], ctx, n);
            total += (pa / pb).ln();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn reference_union_alphabet_len<S: Symbol>(a: &ReferenceSlm<S>, b: &ReferenceSlm<S>) -> usize {
    let mut set: BTreeSet<&S> = a.alphabet.iter().collect();
    set.extend(b.alphabet.iter());
    set.len().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_behaviour_is_preserved() {
        let mut m = ReferenceSlm::new(2);
        m.train(&['a', 'a', 'b']);
        assert!((m.prob(&'a', &[]) - 2.0 / 5.0).abs() < 1e-12);
        assert!((m.prob(&'b', &['a']) - 0.25).abs() < 1e-12);
        assert_eq!(m.training().len(), 1);
        assert_eq!(m.alphabet_len(), 2);
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn reference_kl_self_is_zero() {
        let mut m = ReferenceSlm::new(2);
        m.train(&['x', 'y', 'x']);
        assert!(reference_kl_divergence(&m, &m).abs() < 1e-12);
    }
}
