//! Divergence metrics between trained models (paper §4.2.1 and the
//! "Other Metrics" ablation of §6.4).
//!
//! All metrics are computed over each model's **deduplicated** training
//! words, weighting every term by the word's multiplicity — algebraically
//! the same sum as the seed's clone-by-clone loop, but each distinct word
//! is scored once. The self side of every pair (`Σ count · ln Pr_A(w)`
//! over `A`'s own words and the per-position probability vectors) comes
//! from the model's cached word-evaluation table (`Slm::eval_table`),
//! computed **once per model** — own-word scoring never reaches the
//! alphabet-size-dependent order-(-1) base case — and reused across all
//! O(n²) pairs; the cross side reuses the *other* model's table whenever
//! the word also appears in its training set, and falls back to one-pass
//! cursor scoring otherwise.

use crate::arena::Cursor;
use crate::model::{EvalTable, Index};
use crate::{Slm, Symbol};

/// The pairwise distance criterion used to weigh hierarchy edges.
///
/// The paper's algorithm is parametric in this choice (Remark 4.1); only a
/// *ranking* over candidate parents is required.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// Kullback–Leibler divergence `D_KL(child ‖ parent)` — the paper's
    /// choice, asymmetric like the problem itself.
    #[default]
    KlDivergence,
    /// Jensen–Shannon divergence (symmetrized KL) — reported to perform
    /// poorly (§6.4).
    JsDivergence,
    /// Jensen–Shannon distance (√JS) — likewise symmetric.
    JsDistance,
}

impl Metric {
    /// All metrics, for ablation sweeps.
    pub const ALL: [Metric; 3] = [Metric::KlDivergence, Metric::JsDivergence, Metric::JsDistance];

    /// Computes the distance from `a` to `b` under this metric. The union
    /// alphabet size is computed once here (not once per internal KL
    /// term); callers that already know it — ablation sweeps, the
    /// distance cache — should use [`Metric::distance_with_alphabet`].
    pub fn distance<S: Symbol>(self, a: &Slm<S>, b: &Slm<S>) -> f64 {
        self.distance_with_alphabet(a, b, union_alphabet_len(a, b))
    }

    /// [`Metric::distance`] with the pair's union alphabet size supplied
    /// by the caller, so sweeps over several metrics (or both directions)
    /// of the same pair compute it exactly once.
    pub fn distance_with_alphabet<S: Symbol>(self, a: &Slm<S>, b: &Slm<S>, n: usize) -> f64 {
        match self {
            Metric::KlDivergence => kl_divergence_with_alphabet(a, b, n),
            Metric::JsDivergence => js_divergence_with_alphabet(a, b, n),
            Metric::JsDistance => js_distance_with_alphabet(a, b, n),
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Metric::KlDivergence => "KL-divergence",
            Metric::JsDivergence => "JS-divergence",
            Metric::JsDistance => "JS-distance",
        };
        f.write_str(s)
    }
}

/// Size of the union of two models' observed alphabets (at least 1): the
/// `|Σ|` both sides of a comparison use for the order-(-1) base case.
/// One linear merge over the two sorted alphabets — no set allocation.
pub fn union_alphabet_len<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> usize {
    let mut ia = a.alphabet().peekable();
    let mut ib = b.alphabet().peekable();
    let mut n = 0usize;
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                match x.cmp(y) {
                    std::cmp::Ordering::Less => {
                        ia.next();
                    }
                    std::cmp::Ordering::Greater => {
                        ib.next();
                    }
                    std::cmp::Ordering::Equal => {
                        ia.next();
                        ib.next();
                    }
                }
                n += 1;
            }
            (Some(_), None) => {
                ia.next();
                n += 1;
            }
            (None, Some(_)) => {
                ib.next();
                n += 1;
            }
            (None, None) => break,
        }
    }
    n.max(1)
}

/// The word set two models are compared over: the union of their distinct
/// training sequences.
///
/// KL is "measured over a set of words W" (§4.2.1); using the observed
/// tracelets weights frequent behaviours highly and is finite by
/// construction. The set borrows the words straight out of the models'
/// deduplicated training pools — nothing is cloned per pair.
#[derive(Clone, Debug)]
pub struct WordSet<'m, S: Symbol> {
    words: Vec<&'m [S]>,
}

impl<'m, S: Symbol> WordSet<'m, S> {
    /// Number of distinct non-empty words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if both models were untrained (or trained only on
    /// empty sequences).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates the words in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &'m [S]> + '_ {
        self.words.iter().copied()
    }
}

/// Builds the union word set of two models' training pools (deduplicated,
/// empty words skipped), borrowing each word from its owning model.
pub fn word_set<'m, S: Symbol>(a: &'m Slm<S>, b: &'m Slm<S>) -> WordSet<'m, S> {
    let mut words = Vec::new();
    let mut ia = a.training().peekable();
    let mut ib = b.training().peekable();
    loop {
        let next: &'m [S] = match (ia.peek(), ib.peek()) {
            (Some(&(wa, _)), Some(&(wb, _))) => match wa.cmp(wb) {
                std::cmp::Ordering::Less => {
                    ia.next();
                    wa
                }
                std::cmp::Ordering::Greater => {
                    ib.next();
                    wb
                }
                std::cmp::Ordering::Equal => {
                    ia.next();
                    ib.next();
                    wa
                }
            },
            (Some(&(wa, _)), None) => {
                ia.next();
                wa
            }
            (None, Some(&(wb, _))) => {
                ib.next();
                wb
            }
            (None, None) => break,
        };
        if !next.is_empty() {
            words.push(next);
        }
    }
    WordSet { words }
}

/// A word of model `a` translated into model `b`'s id space, with the
/// cross-model evaluation-table fast path: when the translated word is
/// also one of `b`'s training words, its (bit-identical) cached score is
/// used instead of re-walking `b`'s trie.
struct CrossScorer<'m, S: Symbol> {
    ib: &'m Index<S>,
    table: &'m EvalTable,
    /// `a` id → `b` id.
    map: Vec<Option<u32>>,
    cursor: Cursor<'m>,
    opt_buf: Vec<Option<u32>>,
    id_buf: Vec<u32>,
}

impl<'m, S: Symbol> CrossScorer<'m, S> {
    fn new(ia: &Index<S>, b: &'m Slm<S>) -> Self {
        let ib = b.index();
        CrossScorer {
            ib,
            table: b.eval_table(),
            map: ia.table.translation_to(&ib.table),
            cursor: Cursor::new(&ib.trie),
            opt_buf: Vec::new(),
            id_buf: Vec::new(),
        }
    }

    /// Translates `word` (in `a` ids); returns the index of the matching
    /// training word of `b`, if any. `self.opt_buf` holds the translation
    /// afterwards either way.
    fn translate(&mut self, word: &[u32]) -> Option<usize> {
        self.opt_buf.clear();
        self.opt_buf.extend(word.iter().map(|&id| self.map[id as usize]));
        if self.opt_buf.iter().any(Option::is_none) {
            return None;
        }
        self.id_buf.clear();
        self.id_buf.extend(self.opt_buf.iter().map(|id| id.expect("checked above")));
        let ids = &self.id_buf;
        self.ib.words.binary_search_by(|(w, _)| w.as_slice().cmp(ids)).ok()
    }

    /// `ln Pr_B(word)` — cached when `word` is in `b`'s training pool.
    fn log_prob(&mut self, word: &[u32], n: usize) -> f64 {
        match self.translate(word) {
            Some(widx) => self.table.word_log_probs[widx],
            None => {
                self.cursor.reset();
                let mut lp = 0.0;
                for &id in &self.opt_buf {
                    lp += self.cursor.prob(id, n).ln();
                    self.cursor.advance(id);
                }
                lp
            }
        }
    }
}

/// `D_KL(A ‖ B)`: the Kullback–Leibler divergence *rate* between the two
/// models — the expected extra nats **per symbol** when encoding `A`'s
/// behaviours with `B`'s code instead of `A`'s own:
///
/// ```text
/// D(A‖B) = Σ_ctx P_A(ctx) · Σ_σ P_A(σ|ctx) · ln(P_A(σ|ctx) / P_B(σ|ctx))
/// ```
///
/// with the context distribution `P_A(ctx)` taken empirically from `A`'s
/// training tracelets (so "popular behaviors weigh more than rare ones",
/// §4.2.1): every distinct word's log-likelihood difference is weighted by
/// its clone count. Zero iff `B` assigns the same conditionals on `A`'s
/// support; asymmetric, as the parent/child relation demands.
pub fn kl_divergence<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> f64 {
    kl_divergence_with_alphabet(a, b, union_alphabet_len(a, b))
}

/// [`kl_divergence`] with the union alphabet size supplied by the caller.
pub fn kl_divergence_with_alphabet<S: Symbol>(a: &Slm<S>, b: &Slm<S>, n: usize) -> f64 {
    let ia = a.index();
    let ta = a.eval_table();
    if ta.weighted_positions == 0 {
        return 0.0;
    }
    let mut cross = CrossScorer::new(ia, b);
    let mut sum_b = 0.0;
    for (word, count) in &ia.words {
        sum_b += *count as f64 * cross.log_prob(word, n);
    }
    (ta.weighted_log_sum - sum_b) / ta.weighted_positions as f64
}

/// `D_KL(A ‖ B) = Σ_w Pr_A(w) · ln(Pr_A(w) / Pr_B(w))` over an explicit
/// word set.
///
/// Computed in log space: PPM-C never assigns a true zero, but for long
/// words `sequence_prob_with_alphabet` underflows `f64` to `0.0`, and a
/// naive `pa > 0 && pb > 0` guard would silently drop exactly the terms
/// that dominate the divergence (a word `A` knows well that `B` finds
/// astronomically unlikely). `ln(pa/pb) = log_pa − log_pb` stays finite,
/// and the `pa` weight underflowing to zero is then the mathematically
/// correct limit rather than a dropped term.
pub fn kl_divergence_over<S: Symbol>(a: &Slm<S>, b: &Slm<S>, words: &[Vec<S>]) -> f64 {
    let n = union_alphabet_len(a, b);
    let mut d = 0.0;
    for w in words {
        let log_pa = log_prob_cached(a, w, n);
        let log_pb = log_prob_cached(b, w, n);
        d += log_pa.exp() * (log_pa - log_pb);
    }
    d
}

/// [`kl_divergence_over`] over a borrowed [`WordSet`] (the zero-clone
/// form used by pair sweeps).
pub fn kl_divergence_over_set<S: Symbol>(a: &Slm<S>, b: &Slm<S>, words: &WordSet<'_, S>) -> f64 {
    let n = union_alphabet_len(a, b);
    let mut d = 0.0;
    for w in words.iter() {
        let log_pa = log_prob_cached(a, w, n);
        let log_pb = log_prob_cached(b, w, n);
        d += log_pa.exp() * (log_pa - log_pb);
    }
    d
}

/// `ln Pr_M(w)` — answered from `m`'s word-evaluation table when `w` is
/// one of its training words, scored with one cursor pass otherwise.
fn log_prob_cached<S: Symbol>(m: &Slm<S>, w: &[S], n: usize) -> f64 {
    let im = m.index();
    let ids = im.table.intern_seq(w);
    if ids.iter().all(Option::is_some) {
        let exact: Vec<u32> = ids.iter().map(|id| id.expect("checked above")).collect();
        if let Ok(widx) = im.words.binary_search_by(|(word, _)| word.as_slice().cmp(&exact)) {
            return m.eval_table().word_log_probs[widx];
        }
    }
    m.score_ids(&ids, n)
}

/// Jensen–Shannon divergence rate: `½·D(A‖M) + ½·D(B‖M)` where the
/// mixture model `M` has conditionals `½(P_A + P_B)`; each half is
/// evaluated over the corresponding model's training data, mirroring
/// [`kl_divergence`]. Symmetric by construction — provided for the §6.4
/// "Other Metrics" ablation, where symmetry is a *disadvantage*.
pub fn js_divergence<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> f64 {
    js_divergence_with_alphabet(a, b, union_alphabet_len(a, b))
}

/// [`js_divergence`] with the union alphabet size supplied by the caller.
pub fn js_divergence_with_alphabet<S: Symbol>(a: &Slm<S>, b: &Slm<S>, n: usize) -> f64 {
    0.5 * (kl_to_mixture(a, b, n) + kl_to_mixture(b, a, n))
}

/// `D(A ‖ ½(A+B))` over `A`'s training data. The `P_A` side comes from
/// `A`'s word-evaluation table; the `P_B` side reuses `B`'s table for
/// shared words and cursor-scores the rest.
fn kl_to_mixture<S: Symbol>(a: &Slm<S>, b: &Slm<S>, n: usize) -> f64 {
    let ia = a.index();
    let ta = a.eval_table();
    if ta.weighted_positions == 0 {
        return 0.0;
    }
    let mut cross = CrossScorer::new(ia, b);
    let mut total = 0.0;
    for (wi, (word, count)) in ia.words.iter().enumerate() {
        let pas = &ta.pos_probs[wi];
        let mut wsum = 0.0;
        match cross.translate(word) {
            Some(widx) => {
                let pbs = &cross.table.pos_probs[widx];
                for (pa, pb) in pas.iter().zip(pbs) {
                    let pm = 0.5 * (pa + pb);
                    wsum += (pa / pm).ln();
                }
            }
            None => {
                cross.cursor.reset();
                for (pos, &id) in cross.opt_buf.iter().enumerate() {
                    let pb = cross.cursor.prob(id, n);
                    let pm = 0.5 * (pas[pos] + pb);
                    wsum += (pas[pos] / pm).ln();
                    cross.cursor.advance(id);
                }
            }
        }
        total += *count as f64 * wsum;
    }
    total / ta.weighted_positions as f64
}

/// Jensen–Shannon distance: `√JS`.
pub fn js_distance<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> f64 {
    js_distance_with_alphabet(a, b, union_alphabet_len(a, b))
}

/// [`js_distance`] with the union alphabet size supplied by the caller.
pub fn js_distance_with_alphabet<S: Symbol>(a: &Slm<S>, b: &Slm<S>, n: usize) -> f64 {
    js_divergence_with_alphabet(a, b, n).max(0.0).sqrt()
}

/// Cross-entropy rate (nats per symbol) of `sequences` under `model`:
/// the average negative log-likelihood. [`kl_divergence`] is exactly
/// `cross_entropy(B's data, A) − cross_entropy(A's data, A)` evaluated on
/// `A`'s data — exposed separately for diagnostics.
pub fn cross_entropy<S: Symbol>(model: &Slm<S>, sequences: &[Vec<S>]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for seq in sequences {
        total -= model.sequence_log_prob(seq);
        count += seq.len();
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Perplexity of `sequences` under `model`: `exp(cross_entropy)`. A model
/// that predicts its own training data well has low perplexity; an
/// unrelated type's model scores high.
pub fn perplexity<S: Symbol>(model: &Slm<S>, sequences: &[Vec<S>]) -> f64 {
    cross_entropy(model, sequences).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(depth: usize, seqs: &[&[&'static str]]) -> Slm<&'static str> {
        let mut m = Slm::new(depth);
        for s in seqs {
            m.train(s);
        }
        m
    }

    #[test]
    fn kl_self_is_zero() {
        let m = model(2, &[&["f0", "f1", "f0"]]);
        assert_eq!(kl_divergence(&m, &m), 0.0);
    }

    #[test]
    fn kl_is_asymmetric() {
        // Parent behaviours ⊂ child behaviours: encoding the child with
        // the parent's model differs from the reverse.
        let parent = model(2, &[&["f0", "f0", "f0"]]);
        let child = model(2, &[&["f0", "f0", "f0"], &["f0", "f1", "f2"]]);
        let d_cp = kl_divergence(&child, &parent);
        let d_pc = kl_divergence(&parent, &child);
        assert!((d_cp - d_pc).abs() > 1e-9, "KL should be asymmetric");
    }

    #[test]
    fn paper_fig6_ranking() {
        // Fig. 7 usage sequences; Class3's tracelet contains Class1's.
        let c1 = model(2, &[&["f0", "f0", "f0"]]);
        let c2 = model(2, &[&["f0", "f1", "f0", "f1", "f0", "f1"]]);
        let c3 = model(2, &[&["f0", "f0", "f0", "f1", "f2"]]);
        let d31 = kl_divergence(&c3, &c1);
        let d32 = kl_divergence(&c3, &c2);
        assert!(d31 < d32, "Class1 should rank as more likely parent of Class3: {d31} vs {d32}");
    }

    #[test]
    fn kl_weights_duplicate_words() {
        // A word trained five times must dominate the empirical context
        // distribution exactly as five stored clones did in the seed.
        let mut many = Slm::new(2);
        for _ in 0..5 {
            many.train(&["x", "y"]);
        }
        many.train(&["z"]);
        let mut each = Slm::new(2);
        each.train(&["x", "y"]);
        each.train(&["z"]);
        let b = model(2, &[&["y", "z", "y"]]);
        let d_many = kl_divergence(&many, &b);
        let d_each = kl_divergence(&each, &b);
        assert!((d_many - d_each).abs() > 1e-12, "multiplicity must shift the weighting");
        // Weighted average stays between the per-word extremes.
        assert!(d_many.is_finite() && d_each.is_finite());
    }

    #[test]
    fn js_is_symmetric() {
        let a = model(2, &[&["x", "y"]]);
        let b = model(2, &[&["y", "z", "z"]]);
        let ab = js_divergence(&a, &b);
        let ba = js_divergence(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((js_distance(&a, &b) - ab.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn js_self_is_zero() {
        let a = model(2, &[&["x", "y", "x"]]);
        assert!(js_divergence(&a, &a).abs() < 1e-12);
        assert!(js_distance(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn word_set_unions_training() {
        let a = model(2, &[&["x"], &["y"]]);
        let b = model(2, &[&["y"], &["z"]]);
        let w = word_set(&a, &b);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        let words: Vec<&[&str]> = w.iter().collect();
        assert_eq!(words, vec![&["x"][..], &["y"][..], &["z"][..]]);
        // The set borrows from the models — same kl either way.
        let via_set = kl_divergence_over_set(&a, &b, &w);
        let owned: Vec<Vec<&str>> = w.iter().map(<[&str]>::to_vec).collect();
        assert_eq!(via_set.to_bits(), kl_divergence_over(&a, &b, &owned).to_bits());
    }

    #[test]
    fn metric_enum_dispatch() {
        let a = model(2, &[&["x", "y"]]);
        let b = model(2, &[&["y", "z"]]);
        assert_eq!(Metric::KlDivergence.distance(&a, &b), kl_divergence(&a, &b));
        assert_eq!(Metric::JsDivergence.distance(&a, &b), js_divergence(&a, &b));
        assert_eq!(Metric::JsDistance.distance(&a, &b), js_distance(&a, &b));
        assert_eq!(Metric::default(), Metric::KlDivergence);
        assert_eq!(Metric::ALL.len(), 3);
        assert_eq!(Metric::KlDivergence.to_string(), "KL-divergence");
        // Supplying the pair's alphabet size up front changes nothing.
        let n = union_alphabet_len(&a, &b);
        assert_eq!(n, 3);
        for metric in Metric::ALL {
            assert_eq!(
                metric.distance(&a, &b).to_bits(),
                metric.distance_with_alphabet(&a, &b, n).to_bits()
            );
        }
    }

    #[test]
    fn kl_over_explicit_words() {
        let a = model(2, &[&["x", "y"]]);
        let b = model(2, &[&["y", "z"]]);
        let words = vec![vec!["x", "y"]];
        let d = kl_divergence_over(&a, &b, &words);
        assert!(d > 0.0);
        // Over an empty word set the divergence collapses to zero.
        assert_eq!(kl_divergence_over(&a, &b, &[]), 0.0);
    }

    #[test]
    fn kl_over_long_words_survives_underflow() {
        // Regression: `b` finds a 64-symbol word of pure "q"s astronomically
        // unlikely — log Pr_B ≈ 64·ln(escape·1/|Σ|) is far below ln(f64::MIN),
        // so Pr_B rounds to exactly 0.0 and the old `pa > 0 && pb > 0` guard
        // silently dropped the single dominant term, reporting d == 0.
        let a = model(2, &[&["q"; 64]]);
        let mut b = Slm::new(2);
        let noise: Vec<&'static str> =
            ["u", "v", "w"].iter().cycle().take(120_000).copied().collect();
        b.train(&noise);
        let words = vec![vec!["q"; 64]];
        let n = 4; // union alphabet {q, u, v, w}
        assert_eq!(union_alphabet_len(&a, &b), n);
        assert_eq!(
            b.sequence_prob_with_alphabet(&words[0], n),
            0.0,
            "fixture must actually underflow in linear space"
        );
        let d = kl_divergence_over(&a, &b, &words);
        assert!(d.is_finite() && d > 100.0, "long-word term must dominate, not vanish: {d}");
        // Over an empty word set the divergence still collapses to zero.
        assert_eq!(kl_divergence_over(&a, &b, &[]), 0.0);
    }

    #[test]
    fn cross_entropy_and_perplexity() {
        let m = model(2, &[&["a", "b", "a", "b"], &["a", "b"]]);
        let own = cross_entropy(&m, &[vec!["a", "b"]]);
        let foreign = cross_entropy(&m, &[vec!["b", "b", "b"]]);
        assert!(own < foreign, "own data must be cheaper: {own} vs {foreign}");
        assert!((perplexity(&m, &[vec!["a", "b"]]) - own.exp()).abs() < 1e-12);
        assert_eq!(cross_entropy(&m, &[]), 0.0);
        assert_eq!(perplexity(&m, &[]), 1.0);
    }

    #[test]
    fn untrained_models_are_indistinguishable() {
        let a: Slm<&str> = Slm::new(2);
        let b: Slm<&str> = Slm::new(2);
        assert_eq!(kl_divergence(&a, &b), 0.0);
        assert_eq!(js_divergence(&a, &b), 0.0);
        assert_eq!(union_alphabet_len(&a, &b), 1);
        assert!(word_set(&a, &b).is_empty());
    }
}
