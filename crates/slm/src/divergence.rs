//! Divergence metrics between trained models (paper §4.2.1 and the
//! "Other Metrics" ablation of §6.4).

use std::collections::BTreeSet;
use std::fmt;

use crate::{Slm, Symbol};

/// The pairwise distance criterion used to weigh hierarchy edges.
///
/// The paper's algorithm is parametric in this choice (Remark 4.1); only a
/// *ranking* over candidate parents is required.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// Kullback–Leibler divergence `D_KL(child ‖ parent)` — the paper's
    /// choice, asymmetric like the problem itself.
    #[default]
    KlDivergence,
    /// Jensen–Shannon divergence (symmetrized KL) — reported to perform
    /// poorly (§6.4).
    JsDivergence,
    /// Jensen–Shannon distance (√JS) — likewise symmetric.
    JsDistance,
}

impl Metric {
    /// All metrics, for ablation sweeps.
    pub const ALL: [Metric; 3] = [Metric::KlDivergence, Metric::JsDivergence, Metric::JsDistance];

    /// Computes the distance from `a` to `b` under this metric.
    pub fn distance<S: Symbol>(self, a: &Slm<S>, b: &Slm<S>) -> f64 {
        match self {
            Metric::KlDivergence => kl_divergence(a, b),
            Metric::JsDivergence => js_divergence(a, b),
            Metric::JsDistance => js_distance(a, b),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Metric::KlDivergence => "KL-divergence",
            Metric::JsDivergence => "JS-divergence",
            Metric::JsDistance => "JS-distance",
        };
        f.write_str(s)
    }
}

/// The word set two models are compared over: the union of their training
/// sequences (deduplicated).
///
/// KL is "measured over a set of words W" (§4.2.1); using the observed
/// tracelets weights frequent behaviours highly and is finite by
/// construction.
pub fn word_set<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> Vec<Vec<S>> {
    let mut set: BTreeSet<Vec<S>> = BTreeSet::new();
    for seq in a.training().iter().chain(b.training()) {
        if !seq.is_empty() {
            set.insert(seq.clone());
        }
    }
    set.into_iter().collect()
}

fn union_alphabet_len<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> usize {
    let mut set: BTreeSet<&S> = a.alphabet().collect();
    set.extend(b.alphabet());
    set.len().max(1)
}

/// `D_KL(A ‖ B)`: the Kullback–Leibler divergence *rate* between the two
/// models — the expected extra nats **per symbol** when encoding `A`'s
/// behaviours with `B`'s code instead of `A`'s own:
///
/// ```text
/// D(A‖B) = Σ_ctx P_A(ctx) · Σ_σ P_A(σ|ctx) · ln(P_A(σ|ctx) / P_B(σ|ctx))
/// ```
///
/// with the context distribution `P_A(ctx)` taken empirically from `A`'s
/// training tracelets (so "popular behaviors weigh more than rare ones",
/// §4.2.1). Computed as the average pointwise log-likelihood difference
/// over every symbol occurrence in `A`'s training data. Zero iff `B`
/// assigns the same conditionals on `A`'s support; asymmetric, as the
/// parent/child relation demands.
pub fn kl_divergence<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> f64 {
    let n = union_alphabet_len(a, b);
    let mut total = 0.0;
    let mut count = 0usize;
    for seq in a.training() {
        for i in 0..seq.len() {
            let lo = i.saturating_sub(a.depth());
            let ctx = &seq[lo..i];
            let pa = a.prob_with_alphabet(&seq[i], ctx, n);
            let pb = b.prob_with_alphabet(&seq[i], ctx, n);
            total += (pa / pb).ln();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// `D_KL(A ‖ B) = Σ_w Pr_A(w) · ln(Pr_A(w) / Pr_B(w))` over an explicit
/// word set.
///
/// Computed in log space: PPM-C never assigns a true zero, but for long
/// words `sequence_prob_with_alphabet` underflows `f64` to `0.0`, and a
/// naive `pa > 0 && pb > 0` guard would silently drop exactly the terms
/// that dominate the divergence (a word `A` knows well that `B` finds
/// astronomically unlikely). `ln(pa/pb) = log_pa − log_pb` stays finite,
/// and the `pa` weight underflowing to zero is then the mathematically
/// correct limit rather than a dropped term.
pub fn kl_divergence_over<S: Symbol>(a: &Slm<S>, b: &Slm<S>, words: &[Vec<S>]) -> f64 {
    let n = union_alphabet_len(a, b);
    let mut d = 0.0;
    for w in words {
        let log_pa = a.sequence_log_prob_with_alphabet(w, n);
        let log_pb = b.sequence_log_prob_with_alphabet(w, n);
        d += log_pa.exp() * (log_pa - log_pb);
    }
    d
}

/// Jensen–Shannon divergence rate: `½·D(A‖M) + ½·D(B‖M)` where the
/// mixture model `M` has conditionals `½(P_A + P_B)`; each half is
/// evaluated over the corresponding model's training data, mirroring
/// [`kl_divergence`]. Symmetric by construction — provided for the §6.4
/// "Other Metrics" ablation, where symmetry is a *disadvantage*.
pub fn js_divergence<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> f64 {
    0.5 * (kl_to_mixture(a, b) + kl_to_mixture(b, a))
}

/// `D(A ‖ ½(A+B))` over `A`'s training data.
fn kl_to_mixture<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> f64 {
    let n = union_alphabet_len(a, b);
    let mut total = 0.0;
    let mut count = 0usize;
    for seq in a.training() {
        for i in 0..seq.len() {
            let lo = i.saturating_sub(a.depth());
            let ctx = &seq[lo..i];
            let pa = a.prob_with_alphabet(&seq[i], ctx, n);
            let pb = b.prob_with_alphabet(&seq[i], ctx, n);
            let pm = 0.5 * (pa + pb);
            total += (pa / pm).ln();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Jensen–Shannon distance: `√JS`.
pub fn js_distance<S: Symbol>(a: &Slm<S>, b: &Slm<S>) -> f64 {
    js_divergence(a, b).max(0.0).sqrt()
}

/// Cross-entropy rate (nats per symbol) of `sequences` under `model`:
/// the average negative log-likelihood. [`kl_divergence`] is exactly
/// `cross_entropy(B's data, A) − cross_entropy(A's data, A)` evaluated on
/// `A`'s data — exposed separately for diagnostics.
pub fn cross_entropy<S: Symbol>(model: &Slm<S>, sequences: &[Vec<S>]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for seq in sequences {
        total -= model.sequence_log_prob(seq);
        count += seq.len();
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Perplexity of `sequences` under `model`: `exp(cross_entropy)`. A model
/// that predicts its own training data well has low perplexity; an
/// unrelated type's model scores high.
pub fn perplexity<S: Symbol>(model: &Slm<S>, sequences: &[Vec<S>]) -> f64 {
    cross_entropy(model, sequences).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(depth: usize, seqs: &[&[&'static str]]) -> Slm<&'static str> {
        let mut m = Slm::new(depth);
        for s in seqs {
            m.train(s);
        }
        m
    }

    #[test]
    fn kl_self_is_zero() {
        let m = model(2, &[&["f0", "f1", "f0"]]);
        assert!(kl_divergence(&m, &m).abs() < 1e-12);
    }

    #[test]
    fn kl_is_asymmetric() {
        // Parent behaviours ⊂ child behaviours: encoding the child with
        // the parent's model differs from the reverse.
        let parent = model(2, &[&["f0", "f0", "f0"]]);
        let child = model(2, &[&["f0", "f0", "f0"], &["f0", "f1", "f2"]]);
        let d_cp = kl_divergence(&child, &parent);
        let d_pc = kl_divergence(&parent, &child);
        assert!((d_cp - d_pc).abs() > 1e-9, "KL should be asymmetric");
    }

    #[test]
    fn paper_fig6_ranking() {
        // Fig. 7 usage sequences; Class3's tracelet contains Class1's.
        let c1 = model(2, &[&["f0", "f0", "f0"]]);
        let c2 = model(2, &[&["f0", "f1", "f0", "f1", "f0", "f1"]]);
        let c3 = model(2, &[&["f0", "f0", "f0", "f1", "f2"]]);
        let d31 = kl_divergence(&c3, &c1);
        let d32 = kl_divergence(&c3, &c2);
        assert!(d31 < d32, "Class1 should rank as more likely parent of Class3: {d31} vs {d32}");
    }

    #[test]
    fn js_is_symmetric() {
        let a = model(2, &[&["x", "y"]]);
        let b = model(2, &[&["y", "z", "z"]]);
        let ab = js_divergence(&a, &b);
        let ba = js_divergence(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((js_distance(&a, &b) - ab.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn js_self_is_zero() {
        let a = model(2, &[&["x", "y", "x"]]);
        assert!(js_divergence(&a, &a).abs() < 1e-12);
        assert!(js_distance(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn word_set_unions_training() {
        let a = model(2, &[&["x"], &["y"]]);
        let b = model(2, &[&["y"], &["z"]]);
        let w = word_set(&a, &b);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn metric_enum_dispatch() {
        let a = model(2, &[&["x", "y"]]);
        let b = model(2, &[&["y", "z"]]);
        assert_eq!(Metric::KlDivergence.distance(&a, &b), kl_divergence(&a, &b));
        assert_eq!(Metric::JsDivergence.distance(&a, &b), js_divergence(&a, &b));
        assert_eq!(Metric::JsDistance.distance(&a, &b), js_distance(&a, &b));
        assert_eq!(Metric::default(), Metric::KlDivergence);
        assert_eq!(Metric::ALL.len(), 3);
        assert_eq!(Metric::KlDivergence.to_string(), "KL-divergence");
    }

    #[test]
    fn kl_over_explicit_words() {
        let a = model(2, &[&["x", "y"]]);
        let b = model(2, &[&["y", "z"]]);
        let words = vec![vec!["x", "y"]];
        let d = kl_divergence_over(&a, &b, &words);
        assert!(d > 0.0);
        // Over an empty word set the divergence collapses to zero.
        assert_eq!(kl_divergence_over(&a, &b, &[]), 0.0);
    }

    #[test]
    fn kl_over_long_words_survives_underflow() {
        // Regression: `b` finds a 64-symbol word of pure "q"s astronomically
        // unlikely — log Pr_B ≈ 64·ln(escape·1/|Σ|) is far below ln(f64::MIN),
        // so Pr_B rounds to exactly 0.0 and the old `pa > 0 && pb > 0` guard
        // silently dropped the single dominant term, reporting d == 0.
        let a = model(2, &[&["q"; 64]]);
        let mut b = Slm::new(2);
        let noise: Vec<&'static str> =
            ["u", "v", "w"].iter().cycle().take(120_000).copied().collect();
        b.train(&noise);
        let words = vec![vec!["q"; 64]];
        let n = 4; // union alphabet {q, u, v, w}
        assert_eq!(
            b.sequence_prob_with_alphabet(&words[0], n),
            0.0,
            "fixture must actually underflow in linear space"
        );
        let d = kl_divergence_over(&a, &b, &words);
        assert!(d.is_finite() && d > 100.0, "long-word term must dominate, not vanish: {d}");
        // Over an empty word set the divergence still collapses to zero.
        assert_eq!(kl_divergence_over(&a, &b, &[]), 0.0);
    }

    #[test]
    fn cross_entropy_and_perplexity() {
        let m = model(2, &[&["a", "b", "a", "b"], &["a", "b"]]);
        let own = cross_entropy(&m, &[vec!["a", "b"]]);
        let foreign = cross_entropy(&m, &[vec!["b", "b", "b"]]);
        assert!(own < foreign, "own data must be cheaper: {own} vs {foreign}");
        assert!((perplexity(&m, &[vec!["a", "b"]]) - own.exp()).abs() < 1e-12);
        assert_eq!(cross_entropy(&m, &[]), 0.0);
        assert_eq!(perplexity(&m, &[]), 1.0);
    }

    #[test]
    fn untrained_models_are_indistinguishable() {
        let a: Slm<&str> = Slm::new(2);
        let b: Slm<&str> = Slm::new(2);
        assert_eq!(kl_divergence(&a, &b), 0.0);
        assert_eq!(js_divergence(&a, &b), 0.0);
    }
}
