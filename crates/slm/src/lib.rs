//! Statistical language models (variable-order Markov models) and
//! divergence metrics, as used by Rock (ASPLOS'18, §3.1 and §4.2.1).
//!
//! The model is an n-gram model with **PPM-C** smoothing and backoff
//! (prediction by partial matching, Moffat's method C): a context trie of
//! maximum depth `D` holds symbol counts per context; a query for
//! `Pr(σ | s)` walks from the longest available context suffix down to the
//! order-(-1) uniform distribution, paying an *escape* probability each
//! time the symbol was unseen in the current context:
//!
//! ```text
//! Pr_k(σ|s)  = c(s,σ) / (T(s) + d(s))                 if σ seen after s
//!            = d(s)/(T(s)+d(s)) · Pr_{k-1}(σ|suffix)   otherwise (escape)
//! Pr_{-1}(σ) = 1 / |Σ|
//! ```
//!
//! where `T(s)` is the total count and `d(s)` the number of distinct
//! symbols observed after `s`.
//!
//! Divergences between two trained models are computed over a **word set**
//! (by default the union of both models' training windows):
//! Kullback–Leibler, Jensen–Shannon divergence, and Jensen–Shannon
//! distance. The paper found the *asymmetric* KL superior (§6.4, "Other
//! Metrics"); the symmetric alternatives are provided to reproduce that
//! ablation.
//!
//! # Example
//!
//! ```
//! use rock_slm::{Slm, kl_divergence};
//!
//! // Class1 is used as f0 f0 f0; Class3 as f0 f0 f0 f1 f2 (paper Fig. 7).
//! let mut c1 = Slm::new(2);
//! c1.train(&["f0", "f0", "f0"]);
//! let mut c2 = Slm::new(2);
//! c2.train(&["f0", "f1", "f0", "f1", "f0", "f1"]);
//! let mut c3 = Slm::new(2);
//! c3.train(&["f0", "f0", "f0", "f1", "f2"]);
//!
//! // Class3 behaves more like Class1 than like Class2 (Fig. 6a wins).
//! assert!(kl_divergence(&c3, &c1) < kl_divergence(&c3, &c2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod cache;
mod divergence;
mod intern;
mod model;
pub mod reference;

pub use cache::{DistanceCache, GlobalDistanceStore, ModelKey};
pub use divergence::{
    cross_entropy, js_distance, js_distance_with_alphabet, js_divergence,
    js_divergence_with_alphabet, kl_divergence, kl_divergence_over, kl_divergence_over_set,
    kl_divergence_with_alphabet, perplexity, union_alphabet_len, word_set, Metric, WordSet,
};
pub use intern::SymbolTable;
pub use model::{Slm, Symbol};
