//! Dense symbol interning for the SLM data plane.
//!
//! The arena trie ([`crate::Slm`]'s storage) operates on `u32` ids rather
//! than cloned symbols. Ids are assigned **in `Ord` order over the full
//! observed alphabet** — not in first-seen order — so the mapping is a
//! pure function of the alphabet *set*: training the same sequences in any
//! order produces bit-identical tables, and comparing interned sequences
//! lexicographically agrees with comparing the original symbol sequences.
//! That property is what keeps every downstream float summation order (and
//! therefore the serial-vs-parallel bit-identity guarantee of
//! `tests/parallel_determinism.rs`) deterministic.

use std::collections::BTreeSet;

use crate::Symbol;

/// A dense, order-preserving symbol interner: symbol ↔ `u32` id, with ids
/// assigned by ascending `Ord` rank over the observed alphabet.
///
/// # Example
///
/// ```
/// use rock_slm::SymbolTable;
/// let t = SymbolTable::from_symbols(["b", "a", "c", "a"]);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.id_of(&"a"), Some(0)); // rank order, not insertion order
/// assert_eq!(t.id_of(&"c"), Some(2));
/// assert_eq!(t.resolve(1), Some(&"b"));
/// assert_eq!(t.id_of(&"z"), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymbolTable<S: Symbol> {
    /// Sorted ascending; a symbol's id is its position.
    syms: Vec<S>,
}

impl<S: Symbol> SymbolTable<S> {
    /// Builds a table over every distinct symbol yielded by `symbols`.
    /// Duplicates and iteration order are irrelevant: ids depend only on
    /// the resulting set.
    pub fn from_symbols(symbols: impl IntoIterator<Item = S>) -> Self {
        let set: BTreeSet<S> = symbols.into_iter().collect();
        SymbolTable { syms: set.into_iter().collect() }
    }

    /// Builds a table from an already-deduplicated sorted set.
    pub(crate) fn from_sorted_set(set: &BTreeSet<S>) -> Self {
        SymbolTable { syms: set.iter().cloned().collect() }
    }

    /// The id of `sym`, or `None` if it is outside the interned alphabet.
    pub fn id_of(&self, sym: &S) -> Option<u32> {
        self.syms.binary_search(sym).ok().map(|i| i as u32)
    }

    /// The symbol with id `id`, if in range.
    pub fn resolve(&self, id: u32) -> Option<&S> {
        self.syms.get(id as usize)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Iterates symbols in id (= `Ord`) order.
    pub fn iter(&self) -> impl Iterator<Item = &S> {
        self.syms.iter()
    }

    /// Interns a sequence; symbols outside the alphabet map to `None`.
    pub(crate) fn intern_seq(&self, seq: &[S]) -> Vec<Option<u32>> {
        seq.iter().map(|s| self.id_of(s)).collect()
    }

    /// Per-id translation into `to`'s id space (`None` where `to` has not
    /// seen the symbol). One linear merge over both sorted alphabets;
    /// built once per model pair and reused for every word.
    pub(crate) fn translation_to(&self, to: &SymbolTable<S>) -> Vec<Option<u32>> {
        let mut out = Vec::with_capacity(self.syms.len());
        let mut j = 0usize;
        for sym in &self.syms {
            while j < to.syms.len() && to.syms[j] < *sym {
                j += 1;
            }
            if j < to.syms.len() && to.syms[j] == *sym {
                out.push(Some(j as u32));
            } else {
                out.push(None);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_rank_order_and_insertion_independent() {
        let forward = SymbolTable::from_symbols(['a', 'b', 'c']);
        let shuffled = SymbolTable::from_symbols(['c', 'a', 'b', 'b']);
        assert_eq!(forward, shuffled);
        assert_eq!(forward.id_of(&'b'), Some(1));
        assert_eq!(forward.resolve(2), Some(&'c'));
        assert_eq!(forward.resolve(3), None);
    }

    #[test]
    fn intern_seq_marks_unknowns() {
        let t = SymbolTable::from_symbols([1u8, 3, 5]);
        assert_eq!(t.intern_seq(&[1, 2, 5]), vec![Some(0), None, Some(2)]);
    }

    #[test]
    fn translation_merges_sorted_alphabets() {
        let a = SymbolTable::from_symbols(['a', 'b', 'd']);
        let b = SymbolTable::from_symbols(['b', 'c', 'd', 'e']);
        assert_eq!(a.translation_to(&b), vec![None, Some(0), Some(2)]);
        assert_eq!(b.translation_to(&a), vec![Some(1), None, Some(2), None]);
        assert!(SymbolTable::<char>::default().is_empty());
    }
}
