//! Flat arena-backed PPM-C context trie over interned symbol ids.
//!
//! Replaces the seed's `BTreeMap`-of-`BTreeMap` trie (kept as
//! [`crate::reference`]): all context nodes live in one `Vec`, edges are
//! sorted `(symbol id, child index)` lists, and each node caches its total
//! count so queries never re-sum. A [`Cursor`] slides a context window
//! along a word so sequence scoring descends the trie once per symbol
//! instead of re-walking from the root for every context suffix.
//!
//! Probability composition replicates the reference recursion *bit for
//! bit*: the escape chain is folded in the same (right-associated)
//! multiplication order, so `prob` agrees with the seed implementation to
//! exact `f64` bits (asserted by the oracle property tests).

/// One context node: cached totals plus sorted count/child edge lists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Node {
    /// Cached `Σ counts` — maintained incrementally by [`ArenaTrie::build`].
    total: u64,
    /// `(symbol id, count)` sorted by id; `len()` is the distinct count.
    counts: Vec<(u32, u64)>,
    /// `(symbol id, child node index)` sorted by id.
    children: Vec<(u32, u32)>,
}

impl Node {
    fn count_of(&self, sym: u32) -> Option<u64> {
        self.counts.binary_search_by_key(&sym, |e| e.0).ok().map(|i| self.counts[i].1)
    }

    fn child_of(&self, sym: u32) -> Option<u32> {
        self.children.binary_search_by_key(&sym, |e| e.0).ok().map(|i| self.children[i].1)
    }

    fn distinct(&self) -> u64 {
        self.counts.len() as u64
    }
}

/// The arena trie: node 0 is the root (empty context).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct ArenaTrie {
    nodes: Vec<Node>,
    depth: usize,
}

impl ArenaTrie {
    /// Builds the trie from deduplicated `(interned word, multiplicity)`
    /// pairs. Each symbol occurrence bumps the counts of every context
    /// suffix of length `0..=depth` by the word's multiplicity — the same
    /// counts the reference implementation accumulates one clone at a
    /// time. The context-node stack slides along the word, so the build is
    /// `O(len · depth)` node visits per word.
    pub fn build(depth: usize, words: &[(Vec<u32>, u64)]) -> Self {
        let mut trie = ArenaTrie { nodes: vec![Node::default()], depth };
        let mut stack: Vec<u32> = Vec::with_capacity(depth + 1);
        let mut next: Vec<u32> = Vec::with_capacity(depth + 1);
        for (word, count) in words {
            stack.clear();
            stack.push(0);
            for &sym in word {
                for &node in &stack {
                    trie.bump(node, sym, *count);
                }
                next.clear();
                next.push(0);
                for &parent in stack.iter().take(depth) {
                    next.push(trie.child_or_insert(parent, sym));
                }
                std::mem::swap(&mut stack, &mut next);
            }
        }
        trie
    }

    fn bump(&mut self, node: u32, sym: u32, count: u64) {
        let n = &mut self.nodes[node as usize];
        n.total += count;
        match n.counts.binary_search_by_key(&sym, |e| e.0) {
            Ok(i) => n.counts[i].1 += count,
            Err(i) => n.counts.insert(i, (sym, count)),
        }
    }

    fn child_or_insert(&mut self, node: u32, sym: u32) -> u32 {
        match self.nodes[node as usize].children.binary_search_by_key(&sym, |e| e.0) {
            Ok(i) => self.nodes[node as usize].children[i].1,
            Err(i) => {
                let child = u32::try_from(self.nodes.len()).expect("trie node count overflow");
                self.nodes.push(Node::default());
                self.nodes[node as usize].children.insert(i, (sym, child));
                child
            }
        }
    }

    /// The node index for an exact context path from the root; any unknown
    /// symbol (`None`) or missing edge yields `None`.
    pub fn lookup(&self, ctx: &[Option<u32>]) -> Option<u32> {
        let mut node = 0u32;
        for sym in ctx {
            node = self.nodes[node as usize].child_of((*sym)?)?;
        }
        Some(node)
    }

    /// PPM-C escape mass `d/(T+d)` at a node, `None` when unobserved.
    pub fn escape(&self, node: u32) -> Option<f64> {
        let n = &self.nodes[node as usize];
        if n.total == 0 {
            return None;
        }
        Some(n.distinct() as f64 / (n.total + n.distinct()) as f64)
    }

    /// `Pr(sym | context)` given the context's suffix-node stack,
    /// **shortest suffix first** (`stack[0]` is the root; `stack[k]` the
    /// node of the last-`k`-symbols context, `None` where that context was
    /// never observed).
    ///
    /// Replicates the reference recursion exactly: scan from the longest
    /// suffix down; the first node whose counts contain `sym` terminates
    /// with `c/(T+d)`; nodes without the symbol contribute escape mass;
    /// missing or empty nodes are skipped without paying escape; the
    /// order-(-1) base case is `1/n`. The escape chain is folded
    /// innermost-first so the multiplication association (and therefore
    /// every result bit) matches the recursive form.
    pub fn score_stack(&self, stack: &[Option<u32>], sym: Option<u32>, n: usize) -> f64 {
        // Downward scan (longest context first) for the terminal level.
        let (mut value, terminal) = 'scan: {
            if let Some(id) = sym {
                for k in (0..stack.len()).rev() {
                    let Some(node) = stack[k] else { continue };
                    let node = &self.nodes[node as usize];
                    if node.total == 0 {
                        continue;
                    }
                    if let Some(c) = node.count_of(id) {
                        break 'scan (c as f64 / (node.total + node.distinct()) as f64, Some(k));
                    }
                }
            }
            (1.0 / n.max(1) as f64, None)
        };
        // Fold escapes upward from just above the terminal level, so the
        // product associates exactly like `escape * shorter(..)`.
        let from = terminal.map_or(0, |k| k + 1);
        for entry in &stack[from..] {
            let Some(node) = *entry else { continue };
            let node = &self.nodes[node as usize];
            if node.total == 0 {
                continue;
            }
            // `x * value`, not `value * x`: IEEE multiplication is exactly
            // commutative, so `*=` keeps the right-associated bits.
            value *= node.distinct() as f64 / (node.total + node.distinct()) as f64;
        }
        value
    }

    /// Number of context nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of child edges across all nodes.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.children.len()).sum()
    }

    /// Approximate resident size of the trie in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    n.counts.len() * std::mem::size_of::<(u32, u64)>()
                        + n.children.len() * std::mem::size_of::<(u32, u32)>()
                })
                .sum::<usize>()
    }
}

/// A sliding context window over the trie for one-pass sequence scoring.
///
/// Maintains the suffix-node stack for the current context; advancing by a
/// symbol extends every suffix with one child lookup instead of re-walking
/// each suffix from the root, turning per-symbol lookup cost from
/// `O(depth²)` map walks into `O(depth)` binary searches.
pub(crate) struct Cursor<'t> {
    trie: &'t ArenaTrie,
    /// `stack[k]` = node of the last-`k`-symbols context (shortest first).
    stack: Vec<Option<u32>>,
    scratch: Vec<Option<u32>>,
}

impl<'t> Cursor<'t> {
    /// A cursor positioned at the start of a sequence (empty context).
    pub fn new(trie: &'t ArenaTrie) -> Self {
        let mut stack = Vec::with_capacity(trie.depth + 1);
        stack.push(Some(0));
        Cursor { trie, stack, scratch: Vec::with_capacity(trie.depth + 1) }
    }

    /// Rewinds to the start-of-sequence (empty) context, keeping the
    /// allocated stacks — lets one cursor score many words.
    pub fn reset(&mut self) {
        self.stack.clear();
        self.stack.push(Some(0));
    }

    /// `Pr(sym | current context)`; `None` is a never-seen symbol.
    pub fn prob(&self, sym: Option<u32>, n: usize) -> f64 {
        self.trie.score_stack(&self.stack, sym, n)
    }

    /// Slides the window forward over `sym`.
    pub fn advance(&mut self, sym: Option<u32>) {
        self.scratch.clear();
        self.scratch.push(Some(0));
        for k in 0..self.stack.len().min(self.trie.depth) {
            let child = match (self.stack[k], sym) {
                (Some(node), Some(id)) => self.trie.nodes[node as usize].child_of(id),
                _ => None,
            };
            self.scratch.push(child);
        }
        std::mem::swap(&mut self.stack, &mut self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seqs: &[(&[u32], u64)]) -> Vec<(Vec<u32>, u64)> {
        seqs.iter().map(|(s, c)| (s.to_vec(), *c)).collect()
    }

    #[test]
    fn build_counts_match_hand_computation() {
        // "aab" with a=0, b=1 at depth 2: root counts a:2 b:1.
        let trie = ArenaTrie::build(2, &words(&[(&[0, 0, 1], 1)]));
        assert_eq!(trie.nodes[0].total, 3);
        assert_eq!(trie.nodes[0].count_of(0), Some(2));
        assert_eq!(trie.nodes[0].count_of(1), Some(1));
        // Context [a]: a once, b once.
        let a_node = trie.lookup(&[Some(0)]).unwrap();
        assert_eq!(trie.nodes[a_node as usize].total, 2);
        assert_eq!(trie.escape(a_node), Some(0.5));
        // Context [a, a]: b once.
        let aa = trie.lookup(&[Some(0), Some(0)]).unwrap();
        assert_eq!(trie.nodes[aa as usize].count_of(1), Some(1));
        assert_eq!(trie.lookup(&[Some(1), Some(1)]), None);
        assert_eq!(trie.lookup(&[None]), None);
    }

    #[test]
    fn multiplicity_equals_repeated_training() {
        let once_x3 = ArenaTrie::build(2, &words(&[(&[0, 1, 0], 3)]));
        let thrice =
            ArenaTrie::build(2, &words(&[(&[0, 1, 0], 1), (&[0, 1, 0], 1), (&[0, 1, 0], 1)]));
        // Counts agree even though the second build revisits the word.
        assert_eq!(once_x3.nodes[0].total, thrice.nodes[0].total);
        assert_eq!(once_x3.node_count(), thrice.node_count());
        assert_eq!(once_x3.edge_count(), thrice.edge_count());
        assert!(once_x3.approx_bytes() > 0);
    }

    #[test]
    fn cursor_stack_matches_root_walks() {
        let trie = ArenaTrie::build(2, &words(&[(&[0, 1, 2, 0, 1], 1)]));
        let seq = [0u32, 1, 2, 0, 1, 7];
        let mut cursor = Cursor::new(&trie);
        for (i, &sym) in seq.iter().enumerate() {
            let lo = i.saturating_sub(2);
            let ctx: Vec<Option<u32>> = seq[lo..i].iter().map(|&s| Some(s)).collect();
            // Stack computed by per-suffix root walks must equal the
            // cursor's incrementally maintained one.
            let mut stack = Vec::new();
            for k in 0..=ctx.len() {
                stack.push(trie.lookup(&ctx[ctx.len() - k..]));
            }
            let sym_opt = if sym < 7 { Some(sym) } else { None };
            let via_walk = trie.score_stack(&stack, sym_opt, 8);
            let via_cursor = cursor.prob(sym_opt, 8);
            assert_eq!(via_walk.to_bits(), via_cursor.to_bits(), "position {i}");
            cursor.advance(sym_opt);
        }
    }

    #[test]
    fn empty_trie_scores_uniform() {
        let trie = ArenaTrie::build(2, &[]);
        let cursor = Cursor::new(&trie);
        assert_eq!(cursor.prob(Some(0), 4), 0.25);
        assert_eq!(cursor.prob(None, 0), 1.0); // alphabet clamps to 1
        assert_eq!(trie.escape(0), None);
    }
}
