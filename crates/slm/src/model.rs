//! The PPM-C variable-order Markov model, arena-backed and interned.
//!
//! The public probability API is unchanged from the seed implementation
//! (which survives as [`crate::reference`] and serves as the equivalence
//! oracle), but the data plane is rebuilt around three ideas:
//!
//! 1. **Deduplicated training** — [`Slm::train`] stores each distinct
//!    sequence once with a multiplicity count. Stress binaries emit
//!    thousands of identical tracelet clones per type; every divergence
//!    loop now visits each distinct word once and weights by count.
//! 2. **Interned symbols** — a [`SymbolTable`] maps symbols to dense
//!    `u32` ids in `Ord` order (insertion-order independent), so the trie
//!    stores integers instead of cloned symbols.
//! 3. **Arena trie** — contexts live in one flat `Vec` of nodes with
//!    sorted edge lists and incrementally-maintained totals
//!    ([`crate::arena`]); sequence scoring slides a cursor instead of
//!    re-walking from the root per symbol.
//!
//! The interned index is built lazily on first query (training only
//! buffers sequences) and cached; further training invalidates it. All
//! probability results are bit-identical to the reference implementation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::OnceLock;

use crate::arena::{ArenaTrie, Cursor};
use crate::intern::SymbolTable;

/// Marker trait for symbols an [`Slm`] can model.
///
/// Blanket-implemented for any ordered, clonable, debuggable type; event
/// alphabets, `&'static str`, integers and interned ids all qualify.
pub trait Symbol: Clone + Ord + fmt::Debug {}

impl<T: Clone + Ord + fmt::Debug> Symbol for T {}

/// The lazily-built interned view of a trained model: symbol table, arena
/// trie, interned unique words, and per-alphabet word-evaluation tables.
pub(crate) struct Index<S: Symbol> {
    pub(crate) table: SymbolTable<S>,
    pub(crate) trie: ArenaTrie,
    /// Unique training words as id sequences with multiplicities, in the
    /// same sorted order as [`Slm::training`] iteration. Sorted ids mean
    /// the list is also lexicographically sorted by id sequence, so other
    /// models' translated words can be binary-searched against it.
    pub(crate) words: Vec<(Vec<u32>, u64)>,
    /// The word-evaluation table, built once per model on first use.
    eval: OnceLock<EvalTable>,
}

/// Scores of a model's own training words: the reusable "A-side" of every
/// divergence this model participates in. Computed **once per model** and
/// shared across all O(n²) pairs: own-word scoring never reaches the
/// order-(-1) `1/|Σ|` base case (every symbol of a training word has a
/// root count, so the escape chain always terminates at a count hit), so
/// the table is independent of the pair's union alphabet size — bit for
/// bit.
pub(crate) struct EvalTable {
    /// Per unique word (aligned with [`Index::words`]): `ln Pr(word)`.
    pub(crate) word_log_probs: Vec<f64>,
    /// Per unique word: the per-position conditional probabilities.
    pub(crate) pos_probs: Vec<Vec<f64>>,
    /// `Σ_w count(w) · ln Pr(w)` in word order.
    pub(crate) weighted_log_sum: f64,
    /// `Σ_w count(w) · len(w)` — total symbol occurrences incl. clones.
    pub(crate) weighted_positions: u64,
}

/// A trained statistical language model over symbols of type `S`.
///
/// See the [crate docs](crate) for the probability definition. Models
/// remember their training sequences (deduplicated, with multiplicities)
/// so that divergence word sets can be derived from them (see
/// [`word_set`](crate::word_set)).
///
/// # Example
///
/// ```
/// use rock_slm::Slm;
/// let mut m = Slm::new(2);
/// m.train(&['a', 'a', 'b']);
/// // 'a' follows 'a' once and 'b' follows 'a' once: total 2, distinct 2,
/// // so PPM-C gives each 1/(2+2) = 1/4, with 2/(2+2) = 1/2 escape mass.
/// let p = m.prob(&'b', &['a']);
/// assert!((p - 0.25).abs() < 1e-12);
/// ```
pub struct Slm<S: Symbol> {
    depth: usize,
    /// Distinct training sequences → multiplicity, sorted by sequence.
    training: BTreeMap<Vec<S>, u64>,
    /// Total `train` calls (clones included).
    trained_total: u64,
    alphabet: BTreeSet<S>,
    /// Interned arena view, built lazily and reset by further training.
    index: OnceLock<Index<S>>,
}

impl<S: Symbol> Slm<S> {
    /// Creates an untrained model with maximum context depth `depth`
    /// (the paper uses depth 2 in its running example).
    pub fn new(depth: usize) -> Self {
        Slm {
            depth,
            training: BTreeMap::new(),
            trained_total: 0,
            alphabet: BTreeSet::new(),
            index: OnceLock::new(),
        }
    }

    /// The maximum context depth `D`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Trains the model on one sequence. Call repeatedly for a training
    /// *set* (one call per tracelet). Duplicate sequences are stored once
    /// with a multiplicity count; counts in the context trie accumulate
    /// exactly as if every clone were stored.
    pub fn train(&mut self, seq: &[S]) {
        self.train_counted(seq, 1);
    }

    /// Trains the model on one sequence with an explicit multiplicity:
    /// equivalent to `count` calls to [`Slm::train`]. Training is
    /// order-independent (sorted map, additive counts), so a model
    /// rebuilt from `(sequence, count)` pairs — e.g. when restoring a
    /// persisted model — is bit-identical to the original.
    pub fn train_counted(&mut self, seq: &[S], count: u64) {
        if count == 0 {
            return;
        }
        self.alphabet.extend(seq.iter().cloned());
        *self.training.entry(seq.to_vec()).or_insert(0) += count;
        self.trained_total += count;
        self.index = OnceLock::new();
    }

    /// The interned view, building it on first use.
    pub(crate) fn index(&self) -> &Index<S> {
        self.index.get_or_init(|| {
            let table = SymbolTable::from_sorted_set(&self.alphabet);
            let words: Vec<(Vec<u32>, u64)> = self
                .training
                .iter()
                .map(|(seq, &count)| {
                    let ids = seq.iter().map(|s| table.id_of(s).expect("trained symbol")).collect();
                    (ids, count)
                })
                .collect();
            let trie = ArenaTrie::build(self.depth, &words);
            Index { table, trie, words, eval: OnceLock::new() }
        })
    }

    /// Forces the interned index (symbol table + arena trie) and the
    /// word-evaluation table to be built now. Queries do this lazily; the
    /// pipeline calls it inside the parallel training stage so the build
    /// cost lands there, not in the first divergence.
    pub fn finalize(&self) {
        self.eval_table();
    }

    /// The word-evaluation table: every unique training word scored once
    /// under this model. Built lazily, once per model — own-word scores
    /// never depend on the alphabet size (see [`EvalTable`]), so one
    /// table serves every pair this model appears in.
    pub(crate) fn eval_table(&self) -> &EvalTable {
        let idx = self.index();
        idx.eval.get_or_init(|| {
            let mut word_log_probs = Vec::with_capacity(idx.words.len());
            let mut pos_probs = Vec::with_capacity(idx.words.len());
            let mut weighted_log_sum = 0.0;
            let mut weighted_positions = 0u64;
            let mut cursor = Cursor::new(&idx.trie);
            for (word, count) in &idx.words {
                cursor.reset();
                let mut lp = 0.0;
                let mut probs = Vec::with_capacity(word.len());
                for &id in word {
                    // The alphabet size passed here is irrelevant: `id`
                    // is a trained symbol, so the order-(-1) base case is
                    // unreachable.
                    let p = cursor.prob(Some(id), 1);
                    probs.push(p);
                    lp += p.ln();
                    cursor.advance(Some(id));
                }
                word_log_probs.push(lp);
                pos_probs.push(probs);
                weighted_log_sum += *count as f64 * lp;
                weighted_positions += count * word.len() as u64;
            }
            EvalTable { word_log_probs, pos_probs, weighted_log_sum, weighted_positions }
        })
    }

    /// Number of distinct symbols observed in training.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet.len()
    }

    /// Iterates over the observed alphabet in `Ord` order.
    pub fn alphabet(&self) -> impl Iterator<Item = &S> {
        self.alphabet.iter()
    }

    /// The interned symbol table (built on first call).
    pub fn symbol_table(&self) -> &SymbolTable<S> {
        &self.index().table
    }

    /// The distinct sequences this model was trained on, with their
    /// multiplicities, in sorted order.
    pub fn training(&self) -> impl Iterator<Item = (&[S], u64)> {
        self.training.iter().map(|(seq, &count)| (seq.as_slice(), count))
    }

    /// Number of distinct training sequences.
    pub fn unique_training_len(&self) -> usize {
        self.training.len()
    }

    /// Total number of [`Slm::train`] calls, duplicate clones included.
    pub fn training_total(&self) -> u64 {
        self.trained_total
    }

    /// Returns `true` if the model has seen no training data.
    pub fn is_untrained(&self) -> bool {
        self.training.is_empty()
    }

    /// Number of context nodes in the arena trie (builds the index).
    pub fn node_count(&self) -> usize {
        self.index().trie.node_count()
    }

    /// Number of context-trie edges (builds the index).
    pub fn edge_count(&self) -> usize {
        self.index().trie.edge_count()
    }

    /// Approximate resident bytes of the interned trie (builds the index).
    pub fn approx_trie_bytes(&self) -> usize {
        self.index().trie.approx_bytes()
    }

    /// `Pr(sym | context)` using the model's own alphabet size for the
    /// order-(-1) base case.
    pub fn prob(&self, sym: &S, context: &[S]) -> f64 {
        self.prob_with_alphabet(sym, context, self.alphabet.len().max(1))
    }

    /// `Pr(sym | context)` with an explicit alphabet size — used when two
    /// models are compared over their *union* alphabet, so that both
    /// assign comparable base probabilities to symbols unseen by one.
    pub fn prob_with_alphabet(&self, sym: &S, context: &[S], alphabet_size: usize) -> f64 {
        let idx = self.index();
        let n = alphabet_size.max(1);
        // Truncate the context to the model depth (longest suffix).
        let ctx = if context.len() > self.depth {
            &context[context.len() - self.depth..]
        } else {
            context
        };
        let ids = idx.table.intern_seq(ctx);
        // Suffix-node stack, shortest suffix first.
        let mut stack = Vec::with_capacity(ids.len() + 1);
        for k in 0..=ids.len() {
            stack.push(idx.trie.lookup(&ids[ids.len() - k..]));
        }
        idx.trie.score_stack(&stack, idx.table.id_of(sym), n)
    }

    /// Probability of a whole sequence: `∏ Pr(x_i | x_{i-D}..x_{i-1})`.
    pub fn sequence_prob(&self, seq: &[S]) -> f64 {
        self.sequence_prob_with_alphabet(seq, self.alphabet.len().max(1))
    }

    /// [`Slm::sequence_prob`] with an explicit alphabet size.
    pub fn sequence_prob_with_alphabet(&self, seq: &[S], alphabet_size: usize) -> f64 {
        self.sequence_log_prob_with_alphabet(seq, alphabet_size).exp()
    }

    /// Natural-log probability of a sequence (numerically safe for long
    /// sequences).
    pub fn sequence_log_prob(&self, seq: &[S]) -> f64 {
        self.sequence_log_prob_with_alphabet(seq, self.alphabet.len().max(1))
    }

    /// [`Slm::sequence_log_prob`] with an explicit alphabet size. One
    /// trie descent for the whole sequence: the context window slides via
    /// a [`Cursor`] instead of re-walking from the root per symbol.
    pub fn sequence_log_prob_with_alphabet(&self, seq: &[S], alphabet_size: usize) -> f64 {
        let idx = self.index();
        let n = alphabet_size.max(1);
        let mut cursor = Cursor::new(&idx.trie);
        let mut lp = 0.0;
        for sym in seq {
            let id = idx.table.id_of(sym);
            lp += cursor.prob(id, n).ln();
            cursor.advance(id);
        }
        lp
    }

    /// Scores a word already translated into this model's id space
    /// (`None` marks symbols outside the alphabet).
    pub(crate) fn score_ids(&self, ids: &[Option<u32>], n: usize) -> f64 {
        let idx = self.index();
        let mut cursor = Cursor::new(&idx.trie);
        let mut lp = 0.0;
        for &id in ids {
            lp += cursor.prob(id, n).ln();
            cursor.advance(id);
        }
        lp
    }

    /// The escape probability mass at a given context (PPM-C:
    /// `d / (T + d)`), or `None` if the context was never observed.
    pub fn escape_prob(&self, context: &[S]) -> Option<f64> {
        let idx = self.index();
        let ids = idx.table.intern_seq(context);
        let node = idx.trie.lookup(&ids)?;
        idx.trie.escape(node)
    }
}

impl<S: Symbol> Clone for Slm<S> {
    fn clone(&self) -> Self {
        // The interned index is derived state; the clone rebuilds it
        // lazily on first query.
        Slm {
            depth: self.depth,
            training: self.training.clone(),
            trained_total: self.trained_total,
            alphabet: self.alphabet.clone(),
            index: OnceLock::new(),
        }
    }
}

impl<S: Symbol> PartialEq for Slm<S> {
    fn eq(&self, other: &Self) -> bool {
        self.depth == other.depth
            && self.training == other.training
            && self.trained_total == other.trained_total
    }
}

impl<S: Symbol> fmt::Debug for Slm<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slm")
            .field("depth", &self.depth)
            .field("alphabet_len", &self.alphabet.len())
            .field("unique_words", &self.training.len())
            .field("trained_total", &self.trained_total)
            .field("indexed", &self.index.get().is_some())
            .finish()
    }
}

impl<S: Symbol> fmt::Display for Slm<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slm(depth={}, |Σ|={}, {} training sequences)",
            self.depth,
            self.alphabet.len(),
            self.trained_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_is_uniform() {
        let m: Slm<char> = Slm::new(2);
        assert!(m.is_untrained());
        // alphabet size clamps to 1.
        assert!((m.prob(&'x', &[]) - 1.0).abs() < 1e-12);
        assert!((m.prob_with_alphabet(&'x', &[], 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn order0_counts_with_escape() {
        let mut m = Slm::new(2);
        m.train(&['a', 'a', 'b']);
        // Order-0: a seen twice, b once; total 3, distinct 2.
        assert!((m.prob(&'a', &[]) - 2.0 / 5.0).abs() < 1e-12);
        assert!((m.prob(&'b', &[]) - 1.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.escape_prob(&[]), Some(2.0 / 5.0));
    }

    #[test]
    fn paper_training_example() {
        // Paper §3.1: sequences "aa" and "ab" — 'a' appears first with
        // certainty; after 'a', 'a' appears 50% of the time.
        let mut m = Slm::new(2);
        m.train(&['a', 'a']);
        m.train(&['a', 'b']);
        // After context 'a': counts a=1, b=1 → PPM-C gives 1/4 each with
        // 1/2 escape; the *ratio* between them is 1 (i.e. 50/50).
        let pa = m.prob(&'a', &['a']);
        let pb = m.prob(&'b', &['a']);
        assert!((pa - pb).abs() < 1e-12, "a and b equally likely after a");
        assert!((pa - 0.25).abs() < 1e-12);
    }

    #[test]
    fn escape_backs_off_to_shorter_context() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b', 'c']);
        // Context [a]: only b seen. Pr(c|[a]) = escape([a]) * Pr(c|[]).
        let esc = m.escape_prob(&['a']).unwrap();
        let p_c0 = m.prob(&'c', &[]);
        let p = m.prob(&'c', &['a']);
        assert!((p - esc * p_c0).abs() < 1e-12);
    }

    #[test]
    fn unseen_context_skips_escape() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b']);
        // Context [z] never seen: fall straight to order-0.
        assert!((m.prob(&'a', &['z']) - m.prob(&'a', &[])).abs() < 1e-12);
        assert_eq!(m.escape_prob(&['z']), None);
    }

    #[test]
    fn long_contexts_are_truncated_to_depth() {
        let mut m = Slm::new(1);
        m.train(&['a', 'b', 'a', 'b']);
        let with_long = m.prob(&'b', &['x', 'y', 'z', 'a']);
        let with_short = m.prob(&'b', &['a']);
        assert!((with_long - with_short).abs() < 1e-12);
    }

    #[test]
    fn probabilities_form_submeasure() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b', 'a', 'c', 'a', 'b']);
        for ctx in [vec![], vec!['a'], vec!['b'], vec!['a', 'b'], vec!['z']] {
            let sum: f64 = ['a', 'b', 'c'].iter().map(|s| m.prob(s, &ctx)).sum();
            assert!(sum <= 1.0 + 1e-9, "context {ctx:?} sums to {sum}");
            for s in ['a', 'b', 'c'] {
                let p = m.prob(&s, &ctx);
                assert!(p > 0.0 && p <= 1.0);
            }
        }
    }

    #[test]
    fn sequence_probability_multiplies() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b']);
        let p_manual = m.prob(&'a', &[]) * m.prob(&'b', &['a']);
        assert!((m.sequence_prob(&['a', 'b']) - p_manual).abs() < 1e-12);
        let lp = m.sequence_log_prob(&['a', 'b']);
        assert!((lp.exp() - p_manual).abs() < 1e-12);
    }

    #[test]
    fn trained_sequences_more_likely_than_foreign() {
        let mut m = Slm::new(3);
        for _ in 0..4 {
            m.train(&['f', '0', 'f', '0', 'f', '0']);
        }
        let own = m.sequence_log_prob(&['f', '0', 'f', '0']);
        let foreign = m.sequence_log_prob(&['0', 'f', '0', '0']);
        assert!(own > foreign);
    }

    #[test]
    fn training_is_remembered_and_deduplicated() {
        let mut m = Slm::new(2);
        m.train(&[1, 2, 3]);
        m.train(&[4]);
        m.train(&[1, 2, 3]);
        // Three calls, two distinct sequences; the duplicate carries
        // multiplicity 2 and training iterates in sorted order.
        assert_eq!(m.training_total(), 3);
        assert_eq!(m.unique_training_len(), 2);
        let words: Vec<(Vec<i32>, u64)> =
            m.training().map(|(seq, count)| (seq.to_vec(), count)).collect();
        assert_eq!(words, vec![(vec![1, 2, 3], 2), (vec![4], 1)]);
        assert_eq!(m.alphabet_len(), 4);
        assert_eq!(m.alphabet().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert!(!m.is_untrained());
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn duplicate_training_matches_explicit_clones() {
        // Counts with multiplicity must equal the clone-by-clone seed
        // behaviour, so probabilities agree exactly.
        let mut dup = Slm::new(2);
        let mut explicit = Slm::new(2);
        for _ in 0..5 {
            dup.train(&['a', 'b', 'a']);
            explicit.train(&['a', 'b', 'a']);
        }
        dup.train(&['b', 'c']);
        explicit.train(&['b', 'c']);
        for (sym, ctx) in [('a', vec![]), ('b', vec!['a']), ('c', vec!['b']), ('c', vec!['a'])] {
            assert_eq!(dup.prob(&sym, &ctx).to_bits(), explicit.prob(&sym, &ctx).to_bits());
        }
    }

    #[test]
    fn interner_ids_are_insertion_order_independent() {
        let mut fwd = Slm::new(2);
        fwd.train(&['a', 'c']);
        fwd.train(&['b']);
        let mut rev = Slm::new(2);
        rev.train(&['b']);
        rev.train(&['a', 'c']);
        assert_eq!(fwd.symbol_table(), rev.symbol_table());
        assert_eq!(fwd.symbol_table().id_of(&'b'), Some(1));
    }

    #[test]
    fn clone_and_eq_cover_derived_state() {
        let mut m = Slm::new(2);
        m.train(&['x', 'y']);
        m.finalize();
        let c = m.clone();
        assert_eq!(m, c);
        assert_eq!(m.prob(&'y', &['x']).to_bits(), c.prob(&'y', &['x']).to_bits());
        assert!(format!("{m:?}").contains("depth"));
        // Training after queries invalidates and rebuilds the index.
        let before = m.node_count();
        m.train(&['x', 'z', 'y']);
        assert!(m.node_count() > before);
        assert_ne!(m, c);
    }

    #[test]
    fn trie_counters_are_exposed() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b', 'a']);
        assert!(m.node_count() >= 4);
        assert!(m.edge_count() >= 3);
        assert!(m.approx_trie_bytes() > 0);
    }

    #[test]
    fn display() {
        let mut m = Slm::new(2);
        m.train(&['x']);
        assert_eq!(m.to_string(), "slm(depth=2, |Σ|=1, 1 training sequences)");
    }

    #[test]
    fn depth_zero_is_unigram() {
        let mut m = Slm::new(0);
        m.train(&['a', 'a', 'b']);
        assert!((m.prob(&'a', &['b']) - m.prob(&'a', &[])).abs() < 1e-12);
    }
}
