//! The PPM-C variable-order Markov model.

use std::collections::BTreeMap;
use std::fmt;

/// Marker trait for symbols an [`Slm`] can model.
///
/// Blanket-implemented for any ordered, clonable, debuggable type; event
/// alphabets, `&'static str`, integers and interned ids all qualify.
pub trait Symbol: Clone + Ord + fmt::Debug {}

impl<T: Clone + Ord + fmt::Debug> Symbol for T {}

/// One context node of the trie: counts of symbols seen *after* this
/// context, plus child contexts (one level deeper).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Node<S: Symbol> {
    counts: BTreeMap<S, u64>,
    children: BTreeMap<S, Node<S>>,
}

impl<S: Symbol> Default for Node<S> {
    fn default() -> Self {
        Node { counts: BTreeMap::new(), children: BTreeMap::new() }
    }
}

impl<S: Symbol> Node<S> {
    fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    fn distinct(&self) -> u64 {
        self.counts.len() as u64
    }
}

/// A trained statistical language model over symbols of type `S`.
///
/// See the [crate docs](crate) for the probability definition. Models
/// remember their training sequences so that divergence word sets can be
/// derived from them (see [`word_set`](crate::word_set)).
///
/// # Example
///
/// ```
/// use rock_slm::Slm;
/// let mut m = Slm::new(2);
/// m.train(&['a', 'a', 'b']);
/// // 'a' follows 'a' once and 'b' follows 'a' once: total 2, distinct 2,
/// // so PPM-C gives each 1/(2+2) = 1/4, with 2/(2+2) = 1/2 escape mass.
/// let p = m.prob(&'b', &['a']);
/// assert!((p - 0.25).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Slm<S: Symbol> {
    depth: usize,
    root: Node<S>,
    training: Vec<Vec<S>>,
    alphabet: std::collections::BTreeSet<S>,
}

impl<S: Symbol> Slm<S> {
    /// Creates an untrained model with maximum context depth `depth`
    /// (the paper uses depth 2 in its running example).
    pub fn new(depth: usize) -> Self {
        Slm {
            depth,
            root: Node::default(),
            training: Vec::new(),
            alphabet: std::collections::BTreeSet::new(),
        }
    }

    /// The maximum context depth `D`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Trains the model on one sequence. Call repeatedly for a training
    /// *set* (one call per tracelet).
    pub fn train(&mut self, seq: &[S]) {
        for (i, sym) in seq.iter().enumerate() {
            self.alphabet.insert(sym.clone());
            // Update the counts of every context suffix of length 0..=D.
            let lo = i.saturating_sub(self.depth);
            for start in lo..=i {
                let ctx = &seq[start..i];
                let node = self.node_mut(ctx);
                *node.counts.entry(sym.clone()).or_insert(0) += 1;
            }
        }
        self.training.push(seq.to_vec());
    }

    fn node_mut(&mut self, ctx: &[S]) -> &mut Node<S> {
        let mut node = &mut self.root;
        // Context trie is keyed oldest-symbol-first.
        for sym in ctx {
            node = node.children.entry(sym.clone()).or_default();
        }
        node
    }

    fn node(&self, ctx: &[S]) -> Option<&Node<S>> {
        let mut node = &self.root;
        for sym in ctx {
            node = node.children.get(sym)?;
        }
        Some(node)
    }

    /// Number of distinct symbols observed in training.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet.len()
    }

    /// Iterates over the observed alphabet.
    pub fn alphabet(&self) -> impl Iterator<Item = &S> {
        self.alphabet.iter()
    }

    /// The sequences this model was trained on.
    pub fn training(&self) -> &[Vec<S>] {
        &self.training
    }

    /// Returns `true` if the model has seen no training data.
    pub fn is_untrained(&self) -> bool {
        self.training.is_empty()
    }

    /// `Pr(sym | context)` using the model's own alphabet size for the
    /// order-(-1) base case.
    pub fn prob(&self, sym: &S, context: &[S]) -> f64 {
        self.prob_with_alphabet(sym, context, self.alphabet.len().max(1))
    }

    /// `Pr(sym | context)` with an explicit alphabet size — used when two
    /// models are compared over their *union* alphabet, so that both
    /// assign comparable base probabilities to symbols unseen by one.
    pub fn prob_with_alphabet(&self, sym: &S, context: &[S], alphabet_size: usize) -> f64 {
        let n = alphabet_size.max(1);
        // Truncate the context to the model depth (longest suffix).
        let ctx = if context.len() > self.depth {
            &context[context.len() - self.depth..]
        } else {
            context
        };
        self.prob_rec(sym, ctx, n)
    }

    fn prob_rec(&self, sym: &S, ctx: &[S], n: usize) -> f64 {
        if let Some(node) = self.node(ctx) {
            let total = node.total();
            if total > 0 {
                let d = node.distinct();
                if let Some(c) = node.counts.get(sym) {
                    return *c as f64 / (total + d) as f64;
                }
                let escape = d as f64 / (total + d) as f64;
                return escape * self.shorter(sym, ctx, n);
            }
        }
        // Context never observed: back off without paying escape.
        self.shorter(sym, ctx, n)
    }

    fn shorter(&self, sym: &S, ctx: &[S], n: usize) -> f64 {
        if ctx.is_empty() {
            1.0 / n as f64
        } else {
            self.prob_rec(sym, &ctx[1..], n)
        }
    }

    /// Probability of a whole sequence: `∏ Pr(x_i | x_{i-D}..x_{i-1})`.
    pub fn sequence_prob(&self, seq: &[S]) -> f64 {
        self.sequence_prob_with_alphabet(seq, self.alphabet.len().max(1))
    }

    /// [`Slm::sequence_prob`] with an explicit alphabet size.
    pub fn sequence_prob_with_alphabet(&self, seq: &[S], alphabet_size: usize) -> f64 {
        self.sequence_log_prob_with_alphabet(seq, alphabet_size).exp()
    }

    /// Natural-log probability of a sequence (numerically safe for long
    /// sequences).
    pub fn sequence_log_prob(&self, seq: &[S]) -> f64 {
        self.sequence_log_prob_with_alphabet(seq, self.alphabet.len().max(1))
    }

    /// [`Slm::sequence_log_prob`] with an explicit alphabet size.
    pub fn sequence_log_prob_with_alphabet(&self, seq: &[S], alphabet_size: usize) -> f64 {
        let mut lp = 0.0;
        for i in 0..seq.len() {
            let lo = i.saturating_sub(self.depth);
            lp += self.prob_with_alphabet(&seq[i], &seq[lo..i], alphabet_size).ln();
        }
        lp
    }

    /// The escape probability mass at a given context (PPM-C:
    /// `d / (T + d)`), or `None` if the context was never observed.
    pub fn escape_prob(&self, context: &[S]) -> Option<f64> {
        let node = self.node(context)?;
        let total = node.total();
        if total == 0 {
            return None;
        }
        let d = node.distinct();
        Some(d as f64 / (total + d) as f64)
    }
}

impl<S: Symbol> fmt::Display for Slm<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slm(depth={}, |Σ|={}, {} training sequences)",
            self.depth,
            self.alphabet.len(),
            self.training.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_is_uniform() {
        let m: Slm<char> = Slm::new(2);
        assert!(m.is_untrained());
        // alphabet size clamps to 1.
        assert!((m.prob(&'x', &[]) - 1.0).abs() < 1e-12);
        assert!((m.prob_with_alphabet(&'x', &[], 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn order0_counts_with_escape() {
        let mut m = Slm::new(2);
        m.train(&['a', 'a', 'b']);
        // Order-0: a seen twice, b once; total 3, distinct 2.
        assert!((m.prob(&'a', &[]) - 2.0 / 5.0).abs() < 1e-12);
        assert!((m.prob(&'b', &[]) - 1.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.escape_prob(&[]), Some(2.0 / 5.0));
    }

    #[test]
    fn paper_training_example() {
        // Paper §3.1: sequences "aa" and "ab" — 'a' appears first with
        // certainty; after 'a', 'a' appears 50% of the time.
        let mut m = Slm::new(2);
        m.train(&['a', 'a']);
        m.train(&['a', 'b']);
        // After context 'a': counts a=1, b=1 → PPM-C gives 1/4 each with
        // 1/2 escape; the *ratio* between them is 1 (i.e. 50/50).
        let pa = m.prob(&'a', &['a']);
        let pb = m.prob(&'b', &['a']);
        assert!((pa - pb).abs() < 1e-12, "a and b equally likely after a");
        assert!((pa - 0.25).abs() < 1e-12);
    }

    #[test]
    fn escape_backs_off_to_shorter_context() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b', 'c']);
        // Context [a]: only b seen. Pr(c|[a]) = escape([a]) * Pr(c|[]).
        let esc = m.escape_prob(&['a']).unwrap();
        let p_c0 = m.prob(&'c', &[]);
        let p = m.prob(&'c', &['a']);
        assert!((p - esc * p_c0).abs() < 1e-12);
    }

    #[test]
    fn unseen_context_skips_escape() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b']);
        // Context [z] never seen: fall straight to order-0.
        assert!((m.prob(&'a', &['z']) - m.prob(&'a', &[])).abs() < 1e-12);
        assert_eq!(m.escape_prob(&['z']), None);
    }

    #[test]
    fn long_contexts_are_truncated_to_depth() {
        let mut m = Slm::new(1);
        m.train(&['a', 'b', 'a', 'b']);
        let with_long = m.prob(&'b', &['x', 'y', 'z', 'a']);
        let with_short = m.prob(&'b', &['a']);
        assert!((with_long - with_short).abs() < 1e-12);
    }

    #[test]
    fn probabilities_form_submeasure() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b', 'a', 'c', 'a', 'b']);
        for ctx in [vec![], vec!['a'], vec!['b'], vec!['a', 'b'], vec!['z']] {
            let sum: f64 = ['a', 'b', 'c'].iter().map(|s| m.prob(s, &ctx)).sum();
            assert!(sum <= 1.0 + 1e-9, "context {ctx:?} sums to {sum}");
            for s in ['a', 'b', 'c'] {
                let p = m.prob(&s, &ctx);
                assert!(p > 0.0 && p <= 1.0);
            }
        }
    }

    #[test]
    fn sequence_probability_multiplies() {
        let mut m = Slm::new(2);
        m.train(&['a', 'b']);
        let p_manual = m.prob(&'a', &[]) * m.prob(&'b', &['a']);
        assert!((m.sequence_prob(&['a', 'b']) - p_manual).abs() < 1e-12);
        let lp = m.sequence_log_prob(&['a', 'b']);
        assert!((lp.exp() - p_manual).abs() < 1e-12);
    }

    #[test]
    fn trained_sequences_more_likely_than_foreign() {
        let mut m = Slm::new(3);
        for _ in 0..4 {
            m.train(&['f', '0', 'f', '0', 'f', '0']);
        }
        let own = m.sequence_log_prob(&['f', '0', 'f', '0']);
        let foreign = m.sequence_log_prob(&['0', 'f', '0', '0']);
        assert!(own > foreign);
    }

    #[test]
    fn training_is_remembered() {
        let mut m = Slm::new(2);
        m.train(&[1, 2, 3]);
        m.train(&[4]);
        assert_eq!(m.training().len(), 2);
        assert_eq!(m.alphabet_len(), 4);
        assert_eq!(m.alphabet().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert!(!m.is_untrained());
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn display() {
        let mut m = Slm::new(2);
        m.train(&['x']);
        assert_eq!(m.to_string(), "slm(depth=2, |Σ|=1, 1 training sequences)");
    }

    #[test]
    fn depth_zero_is_unigram() {
        let mut m = Slm::new(0);
        m.train(&['a', 'a', 'b']);
        assert!((m.prob(&'a', &['b']) - m.prob(&'a', &[])).abs() < 1e-12);
    }
}
