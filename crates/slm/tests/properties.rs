//! Property-based tests for the PPM-C model and divergences.

use proptest::prelude::*;
use rock_slm::{js_divergence, kl_divergence, Slm};

fn arb_seq() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..6, 1..20)
}

fn arb_training() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(arb_seq(), 1..8)
}

fn trained(depth: usize, seqs: &[Vec<u8>]) -> Slm<u8> {
    let mut m = Slm::new(depth);
    for s in seqs {
        m.train(s);
    }
    m
}

proptest! {
    /// Every conditional probability lies in (0, 1].
    #[test]
    fn probabilities_are_valid(seqs in arb_training(), ctx in prop::collection::vec(0u8..6, 0..4), sym in 0u8..6) {
        let m = trained(2, &seqs);
        let p = m.prob(&sym, &ctx);
        prop_assert!(p > 0.0, "p = {p}");
        prop_assert!(p <= 1.0, "p = {p}");
    }

    /// The conditional distribution over the (shared) alphabet is a
    /// sub-measure: PPM without exclusion may leak mass, never exceed 1.
    /// The query must use the same alphabet size as the summation range.
    #[test]
    fn conditional_sums_to_at_most_one(seqs in arb_training(), ctx in prop::collection::vec(0u8..6, 0..3)) {
        let m = trained(2, &seqs);
        let sum: f64 = (0u8..6).map(|s| m.prob_with_alphabet(&s, &ctx, 6)).sum();
        prop_assert!(sum <= 1.0 + 1e-9, "sum = {sum}");
    }

    /// Sequence log-probability equals the sum of conditional logs.
    #[test]
    fn sequence_prob_factorizes(seqs in arb_training(), query in arb_seq()) {
        let m = trained(3, &seqs);
        let mut manual = 0.0;
        for i in 0..query.len() {
            let lo = i.saturating_sub(3);
            manual += m.prob(&query[i], &query[lo..i]).ln();
        }
        let got = m.sequence_log_prob(&query);
        prop_assert!((got - manual).abs() < 1e-9);
    }

    /// Self-divergence is exactly zero; divergence to a different model is
    /// finite.
    #[test]
    fn kl_self_zero_and_finite(seqs_a in arb_training(), seqs_b in arb_training()) {
        let a = trained(2, &seqs_a);
        let b = trained(2, &seqs_b);
        prop_assert!(kl_divergence(&a, &a).abs() < 1e-12);
        prop_assert!(kl_divergence(&a, &b).is_finite());
    }

    /// JS divergence is symmetric and non-negative.
    #[test]
    fn js_symmetric_nonnegative(seqs_a in arb_training(), seqs_b in arb_training()) {
        let a = trained(2, &seqs_a);
        let b = trained(2, &seqs_b);
        let ab = js_divergence(&a, &b);
        let ba = js_divergence(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= -1e-12);
    }

    /// Training on more copies of a sequence raises (or keeps) its
    /// probability relative to an untrained competitor sequence.
    #[test]
    fn repetition_reinforces(seq in arb_seq()) {
        let mut m1 = Slm::new(2);
        m1.train(&seq);
        let mut m5 = Slm::new(2);
        for _ in 0..5 {
            m5.train(&seq);
        }
        let p1 = m1.sequence_log_prob(&seq);
        let p5 = m5.sequence_log_prob(&seq);
        prop_assert!(p5 >= p1 - 1e-9, "p5 = {p5}, p1 = {p1}");
    }

    /// Depth-0 models ignore context entirely.
    #[test]
    fn depth_zero_ignores_context(seqs in arb_training(), sym in 0u8..6, ctx in prop::collection::vec(0u8..6, 1..4)) {
        let m = trained(0, &seqs);
        prop_assert!((m.prob(&sym, &ctx) - m.prob(&sym, &[])).abs() < 1e-12);
    }
}
