//! Property-based tests for the PPM-C model and divergences, including
//! the bit-exact equivalence oracle: the arena-backed [`Slm`] must agree
//! with the seed `BTreeMap` implementation ([`rock_slm::reference`]) on
//! every probability — to exact `f64` bits, unknown symbols included.

use proptest::prelude::*;
use rock_slm::reference::ReferenceSlm;
use rock_slm::{js_distance, js_divergence, kl_divergence, union_alphabet_len, Metric, Slm};

fn arb_seq() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..6, 1..20)
}

fn arb_training() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(arb_seq(), 1..8)
}

fn trained(depth: usize, seqs: &[Vec<u8>]) -> Slm<u8> {
    let mut m = Slm::new(depth);
    for s in seqs {
        m.train(s);
    }
    m
}

fn ref_trained(depth: usize, seqs: &[Vec<u8>]) -> ReferenceSlm<u8> {
    let mut m = ReferenceSlm::new(depth);
    for s in seqs {
        m.train(s);
    }
    m
}

/// The canonical weighted accumulation over `a`'s deduplicated sorted
/// words, with every probability drawn from the *reference* models: the
/// oracle value [`kl_divergence`] must reproduce bit for bit.
fn ref_canonical_kl(a: &Slm<u8>, ra: &ReferenceSlm<u8>, rb: &ReferenceSlm<u8>, n: usize) -> f64 {
    let mut sum_a = 0.0;
    let mut sum_b = 0.0;
    let mut positions = 0u64;
    for (w, cnt) in a.training() {
        sum_a += cnt as f64 * ra.sequence_log_prob_with_alphabet(w, n);
        sum_b += cnt as f64 * rb.sequence_log_prob_with_alphabet(w, n);
        positions += cnt * w.len() as u64;
    }
    if positions == 0 {
        0.0
    } else {
        (sum_a - sum_b) / positions as f64
    }
}

/// Reference-composed `D(A ‖ ½(A+B))` over `a`'s words (one JS half).
fn ref_canonical_klm(a: &Slm<u8>, ra: &ReferenceSlm<u8>, rb: &ReferenceSlm<u8>, n: usize) -> f64 {
    let mut total = 0.0;
    let mut positions = 0u64;
    for (w, cnt) in a.training() {
        let mut wsum = 0.0;
        for i in 0..w.len() {
            let pa = ra.prob_with_alphabet(&w[i], &w[..i], n);
            let pb = rb.prob_with_alphabet(&w[i], &w[..i], n);
            let pm = 0.5 * (pa + pb);
            wsum += (pa / pm).ln();
        }
        total += cnt as f64 * wsum;
        positions += cnt * w.len() as u64;
    }
    if positions == 0 {
        0.0
    } else {
        total / positions as f64
    }
}

proptest! {
    /// Every conditional probability lies in (0, 1].
    #[test]
    fn probabilities_are_valid(seqs in arb_training(), ctx in prop::collection::vec(0u8..6, 0..4), sym in 0u8..6) {
        let m = trained(2, &seqs);
        let p = m.prob(&sym, &ctx);
        prop_assert!(p > 0.0, "p = {p}");
        prop_assert!(p <= 1.0, "p = {p}");
    }

    /// The conditional distribution over the (shared) alphabet is a
    /// sub-measure: PPM without exclusion may leak mass, never exceed 1.
    /// The query must use the same alphabet size as the summation range.
    #[test]
    fn conditional_sums_to_at_most_one(seqs in arb_training(), ctx in prop::collection::vec(0u8..6, 0..3)) {
        let m = trained(2, &seqs);
        let sum: f64 = (0u8..6).map(|s| m.prob_with_alphabet(&s, &ctx, 6)).sum();
        prop_assert!(sum <= 1.0 + 1e-9, "sum = {sum}");
    }

    /// Sequence log-probability equals the sum of conditional logs.
    #[test]
    fn sequence_prob_factorizes(seqs in arb_training(), query in arb_seq()) {
        let m = trained(3, &seqs);
        let mut manual = 0.0;
        for i in 0..query.len() {
            let lo = i.saturating_sub(3);
            manual += m.prob(&query[i], &query[lo..i]).ln();
        }
        let got = m.sequence_log_prob(&query);
        prop_assert!((got - manual).abs() < 1e-9);
    }

    /// Self-divergence is exactly zero; divergence to a different model is
    /// finite.
    #[test]
    fn kl_self_zero_and_finite(seqs_a in arb_training(), seqs_b in arb_training()) {
        let a = trained(2, &seqs_a);
        let b = trained(2, &seqs_b);
        prop_assert!(kl_divergence(&a, &a).abs() < 1e-12);
        prop_assert!(kl_divergence(&a, &b).is_finite());
    }

    /// JS divergence is symmetric and non-negative.
    #[test]
    fn js_symmetric_nonnegative(seqs_a in arb_training(), seqs_b in arb_training()) {
        let a = trained(2, &seqs_a);
        let b = trained(2, &seqs_b);
        let ab = js_divergence(&a, &b);
        let ba = js_divergence(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= -1e-12);
    }

    /// Training on more copies of a sequence raises (or keeps) its
    /// probability relative to an untrained competitor sequence.
    #[test]
    fn repetition_reinforces(seq in arb_seq()) {
        let mut m1 = Slm::new(2);
        m1.train(&seq);
        let mut m5 = Slm::new(2);
        for _ in 0..5 {
            m5.train(&seq);
        }
        let p1 = m1.sequence_log_prob(&seq);
        let p5 = m5.sequence_log_prob(&seq);
        prop_assert!(p5 >= p1 - 1e-9, "p5 = {p5}, p1 = {p1}");
    }

    /// Depth-0 models ignore context entirely.
    #[test]
    fn depth_zero_ignores_context(seqs in arb_training(), sym in 0u8..6, ctx in prop::collection::vec(0u8..6, 1..4)) {
        let m = trained(0, &seqs);
        prop_assert!((m.prob(&sym, &ctx) - m.prob(&sym, &[])).abs() < 1e-12);
    }

    /// Oracle equivalence: `prob_with_alphabet` agrees with the seed
    /// implementation to exact f64 bits — including symbols and context
    /// entries (6 and 7) the model has never seen, and alphabet sizes
    /// both smaller and larger than the observed alphabet.
    #[test]
    fn arena_prob_matches_reference_bits(
        seqs in arb_training(),
        depth in 0usize..4,
        sym in 0u8..8,
        ctx in prop::collection::vec(0u8..8, 0..5),
        n in 1usize..12,
    ) {
        let arena = trained(depth, &seqs);
        let seed = ref_trained(depth, &seqs);
        let pa = arena.prob_with_alphabet(&sym, &ctx, n);
        let pr = seed.prob_with_alphabet(&sym, &ctx, n);
        prop_assert_eq!(pa.to_bits(), pr.to_bits(), "prob {} vs {}", pa, pr);
    }

    /// Oracle equivalence: the cursor-based one-pass sequence scorer
    /// agrees with the seed's per-symbol root walks to exact f64 bits.
    #[test]
    fn arena_sequence_log_prob_matches_reference_bits(
        seqs in arb_training(),
        depth in 0usize..4,
        query in prop::collection::vec(0u8..8, 0..24),
        n in 1usize..12,
    ) {
        let arena = trained(depth, &seqs);
        let seed = ref_trained(depth, &seqs);
        let la = arena.sequence_log_prob_with_alphabet(&query, n);
        let lr = seed.sequence_log_prob_with_alphabet(&query, n);
        prop_assert_eq!(la.to_bits(), lr.to_bits(), "log prob {} vs {}", la, lr);
    }

    /// Oracle equivalence for all three metrics: every divergence equals
    /// the canonical weighted accumulation composed from *reference*
    /// model probabilities, to exact f64 bits.
    #[test]
    fn metrics_match_reference_composition_bits(seqs_a in arb_training(), seqs_b in arb_training()) {
        let a = trained(2, &seqs_a);
        let b = trained(2, &seqs_b);
        let ra = ref_trained(2, &seqs_a);
        let rb = ref_trained(2, &seqs_b);
        let n = union_alphabet_len(&a, &b);

        let kl = ref_canonical_kl(&a, &ra, &rb, n);
        prop_assert_eq!(kl_divergence(&a, &b).to_bits(), kl.to_bits());
        prop_assert_eq!(Metric::KlDivergence.distance(&a, &b).to_bits(), kl.to_bits());

        let js = 0.5 * (ref_canonical_klm(&a, &ra, &rb, n) + ref_canonical_klm(&b, &rb, &ra, n));
        prop_assert_eq!(js_divergence(&a, &b).to_bits(), js.to_bits());
        prop_assert_eq!(js_distance(&a, &b).to_bits(), js.max(0.0).sqrt().to_bits());
    }

    /// Interner-id stability regression: training order must not affect
    /// the symbol table or any probability bit. Ids are assigned by `Ord`
    /// rank over the alphabet *set*, not first-seen order.
    #[test]
    fn interner_ids_are_training_order_independent(
        seqs in arb_training(),
        sym in 0u8..8,
        ctx in prop::collection::vec(0u8..8, 0..4),
        probe in arb_training(),
    ) {
        let fwd = trained(2, &seqs);
        let rev_seqs: Vec<Vec<u8>> = seqs.iter().rev().cloned().collect();
        let rev = trained(2, &rev_seqs);
        prop_assert_eq!(fwd.symbol_table(), rev.symbol_table());
        prop_assert_eq!(
            fwd.prob(&sym, &ctx).to_bits(),
            rev.prob(&sym, &ctx).to_bits()
        );
        let other = trained(2, &probe);
        prop_assert_eq!(
            kl_divergence(&fwd, &other).to_bits(),
            kl_divergence(&rev, &other).to_bits()
        );
    }
}
