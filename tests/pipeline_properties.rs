//! Property-based integration tests: random class hierarchies round-trip
//! through compile → strip → load → reconstruct with sound invariants.

use proptest::prelude::*;
use rock::core::{evaluate, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::minicpp::{compile, CompileOptions, Expr, Program, ProgramBuilder};

/// A random forest over `n` classes: parent[i] < i or none.
fn arb_forest() -> impl Strategy<Value = Vec<Option<usize>>> {
    (2usize..9).prop_flat_map(|n| {
        let mut parts: Vec<BoxedStrategy<Option<usize>>> = Vec::new();
        for i in 0..n {
            if i == 0 {
                parts.push(Just(None).boxed());
            } else {
                parts.push(
                    prop_oneof![
                        2 => (0..i).prop_map(Some),
                        1 => Just(None),
                    ]
                    .boxed(),
                );
            }
        }
        parts
    })
}

/// Turns a parent forest into a program with distinctive drivers.
fn program_from_forest(parents: &[Option<usize>]) -> Program {
    let mut p = ProgramBuilder::new();
    for (i, parent) in parents.iter().enumerate() {
        let mut cb = p.class(format!("C{i}"));
        if let Some(pi) = parent {
            cb.base(format!("C{pi}"));
        }
        cb.field(format!("f{i}"));
        cb.method(format!("m{i}"), move |b| {
            b.write("this", format!("f{i}"), Expr::Const(i as u64 + 1));
            b.ret();
        });
    }
    for (i, _) in parents.iter().enumerate() {
        // Chain of methods from root to self.
        let mut chain = vec![i];
        let mut cur = parents[i];
        while let Some(pi) = cur {
            chain.push(pi);
            cur = parents[pi];
        }
        chain.reverse();
        p.func(format!("drive{i}"), move |f| {
            f.new_obj("o", format!("C{i}"));
            for (pos, a) in chain.iter().enumerate() {
                for _ in 0..=(pos % 3) {
                    f.vcall("o", format!("m{a}"), vec![]);
                }
            }
            f.ret();
        });
    }
    p.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Debug builds (ctor pins intact) reconstruct every random forest
    /// exactly.
    #[test]
    fn debug_builds_reconstruct_exactly(parents in arb_forest()) {
        let program = program_from_forest(&parents);
        let compiled = compile(&program, &CompileOptions::default()).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let eval = evaluate(&compiled, &recon);
        prop_assert_eq!(eval.with_slm.avg_missing, 0.0);
        prop_assert_eq!(eval.with_slm.avg_added, 0.0);
    }

    /// The reconstructed hierarchy is always a forest over exactly the
    /// discovered vtables, regardless of optimization level.
    #[test]
    fn reconstruction_is_always_a_forest(parents in arb_forest(), optimized in any::<bool>()) {
        let program = program_from_forest(&parents);
        let options = if optimized {
            let mut o = CompileOptions::default();
            o.inline_parent_ctors = true;
            o
        } else {
            CompileOptions::default()
        };
        let compiled = compile(&program, &options).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        prop_assert_eq!(recon.hierarchy.len(), loaded.vtables().len());
        prop_assert!(recon.hierarchy.is_acyclic());
        // Chosen parents respect the structural relation.
        for node in recon.hierarchy.nodes() {
            if let Some(parent) = recon.hierarchy.parent_of(node) {
                prop_assert!(
                    recon.structural.possible_parents().is_possible(*parent, *node)
                );
            }
        }
    }

    /// With-SLM added types never exceed the without-SLM baseline: the
    /// paper's headline claim, as an invariant.
    #[test]
    fn slm_never_hurts_added_types(parents in arb_forest()) {
        let program = program_from_forest(&parents);
        let mut options = CompileOptions::default();
        options.inline_parent_ctors = true;
        let compiled = compile(&program, &options).unwrap();
        let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        let eval = evaluate(&compiled, &recon);
        prop_assert!(eval.with_slm.avg_added <= eval.without_slm.avg_added + 1e-9);
    }

    /// Ground truth and binary agree on the number of types for any
    /// forest and any optimization setting without abstract classes.
    #[test]
    fn type_counts_agree(parents in arb_forest(), optimized in any::<bool>()) {
        let program = program_from_forest(&parents);
        let options = if optimized { CompileOptions::optimized() } else { CompileOptions::default() };
        let compiled = compile(&program, &options).unwrap();
        prop_assert_eq!(compiled.ground_truth().len(), parents.len());
        prop_assert_eq!(compiled.vtables().len(), parents.len());
    }
}
