//! `while` loops through the whole stack: source → binary → VM execution
//! → CFG → bounded symbolic execution → tracelets → reconstruction.

use rock::analysis::{extract_tracelets, AnalysisConfig, Event};
use rock::binary::BinOp;
use rock::core::{evaluate, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::minicpp::{compile, to_source, CompileOptions, Expr, ProgramBuilder};
use rock::vm::Machine;

/// A looping driver: constructs an object and dispatches on it `n` times.
fn looping_program() -> ProgramBuilder {
    let mut p = ProgramBuilder::new();
    p.class("Acc")
        .field("total")
        .method("add_one", |b| {
            b.read("t", "this", "total");
            b.let_("t2", Expr::bin(BinOp::Add, Expr::Var("t".into()), Expr::Const(1)));
            b.write("this", "total", Expr::Var("t2".into()));
            b.ret();
        })
        .method("total_of", |b| {
            b.read("t", "this", "total");
            b.ret_val(Expr::Var("t".into()));
        });
    p.class("Doubler").base("Acc").method("add_one", |b| {
        b.read("t", "this", "total");
        b.let_("t2", Expr::bin(BinOp::Add, Expr::Var("t".into()), Expr::Const(2)));
        b.write("this", "total", Expr::Var("t2".into()));
        b.ret();
    });
    p.func("count_up", |f| {
        f.param_val("n");
        f.new_obj("a", "Acc");
        f.let_("i", Expr::Const(0));
        f.while_loop(Expr::bin(BinOp::Lt, Expr::Var("i".into()), Expr::Param(0)), |b| {
            b.vcall("a", "add_one", vec![]);
            b.let_("i", Expr::bin(BinOp::Add, Expr::Var("i".into()), Expr::Const(1)));
        });
        f.vcall_dst("r", "a", "total_of", vec![]);
        f.ret_val(Expr::Var("r".into()));
    });
    p.func("count_doubled", |f| {
        f.param_val("n");
        f.new_obj("d", "Doubler");
        f.let_("i", Expr::Const(0));
        f.while_loop(Expr::bin(BinOp::Lt, Expr::Var("i".into()), Expr::Param(0)), |b| {
            b.vcall("d", "add_one", vec![]);
            b.let_("i", Expr::bin(BinOp::Add, Expr::Var("i".into()), Expr::Const(1)));
        });
        f.vcall_dst("r", "d", "total_of", vec![]);
        f.ret_val(Expr::Var("r".into()));
    });
    p
}

#[test]
fn loops_execute_for_real() {
    let compiled = compile(&looping_program().finish(), &CompileOptions::default()).unwrap();
    let mut vm = Machine::new(compiled.image().clone()).unwrap();
    let count_up = compiled.image().symbols().by_name("count_up").unwrap().addr;
    let doubled = compiled.image().symbols().by_name("count_doubled").unwrap().addr;
    for n in [0u64, 1, 7, 100] {
        vm.reset();
        assert_eq!(vm.run(count_up, &[n]).unwrap().return_value, n, "n={n}");
        vm.reset();
        assert_eq!(vm.run(doubled, &[n]).unwrap().return_value, 2 * n, "n={n}");
    }
    // The loop body really dispatched n times.
    vm.reset();
    vm.run(count_up, &[5]).unwrap();
    assert_eq!(vm.trace().virtual_calls().count(), 5 + 1, "5 add_one + 1 total_of");
}

#[test]
fn symbolic_execution_bounds_the_loop() {
    let compiled = compile(&looping_program().finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    // Even with generous limits the analysis terminates and extracts
    // dispatch evidence from inside the loop body.
    let analysis = extract_tracelets(&loaded, &AnalysisConfig::default());
    let acc = compiled.vtable_of("Acc").unwrap();
    let ts = analysis.tracelets().of_type(acc);
    assert!(!ts.is_empty());
    let has_loop_dispatch = ts.iter().any(|t| t.contains(&Event::C(0)));
    assert!(has_loop_dispatch, "C(0) from the loop body: {ts:?}");
}

#[test]
fn looping_program_reconstructs() {
    let mut opts = CompileOptions::default();
    opts.inline_parent_ctors = true;
    let compiled = compile(&looping_program().finish(), &opts).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let eval = evaluate(&compiled, &recon);
    assert_eq!(eval.with_slm.avg_missing, 0.0, "{:?}", eval.with_slm.per_type);
    assert_eq!(eval.with_slm.avg_added, 0.0, "{:?}", eval.with_slm.per_type);
    let acc = compiled.vtable_of("Acc").unwrap();
    let doubler = compiled.vtable_of("Doubler").unwrap();
    assert_eq!(recon.parent_of(doubler), Some(acc));
}

#[test]
fn printer_renders_while() {
    let src = to_source(&looping_program().finish());
    assert!(src.contains("while ((i lt arg0)) {"), "{src}");
}
