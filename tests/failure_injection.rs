//! Failure injection: malformed and adversarial inputs must produce
//! errors or degraded-but-sound results, never panics or nonsense.

use rock::binary::{Addr, BinaryImage, Section, SectionKind};
use rock::core::{Rock, RockConfig};
use rock::loader::{LoadError, LoadedBinary};
use rock::minicpp::{compile, CompileOptions, ProgramBuilder};

#[test]
fn empty_image_is_rejected() {
    assert_eq!(LoadedBinary::load(BinaryImage::new(vec![])), Err(LoadError::NoTextSection));
}

#[test]
fn garbage_text_is_a_decode_error() {
    let image = BinaryImage::new(vec![Section::new(
        SectionKind::Text,
        Addr::new(0x1000),
        vec![0xff, 0xfe, 0xfd],
    )]);
    assert!(matches!(LoadedBinary::load(image), Err(LoadError::Decode(_))));
}

#[test]
fn text_without_prologue_is_rejected() {
    // 0x02 = ret: valid instruction, but no `enter` at the start.
    let image =
        BinaryImage::new(vec![Section::new(SectionKind::Text, Addr::new(0x1000), vec![0x02])]);
    assert!(matches!(LoadedBinary::load(image), Err(LoadError::NoPrologueAtStart { .. })));
}

#[test]
fn truncated_text_section_is_detected() {
    let compiled = sample();
    let image = compiled.stripped_image();
    let text = image.section(SectionKind::Text).unwrap();
    // Chop two bytes off: the trailing 1-byte `ret` plus the final byte
    // of the preceding multi-byte instruction, so the cut is guaranteed
    // to land mid-instruction.
    let truncated =
        Section::new(SectionKind::Text, text.base(), text.bytes()[..text.len() - 2].to_vec());
    let mut sections = vec![truncated];
    sections.extend(image.sections().iter().filter(|s| s.kind() != SectionKind::Text).cloned());
    let broken = BinaryImage::new(sections);
    assert!(matches!(LoadedBinary::load(broken), Err(LoadError::Decode(_))));
}

#[test]
fn corrupted_vtable_slot_degrades_gracefully() {
    // Overwrite the middle of a vtable with a non-function value: the
    // scanner truncates the table instead of failing.
    let compiled = sample();
    let image = compiled.stripped_image();
    let rodata = image.section(SectionKind::RoData).unwrap();
    let vt = compiled.vtable_of("B").expect("B exists");
    let mut bytes = rodata.bytes().to_vec();
    let off = (vt.value() - rodata.base().value()) as usize + 8; // slot 1
    bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let mut sections: Vec<Section> =
        image.sections().iter().filter(|s| s.kind() != SectionKind::RoData).cloned().collect();
    sections.push(Section::new(SectionKind::RoData, rodata.base(), bytes));
    let patched = BinaryImage::new(sections);
    let loaded = LoadedBinary::load(patched).expect("still loads");
    let b_table = loaded.vtable_at(vt).expect("table still found");
    assert_eq!(b_table.len(), 1, "table truncated at the corrupted slot");
    // The pipeline still runs.
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    assert!(!recon.hierarchy.is_empty());
}

#[test]
fn binary_without_any_vtables_reconstructs_nothing() {
    let mut p = ProgramBuilder::new();
    p.func("pure_code", |f| {
        f.let_("x", rock::minicpp::Expr::Const(42));
        f.ret_val(rock::minicpp::Expr::Var("x".into()));
    });
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    assert!(loaded.vtables().is_empty());
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    assert!(recon.hierarchy.is_empty());
    assert!(recon.structural.families().is_empty());
}

#[test]
fn single_type_binary_is_a_trivial_hierarchy() {
    let mut p = ProgramBuilder::new();
    p.class("Only").method("m", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("o", "Only");
        f.vcall("o", "m", vec![]);
        f.ret();
    });
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let only = compiled.vtable_of("Only").unwrap();
    assert_eq!(recon.parent_of(only), None);
    assert_eq!(recon.hierarchy.len(), 1);
}

#[test]
fn unused_types_still_get_a_place_in_the_hierarchy() {
    // A class that is never instantiated by any driver: no behavioral
    // data at all. The pipeline must still assign it a position (possibly
    // root) without failing.
    let mut p = ProgramBuilder::new();
    p.class("Used").method("m", |b| {
        b.ret();
    });
    p.class("Never").base("Used").method("n", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("u", "Used");
        f.vcall("u", "m", vec![]);
        f.ret();
    });
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let never = compiled.vtable_of("Never").unwrap();
    assert!(recon.hierarchy.contains(&never));
    // Structural pinning still works via the (emitted but uncalled) ctor?
    // No ctor call exists, so the pin comes from the ctor *function*
    // calling its parent ctor — which is enough.
    let used = compiled.vtable_of("Used").unwrap();
    assert_eq!(recon.parent_of(never), Some(used));
}

#[test]
fn extreme_configs_do_not_crash() {
    let compiled = sample();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    for (paths, depth, len) in [(1usize, 0usize, 1usize), (2, 1, 2), (128, 5, 20)] {
        let mut config = RockConfig::paper();
        config.analysis.max_paths = paths;
        config.analysis.slm_depth = depth;
        config.analysis.tracelet_len = len;
        let recon = Rock::new(config).reconstruct(&loaded);
        assert_eq!(recon.hierarchy.len(), loaded.vtables().len());
    }
}

fn sample() -> rock::minicpp::Compiled {
    let mut p = ProgramBuilder::new();
    p.class("A").method("m0", |b| {
        b.ret();
    });
    p.class("B").base("A").method("m1", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("b", "B");
        f.vcall("b", "m0", vec![]);
        f.vcall("b", "m1", vec![]);
        f.ret();
    });
    compile(&p.finish(), &CompileOptions::default()).unwrap()
}
