//! Tests that the synthetic benchmarks actually exhibit the *structural
//! characters* the paper attributes to their originals (§6.4's case
//! studies) — these properties are what make Table 2 meaningful.

use rock::core::{evaluate, suite, Rock, RockConfig};
use rock::loader::LoadedBinary;

fn setup(name: &str) -> (rock::minicpp::Compiled, rock::core::Reconstruction) {
    let bench = suite::benchmark(name).expect("suite benchmark");
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    (compiled, recon)
}

#[test]
fn echoparams_types_are_structurally_equivalent() {
    // §6.4: "the structural analysis ... was incapable of eliminating any
    // possible parents for any of the types since they are structurally
    // equivalent. Thus, structural analysis alone resulted in 3 possible
    // parents for each type."
    let (compiled, recon) = setup("echoparams");
    assert_eq!(recon.structural.families().len(), 1, "one family");
    for vt in compiled.vtables().values() {
        assert_eq!(
            recon.possible_parents_of(*vt).len(),
            3,
            "every type must have 3 candidate parents"
        );
    }
    assert!(!recon.structural.is_structurally_resolved());
    // All four vtables have the same slot count.
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let lens: Vec<usize> = loaded.vtables().iter().map(|v| v.len()).collect();
    assert!(lens.windows(2).all(|w| w[0] == w[1]), "equal vtable lengths: {lens:?}");
    // And the SLMs fully de-ambiguate the added types.
    let eval = evaluate(&compiled, &recon);
    assert_eq!(eval.with_slm.avg_added, 0.0);
    assert!(eval.without_slm.avg_added > 1.0);
}

#[test]
fn tinyxml_root_is_split_into_its_own_family() {
    // §6.4: "The structural analysis found no evidence that the root was
    // related to any of the other types and therefore placed it in a
    // separate type family. As a result, the root type lost all of its
    // children, 8 in total."
    let (compiled, recon) = setup("tinyxml");
    let root_vt = compiled.vtable_of("tinyxml_C0").expect("root exists");
    let root_family = recon.structural.family_of(root_vt).expect("in a family");
    assert_eq!(root_family, &[root_vt], "the root sits alone");
    assert_eq!(recon.structural.families().len(), 2);

    let gt = compiled.ground_truth();
    assert_eq!(gt.successors("tinyxml_C0").len(), 8, "GT root has all 8 successors");
    let eval = evaluate(&compiled, &recon);
    // Exactly the paper's 0.89 = 8 missing / 9 types, no added.
    assert!((eval.with_slm.avg_missing - 8.0 / 9.0).abs() < 1e-9);
    assert_eq!(eval.with_slm.avg_added, 0.0);
    // 8 of 9 types have no missing successors ("which we consider a good
    // result in practice").
    let clean = eval.with_slm.per_type.values().filter(|(m, _)| *m == 0).count();
    assert_eq!(clean, 8);
}

#[test]
fn td_unittest_folding_merges_unrelated_types() {
    // Error source 1: "the compiler sometimes placed pointers to the same
    // virtual function implementation in the virtual table of unrelated
    // types, causing these types to be placed in the same family."
    let (compiled, recon) = setup("td_unittest");
    assert!(!compiled.folded_functions().is_empty(), "COMDAT folding must fire");
    assert_eq!(recon.structural.families().len(), 1, "the two unrelated types share a family");
    let gt = compiled.ground_truth();
    assert_eq!(gt.roots().len(), 2, "ground truth keeps them unrelated");
    let eval = evaluate(&compiled, &recon);
    // The paper's exact numbers: without 0/1.0, with 0/0.5.
    assert_eq!(eval.without_slm.avg_added, 1.0);
    assert_eq!(eval.with_slm.avg_added, 0.5);
    assert_eq!(eval.with_slm.avg_missing, 0.0);
}

#[test]
fn cgridlistctrlex_abstract_roots_are_gone() {
    // Fig. 9: CEdit and CDialog cannot be instantiated and are optimized
    // out of the binary; each child pair still clusters into one family.
    let (compiled, recon) = setup("CGridListCtrlEx");
    assert_eq!(compiled.vtable_of("CGridListCtrlEx_C24"), None);
    assert_eq!(compiled.vtable_of("CGridListCtrlEx_C27"), None);
    for (a, b) in [
        ("CGridListCtrlEx_C25", "CGridListCtrlEx_C26"),
        ("CGridListCtrlEx_C28", "CGridListCtrlEx_C29"),
    ] {
        let va = compiled.vtable_of(a).unwrap();
        let vb = compiled.vtable_of(b).unwrap();
        assert_eq!(
            recon.structural.family_of(va),
            recon.structural.family_of(vb),
            "orphaned siblings {a}/{b} share inherited impls -> one family"
        );
    }
}

#[test]
fn smoothing_has_a_wide_ambiguous_family() {
    let (compiled, recon) = setup("Smoothing");
    // The wide family: 15 equal-length vtables.
    let widest = recon.structural.families().iter().map(Vec::len).max().unwrap();
    assert!(widest >= 15, "widest family has {widest} members");
    assert!(!recon.structural.is_structurally_resolved());
    let eval = evaluate(&compiled, &recon);
    // The paper's headline: a large added-type blowup without SLMs,
    // collapsed by the behavioral ranking.
    assert!(eval.without_slm.avg_added > 5.0);
    assert!(eval.with_slm.avg_added < eval.without_slm.avg_added / 3.0);
}

#[test]
fn resolvable_benchmarks_really_resolve() {
    for name in ["AntispyComplete", "cppcheck", "MidiLib", "patl", "pop3", "smtp", "yafc"] {
        let (compiled, recon) = setup(name);
        assert!(
            recon.structural.is_structurally_resolved(),
            "{name} should be structurally resolved"
        );
        let eval = evaluate(&compiled, &recon);
        assert_eq!(eval.with_slm.avg_missing, 0.0, "{name}");
        assert_eq!(eval.with_slm.avg_added, 0.0, "{name}");
    }
}

#[test]
fn repartitioning_heals_the_tinyxml_split() {
    // The §6.4 future-work extension: behavioral family repartitioning
    // recovers the root's 8 lost children (missing 0.89 -> 0.00) by
    // reattaching the split family's root under the isolated root —
    // pure behavioral evidence, no structural link in the binary at all.
    let bench = suite::benchmark("tinyxml").expect("suite benchmark");
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let recon = Rock::new(RockConfig::paper().with_repartitioning()).reconstruct(&loaded);
    let eval = evaluate(&compiled, &recon);
    assert_eq!(eval.with_slm.avg_missing, 0.0, "{:?}", eval.with_slm.per_type);
    assert_eq!(eval.with_slm.avg_added, 0.0);
    // The healed edge is the true one: C1's parent is the root C0.
    let c0 = compiled.vtable_of("tinyxml_C0").unwrap();
    let c1 = compiled.vtable_of("tinyxml_C1").unwrap();
    assert_eq!(recon.parent_of(c1), Some(c0));
}

#[test]
fn k_parents_tradeoff_is_monotone() {
    // §6.4 "Applying CFI": more parents -> fewer missing, more added.
    let (compiled, recon) = setup("gperf");
    let mut last_missing = f64::INFINITY;
    for k in 1..=3 {
        let d = rock::core::evaluate_k_parents(&compiled, &recon, k);
        assert!(d.avg_missing <= last_missing + 1e-9, "k={k}");
        last_missing = d.avg_missing;
    }
    let d1 = rock::core::evaluate_k_parents(&compiled, &recon, 1);
    let d3 = rock::core::evaluate_k_parents(&compiled, &recon, 3);
    assert!(d3.avg_added >= d1.avg_added, "payload grows with k");
}
