//! Fault-injection property tests: the reconstruction pipeline must
//! degrade, never die.
//!
//! A deterministic [`FaultPlan`] makes seeded subsets of functions
//! panic, get skipped, or run with starved budgets, and corrupts seeded
//! byte positions of compiled images. Under every plan the pipeline
//! must (1) return a `Reconstruction` without panicking, (2) account
//! for every excluded item with a matching diagnostic, and (3) produce
//! for a contained fault exactly the result of explicitly excluding the
//! faulted item — faults are indistinguishable from skips.
//!
//! Seeds come from `ROCK_FAULT_SEEDS` (`"a..b"` range or a comma list;
//! CI sweeps `0..16`), defaulting to a small smoke set.

use std::sync::Arc;

use rock::binary::{BinaryImage, Section};
use rock::core::{suite, FaultPlan, Rock, RockConfig, Stage, Subject};
use rock::loader::LoadedBinary;

/// Seeds to sweep: `ROCK_FAULT_SEEDS="0..16"` or `"1,5,9"`, else `0..4`.
fn seeds() -> Vec<u64> {
    let Ok(spec) = std::env::var("ROCK_FAULT_SEEDS") else {
        return (0..4).collect();
    };
    if let Some((lo, hi)) = spec.split_once("..") {
        let lo: u64 = lo.trim().parse().expect("bad ROCK_FAULT_SEEDS lower bound");
        let hi: u64 = hi.trim().parse().expect("bad ROCK_FAULT_SEEDS upper bound");
        (lo..hi).collect()
    } else {
        spec.split(',').map(|s| s.trim().parse().expect("bad ROCK_FAULT_SEEDS entry")).collect()
    }
}

fn stress_loaded() -> LoadedBinary {
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    LoadedBinary::load(compiled.stripped_image()).expect("loads")
}

#[test]
fn seeded_faults_never_panic_and_every_skip_is_accounted() {
    let loaded = stress_loaded();
    let clean = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let mut total_faults = 0usize;
    for seed in seeds() {
        let plan = Arc::new(FaultPlan::seeded(seed, 150));
        // Returning at all is property (1): no panic escapes.
        let recon = Rock::new(RockConfig::paper()).with_fault_plan(plan).reconstruct(&loaded);
        let cov = recon.coverage;

        // Coverage partitions the input exactly.
        assert_eq!(
            cov.functions_analyzed + cov.functions_skipped + cov.functions_timed_out,
            cov.functions_total,
            "seed {seed}: function accounting must add up"
        );
        assert_eq!(cov.functions_total, loaded.functions().len());
        assert_eq!(cov.vtables_parsed, loaded.vtables().len());
        assert_eq!(cov.families_lifted + cov.families_degraded, cov.families_total);

        // Property (2): every excluded item has a matching diagnostic.
        for (entry, kind) in recon.analysis.incidents() {
            assert!(
                recon
                    .diagnostics
                    .iter()
                    .any(|e| e.stage == Stage::Analysis && e.subject == Subject::Function(*entry)),
                "seed {seed}: incident {kind} at {entry} has no diagnostic"
            );
        }
        let analysis_diags =
            recon.diagnostics.iter().filter(|e| e.stage == Stage::Analysis).count();
        assert_eq!(
            analysis_diags,
            recon.analysis.incidents().len(),
            "seed {seed}: diagnostics and incidents must match one-to-one"
        );
        assert_eq!(
            cov.functions_skipped + cov.functions_timed_out,
            recon.analysis.incidents().len(),
            "seed {seed}: coverage counts the incidents"
        );
        let training_diags =
            recon.diagnostics.iter().filter(|e| e.stage == Stage::Training).count();
        assert_eq!(
            cov.models_trained + training_diags,
            cov.vtables_parsed,
            "seed {seed}: every untrained model has a training diagnostic"
        );

        // The hierarchy still spans every discovered type.
        assert_eq!(recon.hierarchy.len(), clean.hierarchy.len());
        assert!(recon.hierarchy.is_acyclic());
        total_faults += recon.diagnostics.len();
    }
    assert!(total_faults > 0, "a 15% seeded rate must inject something across the sweep");
}

#[test]
fn contained_faults_equal_explicit_skips() {
    // Property (3): a panicking function and a starved function produce
    // exactly the reconstruction of a plan that skips it — bit for bit.
    let loaded = stress_loaded();
    let config = RockConfig::paper();
    for f in loaded.functions().iter().step_by(3) {
        let victim = f.entry();
        let runs: Vec<_> = [
            FaultPlan::new().panic_on(victim),
            FaultPlan::new().starve(victim, 0),
            FaultPlan::new().skip(victim),
        ]
        .into_iter()
        .map(|plan| Rock::new(config).with_fault_plan(Arc::new(plan)).reconstruct(&loaded))
        .collect();
        for other in &runs[1..] {
            assert_eq!(
                runs[0].hierarchy, other.hierarchy,
                "fault flavors must be indistinguishable for {victim}"
            );
            assert_eq!(runs[0].distances.len(), other.distances.len());
            for (key, d) in &runs[0].distances {
                assert_eq!(
                    d.to_bits(),
                    other.distances[key].to_bits(),
                    "distance bits for {key:?} diverged at {victim}"
                );
            }
        }
    }
}

#[test]
fn a_plan_with_no_faults_changes_nothing() {
    let loaded = stress_loaded();
    let clean = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    for seed in seeds() {
        let plan = Arc::new(FaultPlan::seeded(seed, 0));
        let inert = Rock::new(RockConfig::paper()).with_fault_plan(plan).reconstruct(&loaded);
        assert_eq!(clean.hierarchy, inert.hierarchy);
        assert_eq!(clean.distances, inert.distances);
        assert!(inert.diagnostics.is_empty());
        assert!(inert.coverage.is_complete());
    }
}

#[test]
fn strict_mode_restores_fail_fast_under_faults() {
    let loaded = stress_loaded();
    let victim = loaded.functions()[0].entry();
    let plan = Arc::new(FaultPlan::new().panic_on(victim));
    let strict = Rock::new(RockConfig::paper().with_strict()).with_fault_plan(Arc::clone(&plan));
    let err = strict.try_reconstruct(&loaded).expect_err("strict must fail");
    assert_eq!(err.stage, Stage::Analysis);
    assert_eq!(err.subject, Subject::Function(victim));
    // The same plan degrades gracefully without strict.
    let lax = Rock::new(RockConfig::paper()).with_fault_plan(plan);
    assert!(lax.try_reconstruct(&loaded).is_ok());
}

/// Rebuilds `image` with one section's bytes replaced.
fn with_section_bytes(image: &BinaryImage, index: usize, bytes: Vec<u8>) -> BinaryImage {
    let mut sections: Vec<Section> = image.sections().to_vec();
    let old = &sections[index];
    sections[index] = Section::new(old.kind(), old.base(), bytes);
    BinaryImage::new(sections)
}

#[test]
fn corrupted_images_load_leniently_and_never_panic() {
    // Structure-aware mutation smoke: corrupt seeded byte positions of
    // each section of a compiled image, then demand a full lenient load
    // + reconstruction without a panic. The hierarchy may be anything —
    // the property is survival plus accounting.
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    let image = compiled.stripped_image();
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed, 0);
        for section_index in 0..image.sections().len() {
            let mut bytes = image.sections()[section_index].bytes().to_vec();
            if bytes.is_empty() {
                continue;
            }
            let positions = plan.corrupt(&mut bytes, 8);
            assert_eq!(positions.len(), 8);
            let corrupted = with_section_bytes(&image, section_index, bytes);
            let loaded = LoadedBinary::load_lenient(corrupted);
            let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
            assert!(recon.hierarchy.is_acyclic());
            assert_eq!(recon.coverage.vtables_parsed, loaded.vtables().len());
            // Loader degradations surface as diagnostics.
            assert!(recon
                .diagnostics
                .iter()
                .filter(|e| e.stage == Stage::Load)
                .count()
                .eq(&loaded.issues().len()));
        }
    }
}
