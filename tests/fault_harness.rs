//! The fault-injection harness: every way the pipeline can be hurt —
//! malformed images, adversarial sections, injected panics, starved
//! budgets, skip directives — driven through one deterministic
//! [`FaultPlan`] scaffold. The invariants:
//!
//! 1. **Survival** — no input or plan makes the pipeline panic; the
//!    worst case is a degraded `Reconstruction`.
//! 2. **Accounting** — every excluded item has a matching diagnostic,
//!    and coverage partitions the input exactly.
//! 3. **Containment** — a contained fault is bit-identical to an
//!    explicit skip of the same item; fault flavors are
//!    indistinguishable downstream.
//!
//! Seeds come from `ROCK_FAULT_SEEDS` (`"a..b"` range or a comma list;
//! CI sweeps `0..16`), defaulting to a small smoke set.

use std::sync::Arc;

use rock::binary::{Addr, BinaryImage, Section, SectionKind};
use rock::core::{suite, FaultPlan, Rock, RockConfig, Stage, Subject};
use rock::loader::{LoadError, LoadedBinary};
use rock::minicpp::{compile, CompileOptions, Compiled, ProgramBuilder};

// ---------------------------------------------------------------------
// Shared scaffolding
// ---------------------------------------------------------------------

/// Seeds to sweep: `ROCK_FAULT_SEEDS="0..16"` or `"1,5,9"`, else `0..4`.
fn seeds() -> Vec<u64> {
    let Ok(spec) = std::env::var("ROCK_FAULT_SEEDS") else {
        return (0..4).collect();
    };
    if let Some((lo, hi)) = spec.split_once("..") {
        let lo: u64 = lo.trim().parse().expect("bad ROCK_FAULT_SEEDS lower bound");
        let hi: u64 = hi.trim().parse().expect("bad ROCK_FAULT_SEEDS upper bound");
        (lo..hi).collect()
    } else {
        spec.split(',').map(|s| s.trim().parse().expect("bad ROCK_FAULT_SEEDS entry")).collect()
    }
}

fn stress_loaded() -> LoadedBinary {
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    LoadedBinary::load(compiled.stripped_image()).expect("loads")
}

/// A two-class program with a driver: the minimal interesting image.
fn sample() -> Compiled {
    let mut p = ProgramBuilder::new();
    p.class("A").method("m0", |b| {
        b.ret();
    });
    p.class("B").base("A").method("m1", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("b", "B");
        f.vcall("b", "m0", vec![]);
        f.vcall("b", "m1", vec![]);
        f.ret();
    });
    compile(&p.finish(), &CompileOptions::default()).unwrap()
}

/// Rebuilds `image` with one section's bytes replaced.
fn with_section_bytes(image: &BinaryImage, index: usize, bytes: Vec<u8>) -> BinaryImage {
    let mut sections: Vec<Section> = image.sections().to_vec();
    let old = &sections[index];
    sections[index] = Section::new(old.kind(), old.base(), bytes);
    BinaryImage::new(sections)
}

// ---------------------------------------------------------------------
// Malformed input: strict loads reject, lenient loads degrade
// ---------------------------------------------------------------------

#[test]
fn empty_image_is_rejected() {
    assert_eq!(LoadedBinary::load(BinaryImage::new(vec![])), Err(LoadError::NoTextSection));
}

#[test]
fn garbage_text_is_a_decode_error() {
    let image = BinaryImage::new(vec![Section::new(
        SectionKind::Text,
        Addr::new(0x1000),
        vec![0xff, 0xfe, 0xfd],
    )]);
    assert!(matches!(LoadedBinary::load(image), Err(LoadError::Decode(_))));
}

#[test]
fn text_without_prologue_is_rejected() {
    // 0x02 = ret: valid instruction, but no `enter` at the start.
    let image =
        BinaryImage::new(vec![Section::new(SectionKind::Text, Addr::new(0x1000), vec![0x02])]);
    assert!(matches!(LoadedBinary::load(image), Err(LoadError::NoPrologueAtStart { .. })));
}

#[test]
fn truncated_text_section_is_detected() {
    let compiled = sample();
    let image = compiled.stripped_image();
    let text = image.section(SectionKind::Text).unwrap();
    // Chop two bytes off: the trailing 1-byte `ret` plus the final byte
    // of the preceding multi-byte instruction, so the cut is guaranteed
    // to land mid-instruction.
    let truncated =
        Section::new(SectionKind::Text, text.base(), text.bytes()[..text.len() - 2].to_vec());
    let mut sections = vec![truncated];
    sections.extend(image.sections().iter().filter(|s| s.kind() != SectionKind::Text).cloned());
    let broken = BinaryImage::new(sections);
    assert!(matches!(LoadedBinary::load(broken), Err(LoadError::Decode(_))));
}

#[test]
fn corrupted_vtable_slot_degrades_gracefully() {
    // Overwrite the middle of a vtable with a non-function value: the
    // scanner truncates the table instead of failing.
    let compiled = sample();
    let image = compiled.stripped_image();
    let rodata = image.section(SectionKind::RoData).unwrap();
    let vt = compiled.vtable_of("B").expect("B exists");
    let mut bytes = rodata.bytes().to_vec();
    let off = (vt.value() - rodata.base().value()) as usize + 8; // slot 1
    bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let mut sections: Vec<Section> =
        image.sections().iter().filter(|s| s.kind() != SectionKind::RoData).cloned().collect();
    sections.push(Section::new(SectionKind::RoData, rodata.base(), bytes));
    let patched = BinaryImage::new(sections);
    let loaded = LoadedBinary::load(patched).expect("still loads");
    let b_table = loaded.vtable_at(vt).expect("table still found");
    assert_eq!(b_table.len(), 1, "table truncated at the corrupted slot");
    // The pipeline still runs.
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    assert!(!recon.hierarchy.is_empty());
}

#[test]
fn corrupted_images_load_leniently_and_never_panic() {
    // Structure-aware mutation smoke: corrupt seeded byte positions of
    // each section of a compiled image, then demand a full lenient load
    // + reconstruction without a panic. The hierarchy may be anything —
    // the property is survival plus accounting. (The dedicated seeded
    // loader fuzzer in `loader_fuzz.rs` goes further with adversarial
    // section layouts.)
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    let image = compiled.stripped_image();
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed, 0);
        for section_index in 0..image.sections().len() {
            let mut bytes = image.sections()[section_index].bytes().to_vec();
            if bytes.is_empty() {
                continue;
            }
            let positions = plan.corrupt(&mut bytes, 8);
            assert_eq!(positions.len(), 8);
            let corrupted = with_section_bytes(&image, section_index, bytes);
            let loaded = LoadedBinary::load_lenient(corrupted);
            let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
            assert!(recon.hierarchy.is_acyclic());
            assert_eq!(recon.coverage.vtables_parsed, loaded.vtables().len());
            // Loader degradations surface as diagnostics.
            assert!(recon
                .diagnostics
                .iter()
                .filter(|e| e.stage == Stage::Load)
                .count()
                .eq(&loaded.issues().len()));
        }
    }
}

// ---------------------------------------------------------------------
// Degenerate but well-formed inputs
// ---------------------------------------------------------------------

#[test]
fn binary_without_any_vtables_reconstructs_nothing() {
    let mut p = ProgramBuilder::new();
    p.func("pure_code", |f| {
        f.let_("x", rock::minicpp::Expr::Const(42));
        f.ret_val(rock::minicpp::Expr::Var("x".into()));
    });
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    assert!(loaded.vtables().is_empty());
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    assert!(recon.hierarchy.is_empty());
    assert!(recon.structural.families().is_empty());
}

#[test]
fn single_type_binary_is_a_trivial_hierarchy() {
    let mut p = ProgramBuilder::new();
    p.class("Only").method("m", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("o", "Only");
        f.vcall("o", "m", vec![]);
        f.ret();
    });
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let only = compiled.vtable_of("Only").unwrap();
    assert_eq!(recon.parent_of(only), None);
    assert_eq!(recon.hierarchy.len(), 1);
}

#[test]
fn unused_types_still_get_a_place_in_the_hierarchy() {
    // A class that is never instantiated by any driver: no behavioral
    // data at all. The pipeline must still assign it a position (possibly
    // root) without failing.
    let mut p = ProgramBuilder::new();
    p.class("Used").method("m", |b| {
        b.ret();
    });
    p.class("Never").base("Used").method("n", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("u", "Used");
        f.vcall("u", "m", vec![]);
        f.ret();
    });
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let never = compiled.vtable_of("Never").unwrap();
    assert!(recon.hierarchy.contains(&never));
    // Structural pinning still works via the (emitted but uncalled) ctor?
    // No ctor call exists, so the pin comes from the ctor *function*
    // calling its parent ctor — which is enough.
    let used = compiled.vtable_of("Used").unwrap();
    assert_eq!(recon.parent_of(never), Some(used));
}

#[test]
fn extreme_configs_do_not_crash() {
    let compiled = sample();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    for (paths, depth, len) in [(1usize, 0usize, 1usize), (2, 1, 2), (128, 5, 20)] {
        let mut config = RockConfig::paper();
        config.analysis.max_paths = paths;
        config.analysis.slm_depth = depth;
        config.analysis.tracelet_len = len;
        let recon = Rock::new(config).reconstruct(&loaded);
        assert_eq!(recon.hierarchy.len(), loaded.vtables().len());
    }
}

// ---------------------------------------------------------------------
// Injected faults: seeded plans, containment, strict mode
// ---------------------------------------------------------------------

#[test]
fn seeded_faults_never_panic_and_every_skip_is_accounted() {
    let loaded = stress_loaded();
    let clean = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let mut total_faults = 0usize;
    for seed in seeds() {
        let plan = Arc::new(FaultPlan::seeded(seed, 150));
        // Returning at all is property (1): no panic escapes.
        let recon = Rock::new(RockConfig::paper()).with_fault_plan(plan).reconstruct(&loaded);
        let cov = recon.coverage;

        // Coverage partitions the input exactly.
        assert_eq!(
            cov.functions_analyzed + cov.functions_skipped + cov.functions_timed_out,
            cov.functions_total,
            "seed {seed}: function accounting must add up"
        );
        assert_eq!(cov.functions_total, loaded.functions().len());
        assert_eq!(cov.vtables_parsed, loaded.vtables().len());
        assert_eq!(cov.families_lifted + cov.families_degraded, cov.families_total);

        // Property (2): every excluded item has a matching diagnostic.
        for (entry, kind) in recon.analysis.incidents() {
            assert!(
                recon
                    .diagnostics
                    .iter()
                    .any(|e| e.stage == Stage::Analysis && e.subject == Subject::Function(*entry)),
                "seed {seed}: incident {kind} at {entry} has no diagnostic"
            );
        }
        let analysis_diags =
            recon.diagnostics.iter().filter(|e| e.stage == Stage::Analysis).count();
        assert_eq!(
            analysis_diags,
            recon.analysis.incidents().len(),
            "seed {seed}: diagnostics and incidents must match one-to-one"
        );
        assert_eq!(
            cov.functions_skipped + cov.functions_timed_out,
            recon.analysis.incidents().len(),
            "seed {seed}: coverage counts the incidents"
        );
        let training_diags =
            recon.diagnostics.iter().filter(|e| e.stage == Stage::Training).count();
        assert_eq!(
            cov.models_trained + training_diags,
            cov.vtables_parsed,
            "seed {seed}: every untrained model has a training diagnostic"
        );

        // The hierarchy still spans every discovered type.
        assert_eq!(recon.hierarchy.len(), clean.hierarchy.len());
        assert!(recon.hierarchy.is_acyclic());
        total_faults += recon.diagnostics.len();
    }
    assert!(total_faults > 0, "a 15% seeded rate must inject something across the sweep");
}

#[test]
fn contained_faults_equal_explicit_skips() {
    // Property (3): a panicking function and a starved function produce
    // exactly the reconstruction of a plan that skips it — bit for bit.
    let loaded = stress_loaded();
    let config = RockConfig::paper();
    for f in loaded.functions().iter().step_by(3) {
        let victim = f.entry();
        let runs: Vec<_> = [
            FaultPlan::new().panic_on(victim),
            FaultPlan::new().starve(victim, 0),
            FaultPlan::new().skip(victim),
        ]
        .into_iter()
        .map(|plan| Rock::new(config).with_fault_plan(Arc::new(plan)).reconstruct(&loaded))
        .collect();
        for other in &runs[1..] {
            assert_eq!(
                runs[0].hierarchy, other.hierarchy,
                "fault flavors must be indistinguishable for {victim}"
            );
            assert_eq!(runs[0].distances.len(), other.distances.len());
            for (key, d) in &runs[0].distances {
                assert_eq!(
                    d.to_bits(),
                    other.distances[key].to_bits(),
                    "distance bits for {key:?} diverged at {victim}"
                );
            }
        }
    }
}

#[test]
fn a_plan_with_no_faults_changes_nothing() {
    let loaded = stress_loaded();
    let clean = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    for seed in seeds() {
        let plan = Arc::new(FaultPlan::seeded(seed, 0));
        let inert = Rock::new(RockConfig::paper()).with_fault_plan(plan).reconstruct(&loaded);
        assert_eq!(clean.hierarchy, inert.hierarchy);
        assert_eq!(clean.distances, inert.distances);
        assert!(inert.diagnostics.is_empty());
        assert!(inert.coverage.is_complete());
    }
}

#[test]
fn strict_mode_restores_fail_fast_under_faults() {
    let loaded = stress_loaded();
    let victim = loaded.functions()[0].entry();
    let plan = Arc::new(FaultPlan::new().panic_on(victim));
    let strict = Rock::new(RockConfig::paper().with_strict()).with_fault_plan(Arc::clone(&plan));
    let err = strict.try_reconstruct(&loaded).expect_err("strict must fail");
    assert_eq!(err.stage, Stage::Analysis);
    assert_eq!(err.subject, Subject::Function(victim));
    // The same plan degrades gracefully without strict.
    let lax = Rock::new(RockConfig::paper()).with_fault_plan(plan);
    assert!(lax.try_reconstruct(&loaded).is_ok());
}
