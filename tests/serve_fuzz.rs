//! Seeded structural fuzzer for the serve request/response codec and
//! the frame transport — the layers that parse bytes from untrusted
//! network clients.
//!
//! Mutation families: truncation at every offset, lying length fields
//! (both the frame prefix and lengths inside bodies), bad protocol
//! versions, oversized frames, raw random bytes, and bit-flipped valid
//! encodings. One oracle holds for every seed:
//!
//! **The codec never panics** — every input decodes to a value or to a
//! typed error. And when a mutant *does* decode, re-encoding it must
//! round-trip (the codec never produces a value it cannot represent).
//!
//! Seeds come from `ROCK_FUZZ_SEEDS` (`"a..b"` range or comma list),
//! defaulting to `0..8` for local runs.

use rock::serve::frame::{read_frame, write_frame, FrameError};
use rock::serve::wire::{JobState, RejectReason, Request, Response};

/// SplitMix64: the same deterministic generator the fault plan uses.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn string(&mut self, max: usize) -> String {
        let len = self.below(max + 1);
        (0..len).map(|_| char::from(b'a' + (self.next() % 26) as u8)).collect()
    }

    fn bytes(&mut self, max: usize) -> Vec<u8> {
        let len = self.below(max + 1);
        (0..len).map(|_| self.next() as u8).collect()
    }
}

/// Seeds to sweep: `ROCK_FUZZ_SEEDS="0..64"` or `"1,5,9"`, else `0..8`.
fn seeds() -> Vec<u64> {
    let Ok(spec) = std::env::var("ROCK_FUZZ_SEEDS") else {
        return (0..8).collect();
    };
    if let Some((lo, hi)) = spec.split_once("..") {
        let lo: u64 = lo.trim().parse().expect("bad ROCK_FUZZ_SEEDS lower bound");
        let hi: u64 = hi.trim().parse().expect("bad ROCK_FUZZ_SEEDS upper bound");
        (lo..hi).collect()
    } else {
        spec.split(',').map(|s| s.trim().parse().expect("bad ROCK_FUZZ_SEEDS entry")).collect()
    }
}

/// A random well-formed request, arbitrary field values included
/// (protocol versions deliberately span the full `u16` range: *decoding*
/// a bad version must succeed so the daemon can answer it with a typed
/// protocol error).
fn random_request(rng: &mut Rng) -> Request {
    match rng.below(5) {
        0 => Request::Hello { version: rng.next() as u16, client: rng.string(24) },
        1 => {
            Request::Submit { name: rng.string(24), deadline_ms: rng.next(), image: rng.bytes(200) }
        }
        2 => Request::Status { job: rng.next() },
        3 => Request::Cancel { job: rng.next() },
        _ => Request::Drain,
    }
}

fn random_state(rng: &mut Rng) -> JobState {
    match rng.below(5) {
        0 => JobState::Unknown,
        1 => JobState::Queued { position: rng.next() },
        2 => JobState::Running,
        3 => JobState::Done {
            exit_code: rng.next() as u8,
            outcome: rng.string(12),
            result_fp: rng.next(),
            report_json: rng.string(64),
        },
        _ => JobState::Cancelled,
    }
}

fn random_response(rng: &mut Rng) -> Response {
    match rng.below(6) {
        0 => Response::HelloOk { version: rng.next() as u16 },
        1 => Response::Accepted { job: rng.next() },
        2 => Response::Rejected {
            reason: RejectReason::ALL[rng.below(RejectReason::ALL.len())],
            detail: rng.string(48),
        },
        3 => Response::JobStatus { job: rng.next(), state: random_state(rng) },
        4 => Response::DrainStarted { queued: rng.next(), running: rng.next() },
        _ => Response::ProtocolError { message: rng.string(48) },
    }
}

// ---------------------------------------------------------------------
// Mutation family 1: truncation at every offset
// ---------------------------------------------------------------------

#[test]
fn truncated_bodies_always_error_never_panic() {
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x7472_756e); // "trun"
        let request = random_request(&mut rng).encode();
        let response = random_response(&mut rng).encode();
        // Every field is either fixed-width or carries an explicit
        // length, so a strict prefix always leaves some field short:
        // truncation is a typed error at *every* cut, for both codecs.
        for cut in 0..request.len() {
            assert!(Request::decode(&request[..cut]).is_err(), "seed {seed}: request cut {cut}");
        }
        for cut in 0..response.len() {
            assert!(Response::decode(&response[..cut]).is_err(), "seed {seed}: response cut {cut}");
        }
    }
}

// ---------------------------------------------------------------------
// Mutation family 2: lying length fields
// ---------------------------------------------------------------------

#[test]
fn lying_inner_lengths_error_or_reinterpret_but_never_panic() {
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x6c69_6573); // "lies"
        let body = random_request(&mut rng).encode();
        if body.len() < 5 {
            continue;
        }
        // Stomp a 4-byte window anywhere in the body with hostile
        // lengths; a huge claimed length must become a typed error, not
        // an allocation or a panic.
        for lie in [u32::MAX, u32::MAX / 2, 1 << 30, rng.next() as u32] {
            let at = 1 + rng.below(body.len() - 4);
            let mut mutant = body.clone();
            mutant[at..at + 4].copy_from_slice(&lie.to_le_bytes());
            let _ = Request::decode(&mutant);
            let _ = Response::decode(&mutant);
        }
    }
}

#[test]
fn lying_frame_prefixes_are_capped_before_allocation() {
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x6672_616d); // "fram"
        let cap = 1 + rng.below(1 << 16);
        let claimed = cap + 1 + rng.below(1 << 20);
        let mut stream = Vec::new();
        stream.extend_from_slice(&(claimed as u32).to_le_bytes());
        // No body bytes at all: the cap must trip on the prefix alone.
        let err = read_frame(&mut std::io::Cursor::new(&stream), cap).unwrap_err();
        match err {
            FrameError::TooLarge { claimed: c, max } => {
                assert_eq!((c, max), (claimed, cap), "seed {seed}");
            }
            other => panic!("seed {seed}: expected TooLarge, got {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Mutation family 3: raw random bytes
// ---------------------------------------------------------------------

#[test]
fn random_bytes_never_panic_the_codec() {
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x7261_6e64); // "rand"
        for _ in 0..64 {
            let junk = rng.bytes(512);
            let _ = Request::decode(&junk);
            let _ = Response::decode(&junk);
        }
    }
}

// ---------------------------------------------------------------------
// Mutation family 4: bit-flipped valid encodings
// ---------------------------------------------------------------------

#[test]
fn bitflipped_encodings_decode_to_roundtrippable_values_or_error() {
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x666c_6970); // "flip"
        for _ in 0..32 {
            let original = random_request(&mut rng).encode();
            let mut mutant = original.clone();
            for _ in 0..1 + rng.below(4) {
                let at = rng.below(mutant.len());
                mutant[at] ^= 1 << rng.below(8);
            }
            if let Ok(decoded) = Request::decode(&mutant) {
                let re = decoded.encode();
                assert_eq!(
                    Request::decode(&re).expect("re-encode of a decoded value must decode"),
                    decoded,
                    "seed {seed}: decode/encode not a fixpoint"
                );
            }
            let original = random_response(&mut rng).encode();
            let mut mutant = original.clone();
            for _ in 0..1 + rng.below(4) {
                let at = rng.below(mutant.len());
                mutant[at] ^= 1 << rng.below(8);
            }
            if let Ok(decoded) = Response::decode(&mutant) {
                let re = decoded.encode();
                assert_eq!(
                    Response::decode(&re).expect("re-encode of a decoded value must decode"),
                    decoded,
                    "seed {seed}: decode/encode not a fixpoint"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Transport round-trip: random frame sequences survive the reader
// ---------------------------------------------------------------------

#[test]
fn random_frame_sequences_roundtrip_through_the_transport() {
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x7365_7175); // "sequ"
        let requests: Vec<Request> =
            (0..1 + rng.below(8)).map(|_| random_request(&mut rng)).collect();
        let mut stream = Vec::new();
        for r in &requests {
            write_frame(&mut stream, &r.encode()).unwrap();
        }
        let mut cursor = std::io::Cursor::new(&stream);
        for (i, expected) in requests.iter().enumerate() {
            let body = read_frame(&mut cursor, 1 << 20)
                .unwrap_or_else(|e| panic!("seed {seed}: frame {i}: {e}"));
            assert_eq!(&Request::decode(&body).unwrap(), expected, "seed {seed}: frame {i}");
        }
        assert!(
            matches!(read_frame(&mut cursor, 1 << 20), Err(FrameError::Closed)),
            "seed {seed}: clean EOF after the last frame"
        );
    }
}
