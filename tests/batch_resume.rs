//! The checkpoint/resume contract of the supervised batch runtime:
//! a job interrupted at **any** stage boundary and then resumed — even
//! under a different thread count — produces a reconstruction
//! bit-identical to an uninterrupted run. Distances are compared as raw
//! f64 bits, not approximately.
//!
//! Also proven here: restored stages really are *restored*, not re-run —
//! a fault plan poisoned to panic inside an already-checkpointed stage
//! never fires on resume.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use rock::binary::image_to_bytes;
use rock::core::{suite, FaultPlan, Parallelism, Reconstruction, Rock, RockConfig, StageId};
use rock::supervisor::{ArtifactStore, JobOutcome, JobOutput, Supervisor, SupervisorOptions};

/// A scratch artifact-store root, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rock-batch-resume-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::open(&self.0).unwrap()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn image_bytes() -> Vec<u8> {
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    image_to_bytes(&compiled.stripped_image())
}

fn config(par: Parallelism) -> RockConfig {
    RockConfig::paper().with_parallelism(par)
}

fn options(resume: bool) -> SupervisorOptions {
    SupervisorOptions { resume, ..SupervisorOptions::default() }
}

fn full(output: JobOutput) -> Reconstruction {
    match output {
        JobOutput::Full(recon) => *recon,
        other => panic!("expected a full reconstruction, got {other:?}"),
    }
}

/// Bit-level equality: hierarchy, structural pins, and every distance
/// compared on raw bits.
fn assert_bit_identical(a: &Reconstruction, b: &Reconstruction, what: &str) {
    assert_eq!(a.hierarchy, b.hierarchy, "{what}: hierarchy diverged");
    assert_eq!(a.distances.len(), b.distances.len(), "{what}: distance count diverged");
    for (key, d) in &a.distances {
        let other = b.distances.get(key).unwrap_or_else(|| panic!("{what}: missing edge {key:?}"));
        assert_eq!(d.to_bits(), other.to_bits(), "{what}: distance bits for {key:?}");
    }
    assert_eq!(a.structural.pinned(), b.structural.pinned(), "{what}: pins diverged");
    assert_eq!(a.coverage, b.coverage, "{what}: coverage diverged");
}

const PARS: [Parallelism; 3] =
    [Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(8)];

#[test]
fn interrupt_at_every_stage_then_resume_is_bit_identical() {
    let bytes = image_bytes();
    let scratch = Scratch::new("every-stage");
    let reference = {
        let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(false));
        let result = sup.run_job("ref", &bytes);
        assert_eq!(result.report.outcome, JobOutcome::Ok);
        full(result.output)
    };

    for stage in StageId::ALL {
        for par in PARS {
            let scratch = Scratch::new(&format!("{}-{par:?}", stage.name()));
            // Crash the job right after `stage` checkpoints.
            let sup = Supervisor::new(config(par), scratch.store(), options(true))
                .with_fault_plan(Arc::new(FaultPlan::new().interrupt_after(stage)));
            let crashed = sup.run_job("job", &bytes);
            assert_eq!(
                crashed.report.outcome,
                JobOutcome::Interrupted(stage),
                "interrupt after {stage:?} under {par:?}"
            );
            assert!(matches!(crashed.output, JobOutput::None), "a crash leaves no output");

            // Resume with no faults: only the remaining stages run.
            let sup = Supervisor::new(config(par), scratch.store(), options(true));
            let resumed = sup.run_job("job", &bytes);
            assert_eq!(resumed.report.outcome, JobOutcome::Ok, "resume after {stage:?}");
            let expected: Vec<StageId> =
                StageId::ALL.iter().copied().take_while(|s| *s <= stage).collect();
            assert_eq!(
                resumed.report.restored, expected,
                "resume restores exactly the checkpointed prefix"
            );
            assert_bit_identical(
                &full(resumed.output),
                &reference,
                &format!("interrupt@{stage:?} par={par:?}"),
            );
        }
    }
}

#[test]
fn resume_crosses_thread_counts() {
    // Interrupt under one parallelism, resume under another: the content
    // key deliberately excludes parallelism, so checkpoints transfer.
    let bytes = image_bytes();
    let reference = {
        let scratch = Scratch::new("cross-ref");
        let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(false));
        full(sup.run_job("ref", &bytes).output)
    };
    for (crash_par, resume_par) in [
        (Parallelism::Threads(8), Parallelism::Serial),
        (Parallelism::Serial, Parallelism::Threads(2)),
    ] {
        let scratch = Scratch::new("cross");
        let sup = Supervisor::new(config(crash_par), scratch.store(), options(true))
            .with_fault_plan(Arc::new(FaultPlan::new().interrupt_after(StageId::Training)));
        let crashed = sup.run_job("job", &bytes);
        assert_eq!(crashed.report.outcome, JobOutcome::Interrupted(StageId::Training));

        let sup = Supervisor::new(config(resume_par), scratch.store(), options(true));
        let resumed = sup.run_job("job", &bytes);
        assert_eq!(resumed.report.outcome, JobOutcome::Ok);
        assert_eq!(resumed.report.restored, vec![StageId::Analysis, StageId::Training]);
        assert_bit_identical(
            &full(resumed.output),
            &reference,
            &format!("crash={crash_par:?} resume={resume_par:?}"),
        );
    }
}

#[test]
fn restored_stages_skip_fault_injection() {
    // Poison-plan proof: a plan that would panic every analyzed function
    // cannot touch a restored analysis stage, because restore replays
    // the checkpoint instead of re-running the work.
    let bytes = image_bytes();
    let image = rock::binary::image_from_bytes(&bytes).unwrap();
    let loaded = rock::loader::LoadedBinary::load(image).unwrap();

    let scratch = Scratch::new("poison");
    let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(true))
        .with_fault_plan(Arc::new(FaultPlan::new().interrupt_after(StageId::Analysis)));
    let crashed = sup.run_job("job", &bytes);
    assert_eq!(crashed.report.outcome, JobOutcome::Interrupted(StageId::Analysis));

    // Poison every function. A fresh run with this plan would be heavily
    // degraded — prove that first.
    let mut poison = FaultPlan::new();
    for f in loaded.functions() {
        poison = poison.panic_on(f.entry());
    }
    let poison = Arc::new(poison);
    let degraded = Rock::new(config(Parallelism::Serial))
        .with_fault_plan(Arc::clone(&poison))
        .reconstruct(&loaded);
    assert!(!degraded.diagnostics.is_empty(), "the poison plan must bite a fresh run");

    // The resumed run carries the same poison, yet completes cleanly:
    // analysis is restored, so no function is ever re-analyzed.
    let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(true))
        .with_fault_plan(poison);
    let resumed = sup.run_job("job", &bytes);
    assert_eq!(resumed.report.outcome, JobOutcome::Ok, "restored stages must not re-run faults");
    assert_eq!(resumed.report.restored, vec![StageId::Analysis]);
    assert_eq!(resumed.report.errors, 0);
}

#[test]
fn a_second_uninterrupted_run_restores_everything() {
    let bytes = image_bytes();
    let scratch = Scratch::new("warm");
    let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(true));
    let first = sup.run_job("job", &bytes);
    assert_eq!(first.report.outcome, JobOutcome::Ok);
    assert!(first.report.restored.is_empty());

    let second = sup.run_job("job", &bytes);
    assert_eq!(second.report.outcome, JobOutcome::Ok);
    assert_eq!(second.report.restored, StageId::ALL.to_vec());
    assert_bit_identical(&full(second.output), &full(first.output), "warm rerun");
}

#[test]
fn resume_off_ignores_a_populated_store() {
    let bytes = image_bytes();
    let scratch = Scratch::new("cold");
    let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(true));
    assert_eq!(sup.run_job("job", &bytes).report.outcome, JobOutcome::Ok);

    let cold = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(false));
    let result = cold.run_job("job", &bytes);
    assert_eq!(result.report.outcome, JobOutcome::Ok);
    assert!(result.report.restored.is_empty(), "resume=false must recompute");
}
