//! Storage-chaos soak: the artifact store and its supervisors under a
//! seeded, deterministic [`FaultyVfs`] — torn writes, ENOSPC, transient
//! EIO, rename failures, partial reads, crash-shaped stale tmp files.
//! The invariants:
//!
//! 1. **Survival** — no injected storage fault panics a job or the
//!    serve daemon; every job ends in a typed exit code.
//! 2. **Self-healing** — `ArtifactStore::scrub` quarantines whatever
//!    the chaos left corrupt, and a fault-free rerun over the scrubbed
//!    store is bit-identical (hierarchy, raw distance bits, metrics
//!    doc bytes) to a run that never saw a fault — at `Serial` and
//!    `Threads(8)` alike.
//! 3. **Classification** — scrub counts each damage class (corrupt
//!    frame, orphaned tmp, unknown entry) exactly, and a resumed batch
//!    recomputes only what was quarantined.
//!
//! Seeds come from `ROCK_CHAOS_SEEDS` (`"a..b"` range or a comma list;
//! CI sweeps `0..16`), defaulting to a small smoke set.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use rock::binary::image_to_bytes;
use rock::core::{suite, CorpusCache, Parallelism, Reconstruction, Rock, RockConfig, StageId};
use rock::serve::{result_fp, ServeClient, ServeConfig, Server};
use rock::supervisor::{
    exit, flush_subartifacts, preload_subartifacts, ArtifactStore, ChaosPlan, FaultyVfs,
    JobOutcome, JobOutput, StdVfs, Supervisor, SupervisorOptions, Vfs, QUARANTINE_DIR,
};

/// A scratch artifact-store root, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rock-store-chaos-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::open(&self.0).unwrap()
    }

    fn chaos_store(&self, seed: u64, rate_per_mille: u64) -> ArtifactStore {
        let vfs: Arc<dyn Vfs> =
            Arc::new(FaultyVfs::new(StdVfs::arc(), ChaosPlan::seeded(seed, rate_per_mille)));
        ArtifactStore::open_with(&self.0, vfs, false)
            .expect("chaos open survives (create_dir retries or store root pre-exists)")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Seeds to sweep: `ROCK_CHAOS_SEEDS="0..16"` or `"1,5,9"`, else `0..4`.
fn seeds() -> Vec<u64> {
    let Ok(spec) = std::env::var("ROCK_CHAOS_SEEDS") else {
        return (0..4).collect();
    };
    if let Some((lo, hi)) = spec.split_once("..") {
        let lo: u64 = lo.trim().parse().expect("bad ROCK_CHAOS_SEEDS lower bound");
        let hi: u64 = hi.trim().parse().expect("bad ROCK_CHAOS_SEEDS upper bound");
        (lo..hi).collect()
    } else {
        spec.split(',').map(|s| s.trim().parse().expect("bad ROCK_CHAOS_SEEDS entry")).collect()
    }
}

fn image_bytes() -> Vec<u8> {
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    image_to_bytes(&compiled.stripped_image())
}

fn config(par: Parallelism) -> RockConfig {
    RockConfig::paper().with_parallelism(par)
}

fn options(resume: bool) -> SupervisorOptions {
    SupervisorOptions { resume, ..SupervisorOptions::default() }
}

fn full(output: JobOutput) -> Reconstruction {
    match output {
        JobOutput::Full(recon) => *recon,
        other => panic!("expected a full reconstruction, got {other:?}"),
    }
}

/// Bit-level equality: hierarchy, raw distance bits, pins, coverage.
fn assert_bit_identical(a: &Reconstruction, b: &Reconstruction, what: &str) {
    assert_eq!(a.hierarchy, b.hierarchy, "{what}: hierarchy diverged");
    assert_eq!(a.distances.len(), b.distances.len(), "{what}: distance count diverged");
    for (key, d) in &a.distances {
        let other = b.distances.get(key).unwrap_or_else(|| panic!("{what}: missing edge {key:?}"));
        assert_eq!(d.to_bits(), other.to_bits(), "{what}: distance bits for {key:?}");
    }
    assert_eq!(a.structural.pinned(), b.structural.pinned(), "{what}: pins diverged");
    assert_eq!(a.coverage, b.coverage, "{what}: coverage diverged");
}

/// Metrics-doc byte equality. Only meaningful between runs with the
/// same restore profile: a restored stage re-derives its headline
/// metrics from the artifact but not every incidental counter, so cold
/// and warm docs differ by design — warm is compared against warm.
fn assert_metrics_identical(a: &Reconstruction, b: &Reconstruction, what: &str) {
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "{what}: metrics doc diverged byte-for-byte"
    );
}

const TYPED_CODES: [u8; 6] = [
    exit::OK,
    exit::INTERRUPTED,
    exit::DEGRADED,
    exit::FAILED,
    exit::DEADLINE,
    exit::RESUME_CORRUPT,
];

// ---------------------------------------------------------------------
// The batch soak: chaos runs, scrub, fault-free rerun bit-identity
// ---------------------------------------------------------------------

#[test]
fn chaos_sweep_survives_scrubs_and_reruns_bit_identical() {
    let bytes = image_bytes();
    // The never-faulted reference, one per parallelism (metrics docs
    // legitimately record thread counts): a cold run followed by a
    // warm (full-restore) run; the warm reconstruction is what a
    // repaired store's rerun must reproduce byte-for-byte.
    let warm_reference = |par: Parallelism| -> Reconstruction {
        let reference = Scratch::new(&format!("reference-{par:?}"));
        let sup = Supervisor::new(config(par), reference.store(), options(true));
        assert_eq!(sup.run_job("job", &bytes).report.outcome, JobOutcome::Ok);
        let sup = Supervisor::new(config(par), reference.store(), options(true));
        let result = sup.run_job("job", &bytes);
        assert_eq!(result.report.restored, StageId::ALL.to_vec(), "reference warm-restores all");
        full(result.output)
    };

    for par in [Parallelism::Serial, Parallelism::Threads(8)] {
        let warm_reference = warm_reference(par);
        for seed in seeds() {
            let scratch = Scratch::new(&format!("sweep-{seed}-{par:?}"));
            // Three supervised runs under the same chaos plan: the
            // first cold, the rest resuming whatever survived. Faults
            // land on different op sequence numbers each run, so
            // damage accumulates in different places.
            for round in 0..3 {
                let store = scratch.chaos_store(seed, 120);
                let sup = Supervisor::new(config(par), store, options(true));
                let result = sup.run_job("job", &bytes);
                let code = result.report.exit_code();
                assert!(
                    TYPED_CODES.contains(&code),
                    "seed {seed} {par:?} round {round}: untyped exit code {code}"
                );
                // Storage faults degrade checkpointing, never the
                // reconstruction itself: a completed run still answers.
                assert_eq!(
                    result.report.outcome,
                    JobOutcome::Ok,
                    "seed {seed} {par:?} round {round}"
                );
                assert_bit_identical(
                    &full(result.output),
                    &warm_reference,
                    &format!("seed {seed} {par:?} round {round} live output"),
                );
            }

            // Heal: scrub on the real filesystem, then prove the store
            // is coherent — a fault-free warm rerun must restore every
            // stage it finds and recompute the rest bit-identically.
            let report = scratch.store().scrub(false);
            assert_eq!(report.io_errors, 0, "seed {seed} {par:?}: scrub must finish clean");
            let rescrub = scratch.store().scrub(false);
            assert!(
                rescrub.is_clean(),
                "seed {seed} {par:?}: scrub must converge, got {:?}",
                rescrub.details
            );
            let sup = Supervisor::new(config(par), scratch.store(), options(true));
            let result = sup.run_job("job", &bytes);
            assert_eq!(result.report.outcome, JobOutcome::Ok);
            assert!(!result.report.resume_corrupt, "scrub left corrupt artifacts behind");
            assert_bit_identical(
                &full(result.output),
                &warm_reference,
                &format!("seed {seed} {par:?} post-scrub rerun"),
            );
            // That rerun re-checkpointed whatever scrub quarantined,
            // so one more fault-free run is a full restore — now the
            // metrics doc must match the never-faulted warm doc
            // byte-for-byte (same restore profile on both sides).
            let sup = Supervisor::new(config(par), scratch.store(), options(true));
            let result = sup.run_job("job", &bytes);
            assert_eq!(result.report.restored, StageId::ALL.to_vec());
            let recon = full(result.output);
            let what = format!("seed {seed} {par:?} healed warm rerun");
            assert_bit_identical(&recon, &warm_reference, &what);
            assert_metrics_identical(&recon, &warm_reference, &what);
        }
    }
}

#[test]
fn chaos_runs_report_store_activity_with_typed_incidents() {
    // At a high fault rate some checkpoint saves must fail; the report
    // carries the delta and typed incidents, never a panic. Across
    // seeds, at least one run must record store activity (rate 350
    // over dozens of ops makes a totally quiet sweep implausible).
    let bytes = image_bytes();
    let mut any_activity = false;
    for seed in seeds() {
        let scratch = Scratch::new(&format!("incidents-{seed}"));
        let store = scratch.chaos_store(seed, 350);
        let sup = Supervisor::new(config(Parallelism::Serial), store, options(true));
        let result = sup.run_job("job", &bytes);
        assert!(TYPED_CODES.contains(&result.report.exit_code()));
        for incident in &result.report.store_incidents {
            assert!(
                ["checkpoint_lost", "resume_unavailable", "resume_corrupt"]
                    .contains(&incident.kind()),
                "unknown incident kind {:?}",
                incident.kind()
            );
            assert!(!incident.detail().is_empty());
        }
        if let Some(stats) = &result.report.store {
            any_activity |= stats.has_activity();
            let json = result.report.to_json();
            assert!(json.contains("\"store\":{"), "store delta must render: {json}");
        }
    }
    assert!(any_activity, "rate-350 chaos sweep never touched the store counters");
}

// ---------------------------------------------------------------------
// The serve soak: chaos + drain/restart cycles, then a scrubbed rerun
// ---------------------------------------------------------------------

#[test]
fn serve_chaos_drain_restart_then_scrubbed_rerun_matches_fault_free_fp() {
    let image = image_bytes();
    // Fault-free daemon: the reference fingerprint.
    let reference_fp = {
        let scratch = Scratch::new("serve-ref");
        let mut cfg = ServeConfig::new(&scratch.0);
        cfg.poll_ms = 2;
        cfg.workers = 2;
        let server = Server::bind(cfg, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        let mut c = ServeClient::connect(addr, "ref").unwrap();
        let job = match c.submit("job", 0, &image).unwrap() {
            rock::serve::wire::Response::Accepted { job } => job,
            other => panic!("expected Accepted, got {other:?}"),
        };
        let state = c.wait(job, 10, 120_000).unwrap();
        let fp = match state {
            rock::serve::wire::JobState::Done { exit_code, result_fp, .. } => {
                assert_eq!(exit_code, exit::OK);
                result_fp
            }
            other => panic!("expected Done, got {other:?}"),
        };
        handle.drain();
        join.join().unwrap().unwrap();
        fp
    };
    assert_ne!(reference_fp, result_fp(&JobOutput::None), "reference produced a real result");

    for seed in seeds() {
        let scratch = Scratch::new(&format!("serve-chaos-{seed}"));
        // Two drain/restart cycles over the same chaotic store: every
        // admitted job must reach a typed terminal state each cycle.
        for cycle in 0..2u32 {
            let vfs: Arc<dyn Vfs> = Arc::new(FaultyVfs::new(
                StdVfs::arc(),
                ChaosPlan::seeded(seed ^ u64::from(cycle), 120),
            ));
            let mut cfg = ServeConfig::new(&scratch.0);
            cfg.poll_ms = 2;
            cfg.workers = 2;
            cfg.vfs = Some(vfs);
            let server = Server::bind(cfg, "127.0.0.1:0").expect("bind survives chaos");
            let addr = server.local_addr().unwrap();
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run());
            let mut c = ServeClient::connect_with_retry(addr, "chaos", 3).unwrap();
            let mut jobs = Vec::new();
            for j in 0..3 {
                if let rock::serve::wire::Response::Accepted { job } =
                    c.submit(&format!("job-{j}"), 0, &image).unwrap()
                {
                    jobs.push(job);
                }
            }
            for job in jobs {
                match c.wait(job, 10, 120_000).unwrap() {
                    rock::serve::wire::JobState::Done { exit_code, .. } => {
                        assert!(
                            TYPED_CODES.contains(&exit_code),
                            "seed {seed} cycle {cycle}: untyped exit {exit_code}"
                        );
                    }
                    other => panic!("seed {seed} cycle {cycle}: non-terminal {other:?}"),
                }
            }
            handle.drain();
            let summary = join.join().unwrap().expect("daemon survives storage chaos");
            assert_eq!(summary.panics_contained, 0, "storage faults must not panic jobs");
        }

        // Heal the store, restart fault-free, and demand the reference
        // result back — the chaos must leave no observable residue.
        let report = scratch.store().scrub(false);
        assert_eq!(report.io_errors, 0);
        let mut cfg = ServeConfig::new(&scratch.0);
        cfg.poll_ms = 2;
        let server = Server::bind(cfg, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        let mut c = ServeClient::connect(addr, "verify").unwrap();
        let job = match c.submit("job-0", 0, &image).unwrap() {
            rock::serve::wire::Response::Accepted { job } => job,
            other => panic!("expected Accepted, got {other:?}"),
        };
        match c.wait(job, 10, 120_000).unwrap() {
            rock::serve::wire::JobState::Done { exit_code, result_fp: fp, .. } => {
                assert_eq!(exit_code, exit::OK, "seed {seed}: post-scrub job not clean");
                assert_eq!(fp, reference_fp, "seed {seed}: post-scrub fp diverged");
            }
            other => panic!("seed {seed}: non-terminal {other:?}"),
        }
        handle.drain();
        join.join().unwrap().unwrap();
    }
}

// ---------------------------------------------------------------------
// Scrub classification: one of each damage class, counted exactly
// ---------------------------------------------------------------------

#[test]
fn scrub_classifies_damage_and_resume_recomputes_only_the_quarantined_stage() {
    let bytes = image_bytes();
    let scratch = Scratch::new("classify");
    let reference = {
        let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(true));
        let result = sup.run_job("job", &bytes);
        assert_eq!(result.report.outcome, JobOutcome::Ok);
        full(result.output)
    };
    // One handle for the whole drill: re-opening would itself sweep
    // tmp files (that behavior gets its own test below), stealing the
    // scrub's count.
    let store = scratch.store();
    let key = rock::supervisor::content_key(&bytes, &config(Parallelism::Serial));
    let job_dir = store.job_dir(key);

    // Damage class 1: flip one payload byte of the *last* stage's
    // artifact — checksum breaks, scrub must quarantine it.
    let corrupt_path = job_dir.join("lifting.art");
    let mut art = fs::read(&corrupt_path).unwrap();
    let mid = art.len() / 2;
    art[mid] ^= 0xFF;
    fs::write(&corrupt_path, &art).unwrap();
    // Damage class 2: an orphaned tmp file from a phantom crash.
    fs::write(job_dir.join(".analysis.art.tmp"), b"half a frame").unwrap();
    // Damage class 3: an unknown entry no artifact should be named as.
    fs::write(job_dir.join("bogus.art"), b"who wrote this").unwrap();

    // Dry run counts without touching anything.
    let dry = store.scrub(true);
    assert!(dry.dry_run);
    assert_eq!(
        (dry.corrupt_quarantined, dry.tmp_swept, dry.unknown_quarantined, dry.io_errors),
        (1, 1, 1, 0),
        "dry-run misclassified: {:?}",
        dry.details
    );
    assert!(corrupt_path.exists(), "dry run must not move files");
    assert!(job_dir.join(".analysis.art.tmp").exists(), "dry run must not sweep");

    let report = store.scrub(false);
    assert_eq!(report.jobs_scanned, 1);
    assert_eq!(report.artifacts_ok, (StageId::ALL.len() - 1) as u64);
    assert_eq!(
        (
            report.corrupt_quarantined,
            report.tmp_swept,
            report.unknown_quarantined,
            report.io_errors
        ),
        (1, 1, 1, 0),
        "scrub misclassified: {:?}",
        report.details
    );
    assert!(!report.is_clean());
    assert!(!corrupt_path.exists(), "corrupt artifact must be moved out of the job dir");
    assert!(
        scratch.0.join(QUARANTINE_DIR).is_dir(),
        "quarantined files land under {QUARANTINE_DIR}"
    );
    assert!(store.scrub(false).is_clean(), "scrub converges");

    // Resume over the healed store: exactly the three intact stages
    // restore; only the quarantined lifting stage is recomputed — and
    // the result is bit-identical to the never-damaged run.
    let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(true));
    let result = sup.run_job("job", &bytes);
    assert_eq!(result.report.outcome, JobOutcome::Ok);
    assert_eq!(
        result.report.restored,
        vec![StageId::Analysis, StageId::Training, StageId::Distances],
        "only the quarantined stage recomputes"
    );
    assert!(!result.report.resume_corrupt, "scrub already removed the damage");
    assert_bit_identical(&full(result.output), &reference, "post-scrub resume");
}

// ---------------------------------------------------------------------
// Stale-tmp leak: crashes strand tmps; open sweeps them
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// The incremental lane: chaos-faulted sub-artifacts degrade to
// recompute (never stale reuse), and scrub quarantines a corrupt
// function-level artifact without invalidating its tier siblings
// ---------------------------------------------------------------------

fn delta_config(par: Parallelism) -> RockConfig {
    // Position-independent function keys require canonical calls.
    RockConfig::paper().with_parallelism(par).with_canonical_calls()
}

fn delta_images() -> (rock::loader::LoadedBinary, rock::loader::LoadedBinary) {
    let base_spec = suite::delta_spec(3, 5, 5);
    let mut edited_spec = base_spec.clone();
    suite::apply_delta(
        &mut edited_spec,
        suite::DeltaEdit::EditBody { family: 1, class: 4, method: 0 },
    );
    let load = |spec: &suite::DeltaSpec| {
        let compiled = suite::delta_program(spec).compile().expect("compiles");
        rock::loader::LoadedBinary::load(compiled.stripped_image()).expect("loads")
    };
    (load(&base_spec), load(&edited_spec))
}

fn reconstruct(
    loaded: &rock::loader::LoadedBinary,
    cache: Option<&Arc<CorpusCache>>,
) -> Reconstruction {
    let rock = Rock::new(delta_config(Parallelism::Serial));
    match cache {
        Some(c) => rock.with_corpus_cache(Arc::clone(c)).reconstruct(loaded),
        None => rock.reconstruct(loaded),
    }
}

/// Everything a run reports, byte for byte (both sides are full cold
/// pipelines, so even the metrics doc must match).
fn assert_run_identical(cold: &Reconstruction, warm: &Reconstruction, what: &str) {
    assert_bit_identical(cold, warm, what);
    assert_eq!(cold.diagnostics, warm.diagnostics, "{what}: diagnostics diverged");
    assert_metrics_identical(cold, warm, what);
}

#[test]
fn chaos_faulted_subartifacts_degrade_to_recompute_never_stale_reuse() {
    let (base, edited) = delta_images();
    let cold = reconstruct(&edited, None);
    for seed in seeds() {
        let scratch = Scratch::new(&format!("incr-chaos-{seed}"));
        // Flush the base image's sub-artifacts through a faulty vfs:
        // torn writes, ENOSPC, rename failures. Failures are counted,
        // never thrown.
        let populate = Arc::new(CorpusCache::new());
        reconstruct(&base, Some(&populate));
        let flushed = flush_subartifacts(&scratch.chaos_store(seed, 200), &populate);
        assert!(
            flushed.flushed + flushed.io_errors > 0,
            "seed {seed}: the flush must have attempted work"
        );

        // Bit-rot whatever landed: flip a byte in every third file.
        let mut rotted = 0u64;
        for tier in ["exec", "model", "distance", "lifting"] {
            let dir = scratch.0.join("sub").join(tier);
            let Ok(entries) = fs::read_dir(&dir) else { continue };
            let mut files: Vec<_> = entries.map(|e| e.unwrap().path()).collect();
            files.sort();
            for file in files.iter().step_by(3) {
                let mut bytes = fs::read(file).unwrap();
                if !bytes.is_empty() {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0xFF;
                    fs::write(file, &bytes).unwrap();
                    rotted += 1;
                }
            }
        }

        // The snapshot pack mirrors the loose files — rot it too, or
        // the preload would simply self-heal every rotted loose file
        // from its healthy pack copy (that healing path gets its own
        // test below; this one pins the degrade-to-recompute path).
        let pack = scratch.0.join("sub").join("snapshot.pack");
        if rotted > 0 && pack.exists() {
            let mut bytes = fs::read(&pack).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            fs::write(&pack, &bytes).unwrap();
        }

        // Preload through a *different* chaos plan (partial reads,
        // transient EIO): damaged or unreadable artifacts are skipped
        // and counted; whatever survives is trusted because it proved
        // its own key.
        let warm_cache = Arc::new(CorpusCache::new());
        let preloaded = preload_subartifacts(&scratch.chaos_store(seed ^ 0xF00D, 200), &warm_cache);
        if rotted > 0 {
            assert!(
                preloaded.corrupt_skipped > 0,
                "seed {seed}: {rotted} rotted files must be detected, not imported"
            );
        }

        // The patched run over the mangled store: degraded reuse at
        // worst, bit-identical always.
        let warm = reconstruct(&edited, Some(&warm_cache));
        assert_run_identical(&cold, &warm, &format!("seed {seed} chaos incremental"));

        // And the store heals: scrub quarantines the rot and converges.
        let report = scratch.store().scrub(false);
        assert_eq!(report.io_errors, 0, "seed {seed}: scrub must finish clean");
        assert!(scratch.store().scrub(false).is_clean(), "seed {seed}: scrub must converge");
    }
}

#[test]
fn scrub_quarantines_corrupt_subartifact_without_invalidating_siblings() {
    let (base, edited) = delta_images();
    let scratch = Scratch::new("incr-quarantine");
    let populate = Arc::new(CorpusCache::new());
    reconstruct(&base, Some(&populate));
    let flushed = flush_subartifacts(&scratch.store(), &populate);
    assert!(flushed.flushed > 2, "need siblings to prove isolation");
    assert_eq!(flushed.io_errors, 0);

    // Corrupt exactly one function-level (exec tier) artifact.
    let exec_dir = scratch.0.join("sub").join("exec");
    let mut exec_files: Vec<_> =
        fs::read_dir(&exec_dir).unwrap().map(|e| e.unwrap().path()).collect();
    exec_files.sort();
    assert!(exec_files.len() > 1, "the exec tier needs siblings");
    let victim = exec_files[exec_files.len() / 2].clone();
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&victim, &bytes).unwrap();

    // Dry run classifies without touching; the real scrub quarantines
    // the one victim and leaves every sibling in place.
    let dry = scratch.store().scrub(true);
    assert_eq!(dry.corrupt_quarantined, 1, "dry-run misclassified: {:?}", dry.details);
    assert!(victim.exists(), "dry run must not move files");
    let report = scratch.store().scrub(false);
    assert_eq!(report.corrupt_quarantined, 1, "scrub misclassified: {:?}", report.details);
    assert_eq!(report.artifacts_ok, flushed.flushed - 1, "every sibling must verify");
    assert!(!victim.exists(), "the corrupt sub-artifact must be quarantined");
    let quarantined: Vec<_> = fs::read_dir(scratch.0.join(QUARANTINE_DIR))
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        quarantined.iter().any(|n| n.starts_with("sub.exec.")),
        "quarantine must name the tier: {quarantined:?}"
    );
    for sibling in exec_files.iter().filter(|p| **p != victim) {
        assert!(sibling.exists(), "sibling {} must survive the scrub", sibling.display());
    }
    assert!(scratch.store().scrub(false).is_clean(), "scrub converges");

    // The healed store preloads everything but the victim, and the
    // patched run is still bit-identical to cold.
    let warm_cache = Arc::new(CorpusCache::new());
    let preloaded = preload_subartifacts(&scratch.store(), &warm_cache);
    assert_eq!(preloaded.preloaded, flushed.flushed - 1);
    assert_eq!(preloaded.corrupt_skipped, 0, "scrub already removed the damage");
    let cold = reconstruct(&edited, None);
    let warm = reconstruct(&edited, Some(&warm_cache));
    assert_run_identical(&cold, &warm, "post-quarantine incremental run");
    let s = warm_cache.stats();
    assert!(s.tracelet_hits > 0, "surviving siblings must still be reused");
}

#[test]
fn snapshot_pack_self_heals_rotted_loose_artifacts() {
    // The pack and the loose files carry the same frames. When a loose
    // file rots but the pack survives, preload serves the healthy pack
    // copy (content-validated like any other import) — the rot costs
    // nothing. The listing gate still holds: only *listed* artifacts
    // may load from the pack, so this is healing, not resurrection
    // (the quarantine test above pins the resurrection side).
    let (base, edited) = delta_images();
    let scratch = Scratch::new("incr-pack-heal");
    let populate = Arc::new(CorpusCache::new());
    reconstruct(&base, Some(&populate));
    let flushed = flush_subartifacts(&scratch.store(), &populate);
    assert!(flushed.flushed > 2);
    assert_eq!(flushed.io_errors, 0);

    let exec_dir = scratch.0.join("sub").join("exec");
    let mut exec_files: Vec<_> =
        fs::read_dir(&exec_dir).unwrap().map(|e| e.unwrap().path()).collect();
    exec_files.sort();
    let victim = exec_files[exec_files.len() / 2].clone();
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&victim, &bytes).unwrap();

    let warm_cache = Arc::new(CorpusCache::new());
    let preloaded = preload_subartifacts(&scratch.store(), &warm_cache);
    assert_eq!(
        preloaded.preloaded, flushed.flushed,
        "the pack must serve the rotted loose file's healthy copy"
    );
    assert_eq!(preloaded.corrupt_skipped, 0, "nothing read the rotted bytes");
    let cold = reconstruct(&edited, None);
    let warm = reconstruct(&edited, Some(&warm_cache));
    assert_run_identical(&cold, &warm, "pack-healed incremental run");
}

#[test]
fn open_sweeps_stale_tmp_files_and_counts_them() {
    let bytes = image_bytes();
    let scratch = Scratch::new("tmp-sweep");
    {
        let sup = Supervisor::new(config(Parallelism::Serial), scratch.store(), options(true));
        assert_eq!(sup.run_job("job", &bytes).report.outcome, JobOutcome::Ok);
    }
    let key = rock::supervisor::content_key(&bytes, &config(Parallelism::Serial));
    let dir = scratch.store().job_dir(key);
    fs::write(dir.join(".training.art.tmp"), b"stranded").unwrap();
    fs::write(dir.join(".distances.art.tmp"), b"stranded too").unwrap();

    let store = scratch.store(); // open() sweeps
    assert_eq!(store.stats().tmp_swept, 2, "open must sweep stale tmp files");
    assert!(!dir.join(".training.art.tmp").exists());
    // The real artifacts are untouched and still restore.
    let sup = Supervisor::new(config(Parallelism::Serial), store, options(true));
    let result = sup.run_job("job", &bytes);
    assert_eq!(result.report.restored, StageId::ALL.to_vec());
}
