//! Tests of the public workload-generator API (`suite::generate_program`
//! plus `ClassSpec`) — the interface downstream users get for
//! synthesizing benchmarks with controlled structural characters.

use rock::core::suite::{generate_program, ClassSpec};
use rock::core::{evaluate, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::minicpp::{compile, CompileOptions};

#[test]
fn custom_hierarchy_roundtrips() {
    // A diamond-free 5-type shape with one override-heavy sibling.
    let mut specs = vec![ClassSpec::node(None, 2, 0)];
    specs.push(ClassSpec::node(Some(0), 1, 1));
    specs.push(ClassSpec { overrides: 2, ..ClassSpec::node(Some(0), 0, 2) });
    specs.push(ClassSpec::node(Some(1), 1, 3));
    specs.push(ClassSpec::node(Some(2), 2, 4));
    let program = generate_program("custom", &specs);
    assert_eq!(program.classes.len(), 5);
    // One driver per concrete class.
    assert_eq!(program.functions.len(), 5);

    let compiled = compile(&program, &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let eval = evaluate(&compiled, &recon);
    assert_eq!(eval.with_slm.avg_missing, 0.0);
    assert_eq!(eval.with_slm.avg_added, 0.0);
}

#[test]
fn abstract_specs_produce_no_drivers() {
    let specs = vec![
        ClassSpec { is_abstract: true, ..ClassSpec::node(None, 2, 0) },
        ClassSpec::node(Some(0), 1, 1),
    ];
    let program = generate_program("abs", &specs);
    assert_eq!(program.functions.len(), 1, "only the concrete class gets a driver");
    // With elimination on, only one type survives.
    let mut opts = CompileOptions::default();
    opts.eliminate_abstract = true;
    let compiled = compile(&program, &opts).unwrap();
    assert_eq!(compiled.vtables().len(), 1);
    assert_eq!(compiled.ground_truth().parent_of("abs_C1"), None);
}

#[test]
fn equal_body_seeds_fold_under_comdat() {
    // Two same-shaped root classes with equal body seeds: COMDAT merges
    // their implementations, linking the families (error source 1 on
    // demand).
    let mut specs = vec![ClassSpec::node(None, 2, 0), ClassSpec::node(None, 2, 1)];
    specs[0].body_seed = 42;
    specs[1].body_seed = 42;
    let program = generate_program("fold", &specs);
    let mut opts = CompileOptions::default();
    opts.comdat_fold = true;
    let compiled = compile(&program, &opts).unwrap();
    assert!(!compiled.folded_functions().is_empty());
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    assert_eq!(recon.structural.families().len(), 1, "folding merges the families");
}

#[test]
fn inline_ctor_severs_exactly_one_link() {
    // 0 -> 1 -> 2 chain; class 1's ctor inlined into 2, and 2 overrides
    // everything: the 1-2 link leaves no structural trace, 0-1 keeps its
    // pin.
    let specs = vec![
        ClassSpec::node(None, 1, 0),
        ClassSpec { inline_ctor: true, ..ClassSpec::node(Some(0), 1, 1) },
        ClassSpec { overrides: usize::MAX, own_methods: 1, ..ClassSpec::node(Some(1), 1, 2) },
    ];
    let program = generate_program("sever", &specs);
    let compiled = compile(&program, &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let c0 = compiled.vtable_of("sever_C0").unwrap();
    let c1 = compiled.vtable_of("sever_C1").unwrap();
    assert_eq!(recon.structural.pinned().get(&c1), Some(&c0), "0-1 pin intact");
    // But class 2 fell out of the family: note its ctor inlines 1's,
    // which *calls 0's ctor* (grandparent leak — exactly how real
    // single-level inlining behaves), so 2 is pinned to 0 instead.
    let c2 = compiled.vtable_of("sever_C2").unwrap();
    assert_eq!(recon.structural.pinned().get(&c2), Some(&c0), "grandparent leak");
}
