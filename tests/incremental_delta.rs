//! The incremental-invalidation contract, fuzzed over source edits:
//! reconstructing a *patched* image against sub-artifacts persisted
//! from the *base* image must be bit-identical to a cold run of the
//! patched image — reuse may only change wall clock, never an output —
//! while actually reusing everything the edit did not touch.
//!
//! The workload is `suite::delta_spec`: several independent class
//! families whose spec fields map one-to-one onto source constructs, so
//! a seeded fuzzer can draw small, *known* edits (edit a method body,
//! add/remove a method, reorder vtable slots, add a class, flip a call
//! target) and we can predict the artifact dirty set of each.
//!
//! `ROCK_DELTA_SEEDS=n` widens the sweep (default 4 seeds; CI runs 16).

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use rock::core::{suite, CorpusCache, Parallelism, Reconstruction, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::supervisor::{flush_subartifacts, preload_subartifacts, ArtifactStore};

/// A scratch artifact-store root, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("rock-incr-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::open(&self.0).unwrap()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn load(spec: &suite::DeltaSpec) -> LoadedBinary {
    let compiled = suite::delta_program(spec).compile().expect("delta programs compile");
    LoadedBinary::load(compiled.stripped_image()).expect("delta images load")
}

/// Position-independent function keys require canonical calls.
fn config(par: Parallelism) -> RockConfig {
    RockConfig::paper().with_parallelism(par).with_canonical_calls()
}

fn reconstruct_cold(loaded: &LoadedBinary, par: Parallelism) -> Reconstruction {
    Rock::new(config(par)).reconstruct(loaded)
}

fn reconstruct_warm(
    loaded: &LoadedBinary,
    par: Parallelism,
    cache: &Arc<CorpusCache>,
) -> Reconstruction {
    Rock::new(config(par)).with_corpus_cache(Arc::clone(cache)).reconstruct(loaded)
}

/// Runs the base image once, flushes its sub-artifacts to `store`, and
/// returns a **fresh** cache preloaded purely from disk — the patched
/// run sees only what survived the store round trip, exactly like a new
/// process after `rock batch --incremental`.
fn preloaded_from_base(
    base: &LoadedBinary,
    par: Parallelism,
    store: &ArtifactStore,
) -> Arc<CorpusCache> {
    let populate = Arc::new(CorpusCache::new());
    reconstruct_warm(base, par, &populate);
    let flushed = flush_subartifacts(store, &populate);
    assert!(flushed.flushed > 0, "base run must persist sub-artifacts");
    assert_eq!(flushed.io_errors, 0, "healthy store must not error");
    let warm = Arc::new(CorpusCache::new());
    let preloaded = preload_subartifacts(store, &warm);
    assert_eq!(preloaded.preloaded, flushed.flushed, "every flushed artifact must preload");
    assert_eq!(preloaded.corrupt_skipped, 0, "healthy store must preload cleanly");
    warm
}

/// Byte-level equality over everything a run reports.
fn assert_identical(cold: &Reconstruction, warm: &Reconstruction, ctx: &str) {
    assert_eq!(cold.hierarchy, warm.hierarchy, "{ctx}: hierarchies diverged");
    assert_eq!(cold.distances.len(), warm.distances.len(), "{ctx}: distance sets differ");
    for (key, d) in &cold.distances {
        assert_eq!(
            d.to_bits(),
            warm.distances[key].to_bits(),
            "{ctx}: distance bits for {key:?} diverged"
        );
    }
    assert_eq!(cold.diagnostics, warm.diagnostics, "{ctx}: diagnostics diverged");
    assert_eq!(cold.coverage, warm.coverage, "{ctx}: coverage diverged");
    assert_eq!(
        cold.metrics.to_json(),
        warm.metrics.to_json(),
        "{ctx}: metrics documents diverged (incremental reuse must be invisible)"
    );
}

/// xorshift64*: tiny deterministic PRNG for seed-indexed edit draws.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2_685_821_657_736_338_717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Draws one of the five issue-mandated edit kinds.
fn draw_edit(rng: &mut Rng) -> suite::DeltaEdit {
    let family = rng.pick(64);
    let class = rng.pick(64);
    match rng.pick(5) {
        0 => suite::DeltaEdit::EditBody { family, class, method: rng.pick(8) },
        1 => {
            if rng.pick(2) == 0 {
                suite::DeltaEdit::AddMethod { family, class }
            } else {
                suite::DeltaEdit::RemoveMethod { family, class }
            }
        }
        2 => suite::DeltaEdit::ReorderSlots { family, class },
        3 => suite::DeltaEdit::AddClass { family },
        _ => suite::DeltaEdit::FlipCallTarget { family, class },
    }
}

fn delta_seeds() -> u64 {
    std::env::var("ROCK_DELTA_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// The fuzzer: for every seed, apply one random edit to a fresh base
/// spec and require cold ≡ incremental on the patched image at both
/// thread counts, with the warm run actually reusing base artifacts.
#[test]
fn fuzzed_edits_cold_vs_incremental_bit_identical() {
    for seed in 0..delta_seeds() {
        let mut rng = Rng::new(seed.wrapping_add(0xD317A));
        let base_spec = suite::delta_spec(3, 5, seed);
        let mut edited_spec = base_spec.clone();
        let edit = draw_edit(&mut rng);
        suite::apply_delta(&mut edited_spec, edit);
        if edited_spec == base_spec {
            // Documented no-op corners (e.g. RemoveMethod on a
            // single-method class); the identity claim is vacuous.
            continue;
        }
        let base = load(&base_spec);
        let edited = load(&edited_spec);
        for par in [Parallelism::Serial, Parallelism::Threads(8)] {
            let scratch = Scratch::new(&format!("fuzz-{seed}-{par:?}"));
            let cold = reconstruct_cold(&edited, par);
            let warm_cache = preloaded_from_base(&base, par, &scratch.store());
            let warm = reconstruct_warm(&edited, par, &warm_cache);
            assert_identical(&cold, &warm, &format!("seed {seed} {edit:?} {par:?}"));
            let s = warm_cache.stats();
            assert!(
                s.tracelet_hits > 0,
                "seed {seed} {edit:?} {par:?}: a small edit must reuse function artifacts"
            );
            assert_eq!(s.corrupt_dropped, 0, "seed {seed}: healthy artifacts must verify");
        }
    }
}

/// The reuse-floor oracle: a 1-function edit (one method body rewritten
/// in a leaf class) must reuse at least 90% of the function-level
/// artifacts persisted by the base image.
#[test]
fn one_function_edit_reuses_ninety_percent_of_function_artifacts() {
    let base_spec = suite::delta_spec(6, 6, 77);
    let mut edited_spec = base_spec.clone();
    // Leaf class of family 2 (binary tree: the last class is a leaf), so
    // the dirty set is the method itself plus the leaf's own driver.
    suite::apply_delta(
        &mut edited_spec,
        suite::DeltaEdit::EditBody { family: 2, class: 5, method: 1 },
    );
    assert_ne!(edited_spec, base_spec);
    let base = load(&base_spec);
    let edited = load(&edited_spec);
    let par = Parallelism::Serial;
    let scratch = Scratch::new("reuse-floor");
    let cold = reconstruct_cold(&edited, par);
    let warm_cache = preloaded_from_base(&base, par, &scratch.store());
    let warm = reconstruct_warm(&edited, par, &warm_cache);
    assert_identical(&cold, &warm, "1-function edit");
    let s = warm_cache.stats();
    let lookups = s.tracelet_hits + s.tracelet_misses;
    assert!(lookups > 0, "the run must consult the exec tier");
    let reuse = s.tracelet_hits as f64 / lookups as f64;
    assert!(
        reuse >= 0.90,
        "1-function edit reused only {:.1}% of function artifacts ({} hits / {} lookups)",
        reuse * 100.0,
        s.tracelet_hits,
        lookups
    );
    // Type- and pair-level tiers must also see substantial reuse: only
    // the types whose tracelet multiset changed may retrain.
    assert!(s.slm_hits > 0, "unchanged types must reuse their SLMs");
    assert!(s.distance_hits > 0, "untouched pairs must reuse distances");
}

/// The position-shift regression: declaring the salt class first moves
/// every family function to a different address without changing a byte
/// of their code. Function-level keys are position-independent content
/// labels, so the shifted image must still hit massively — an
/// address-keyed (or whole-image-keyed) scheme scores 0% here.
#[test]
fn position_shifted_image_reuses_function_artifacts() {
    let base_spec = suite::delta_spec(4, 5, 13);
    let mut shifted_spec = base_spec.clone();
    shifted_spec.salt_first = true;
    let base = load(&base_spec);
    let shifted = load(&shifted_spec);
    let par = Parallelism::Serial;
    let scratch = Scratch::new("pos-shift");
    let cold = reconstruct_cold(&shifted, par);
    let warm_cache = preloaded_from_base(&base, par, &scratch.store());
    let warm = reconstruct_warm(&shifted, par, &warm_cache);
    assert_identical(&cold, &warm, "position-shifted image");
    let s = warm_cache.stats();
    let lookups = s.tracelet_hits + s.tracelet_misses;
    let reuse = s.tracelet_hits as f64 / lookups.max(1) as f64;
    assert!(
        reuse >= 0.90,
        "pure position shift reused only {:.1}% ({} hits / {} lookups) — keys are not position-independent",
        reuse * 100.0,
        s.tracelet_hits,
        lookups
    );
    assert!(s.slm_hits > 0, "shifted types must reuse their SLMs");
    assert!(s.distance_hits > 0, "shifted pairs must reuse distances");
}

/// A salt-class edit touches no family function: every family artifact
/// must be reused, and only the salt class's own functions recompute.
#[test]
fn salt_class_edit_reuses_all_family_artifacts() {
    let base_spec = suite::delta_spec(4, 5, 21);
    let mut edited_spec = base_spec.clone();
    suite::apply_delta(&mut edited_spec, suite::DeltaEdit::ReseedSalt);
    let base = load(&base_spec);
    let edited = load(&edited_spec);
    let par = Parallelism::Serial;
    let scratch = Scratch::new("salt-edit");
    let cold = reconstruct_cold(&edited, par);
    let warm_cache = preloaded_from_base(&base, par, &scratch.store());
    let warm = reconstruct_warm(&edited, par, &warm_cache);
    assert_identical(&cold, &warm, "salt-class edit");
    let s = warm_cache.stats();
    let lookups = s.tracelet_hits + s.tracelet_misses;
    let reuse = s.tracelet_hits as f64 / lookups.max(1) as f64;
    assert!(reuse >= 0.90, "salt edit reused only {:.1}%", reuse * 100.0);
}

/// A 1-family edit re-seeds one family wholesale: its artifacts all
/// miss, the other families' artifacts all hit, and the answers still
/// match a cold run bit for bit.
#[test]
fn one_family_edit_retrains_only_that_family() {
    let base_spec = suite::delta_spec(4, 5, 33);
    let mut edited_spec = base_spec.clone();
    suite::apply_delta(&mut edited_spec, suite::DeltaEdit::ReseedFamily { family: 1 });
    let base = load(&base_spec);
    let edited = load(&edited_spec);
    let par = Parallelism::Threads(8);
    let scratch = Scratch::new("family-edit");
    let cold = reconstruct_cold(&edited, par);
    let warm_cache = preloaded_from_base(&base, par, &scratch.store());
    let warm = reconstruct_warm(&edited, par, &warm_cache);
    assert_identical(&cold, &warm, "1-family edit");
    let s = warm_cache.stats();
    assert!(s.tracelet_hits > 0, "three untouched families must hit the exec tier");
    assert!(s.tracelet_misses > 0, "the re-seeded family must miss the exec tier");
    assert!(s.slm_hits > 0, "untouched types must reuse their SLMs");
}
