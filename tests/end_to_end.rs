//! End-to-end integration tests: source program → compiled stripped
//! binary → loaded → reconstructed → evaluated, across optimization
//! levels.

use rock::core::{evaluate, project_hierarchy, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::minicpp::{compile, CompileOptions, Compiled, Expr, ProgramBuilder};

fn reconstruct(compiled: &Compiled) -> rock::core::Reconstruction {
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    Rock::new(RockConfig::paper()).reconstruct(&loaded)
}

/// A medium hierarchy: root, two mid-level classes, four leaves.
fn seven_types() -> ProgramBuilder {
    let mut p = ProgramBuilder::new();
    p.class("Root").field("state").method("base0", |b| {
        b.write("this", "state", rock::minicpp::Expr::Const(1));
        b.ret();
    });
    p.class("MidA").base("Root").method("mid_a", |b| {
        b.read("v", "this", "state");
        b.ret();
    });
    p.class("MidB")
        .base("Root")
        .field("bstate")
        .method("mid_b0", |b| {
            b.write("this", "bstate", Expr::Const(7));
            b.ret();
        })
        .method("mid_b1", |b| {
            b.read("v", "this", "bstate");
            b.write("this", "bstate", Expr::Const(9));
            b.ret();
        });
    for (leaf, base) in
        [("LeafA0", "MidA"), ("LeafA1", "MidA"), ("LeafB0", "MidB"), ("LeafB1", "MidB")]
    {
        let fld = format!("{}_data", leaf.to_lowercase());
        let fld2 = fld.clone();
        let k = leaf.len() as u64 + leaf.ends_with('1') as u64 * 11;
        p.class(leaf).base(base).field(&fld).method(
            format!("{}_own", leaf.to_lowercase()),
            move |b| {
                b.write("this", &fld2, Expr::Const(k));
                b.read("v", "this", &fld2);
                b.ret();
            },
        );
    }
    // Distinctive drivers: each class has a usage *segment* (its methods
    // with class-specific counts/interleavings); a driver replays the
    // segments of every ancestor root-first, then its own — behavioral
    // containment along chains, distinctive signatures across siblings.
    let segment = |f: &mut rock::minicpp::FuncBuilder, class: &str| match class {
        "Root" => {
            f.vcall("o", "base0", vec![]);
            f.vcall("o", "base0", vec![]);
        }
        "MidA" => {
            f.vcall("o", "mid_a", vec![]);
            f.vcall("o", "mid_a", vec![]);
        }
        "MidB" => {
            f.vcall("o", "mid_b0", vec![]);
            f.vcall("o", "mid_b1", vec![]);
            f.vcall("o", "mid_b1", vec![]);
            f.vcall("o", "mid_b1", vec![]);
        }
        leaf => {
            let own = format!("{}_own", leaf.to_lowercase());
            let n = 1 + leaf.len() % 4 + leaf.ends_with('1') as usize * 3;
            for _ in 0..n {
                f.vcall("o", own.clone(), vec![]);
            }
            if leaf.ends_with('0') {
                f.vcall("o", "base0", vec![]);
                f.vcall("o", own, vec![]);
            }
        }
    };
    let chains: [&[&str]; 7] = [
        &["Root"],
        &["Root", "MidA"],
        &["Root", "MidB"],
        &["Root", "MidA", "LeafA0"],
        &["Root", "MidA", "LeafA1"],
        &["Root", "MidB", "LeafB0"],
        &["Root", "MidB", "LeafB1"],
    ];
    for (i, chain) in chains.iter().enumerate() {
        let chain: Vec<String> = chain.iter().map(|s| s.to_string()).collect();
        p.func(format!("drive{i}"), move |f| {
            f.new_obj("o", chain.last().expect("non-empty").clone());
            for class in &chain {
                segment(f, class);
            }
            f.delete("o");
            f.ret();
        });
    }
    p
}

#[test]
fn debug_build_reconstructs_exactly() {
    let compiled = compile(&seven_types().finish(), &CompileOptions::default()).unwrap();
    let recon = reconstruct(&compiled);
    let eval = evaluate(&compiled, &recon);
    assert_eq!(eval.num_types, 7);
    assert!(eval.structurally_resolved, "ctor pins resolve everything");
    assert_eq!(eval.with_slm.avg_missing, 0.0);
    assert_eq!(eval.with_slm.avg_added, 0.0);
}

#[test]
fn optimized_build_is_ambiguous_but_reconstructed() {
    let mut opts = CompileOptions::default();
    opts.inline_parent_ctors = true;
    let compiled = compile(&seven_types().finish(), &opts).unwrap();
    let recon = reconstruct(&compiled);
    assert!(!recon.structural.is_structurally_resolved(), "inlining must remove the pins");
    let eval = evaluate(&compiled, &recon);
    // This workload is deliberately adversarial: sibling subtrees collide
    // on slot indices *and* field offsets, the hardest case for a purely
    // behavioral signal (the paper's error source 3). The behavioral
    // analysis must still lose nothing and stay within a small added
    // budget, far below the structural-only baseline.
    assert_eq!(eval.with_slm.avg_missing, 0.0, "per-type: {:?}", eval.with_slm.per_type);
    assert!(
        eval.with_slm.avg_added <= 1.5,
        "added {:.2}; per-type: {:?}",
        eval.with_slm.avg_added,
        eval.with_slm.per_type
    );
    assert!(eval.without_slm.avg_added > eval.with_slm.avg_added);
}

#[test]
fn fully_optimized_with_noise_still_loads_and_runs() {
    let compiled = compile(&seven_types().finish(), &CompileOptions::optimized()).unwrap();
    let recon = reconstruct(&compiled);
    let eval = evaluate(&compiled, &recon);
    // COMDAT folding may fold trivial ret-only methods across the tree;
    // the pipeline must stay sound (all 7 types found, hierarchy total).
    assert_eq!(recon.hierarchy.len(), 7);
    assert!(eval.with_slm.avg_added <= eval.without_slm.avg_added + 1e-9);
}

#[test]
fn hierarchy_projection_matches_ground_truth_labels() {
    let compiled = compile(&seven_types().finish(), &CompileOptions::default()).unwrap();
    let recon = reconstruct(&compiled);
    let projected = project_hierarchy(&recon.hierarchy, &compiled);
    assert_eq!(projected.parent_of(&"MidA".to_string()), Some(&"Root".to_string()));
    assert_eq!(projected.parent_of(&"LeafB1".to_string()), Some(&"MidB".to_string()));
    assert_eq!(projected.roots(), vec![&"Root".to_string()]);
    assert!(projected.is_acyclic());
}

#[test]
fn stripping_is_what_makes_it_hard() {
    // With RTTI present, ground truth is directly readable; the pipeline
    // must work *without* it.
    let compiled = compile(&seven_types().finish(), &CompileOptions::default()).unwrap();
    assert!(!compiled.image().is_stripped());
    assert_eq!(compiled.image().rtti().len(), 7);
    let stripped = compiled.stripped_image();
    assert!(stripped.is_stripped());
    assert!(stripped.rtti().is_empty());
    assert!(stripped.symbols().is_empty());
    // Same bytes otherwise: sections intact.
    assert_eq!(stripped.size(), compiled.image().size());
}

#[test]
fn rtti_ground_truth_agrees_with_compiler_ground_truth() {
    // §6.2: the paper derives ground truth from RTTI ancestor chains.
    let compiled = compile(&seven_types().finish(), &CompileOptions::default()).unwrap();
    let gt = compiled.ground_truth();
    for record in compiled.image().rtti() {
        let class = &record.class_name;
        match record.parent() {
            None => assert_eq!(gt.parent_of(class), None, "{class}"),
            Some(parent_vt) => {
                let parent_name = compiled.class_of(parent_vt).expect("parent is a class");
                assert_eq!(gt.parent_of(class), Some(parent_name), "{class}");
            }
        }
        // Full ancestor chain agrees too.
        let chain: Vec<&str> = record
            .ancestors
            .iter()
            .map(|a| compiled.class_of(*a).expect("ancestor class"))
            .collect();
        assert_eq!(gt.ancestors(class), chain, "{class}");
    }
}

#[test]
fn loader_sees_every_emitted_vtable() {
    let compiled = compile(&seven_types().finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    for (class, vt) in compiled.vtables() {
        assert!(loaded.vtable_at(*vt).is_some(), "{class}'s vtable at {vt} must be discovered");
    }
}

#[test]
fn distances_are_finite_and_self_consistent() {
    let mut opts = CompileOptions::default();
    opts.inline_parent_ctors = true;
    let compiled = compile(&seven_types().finish(), &opts).unwrap();
    let recon = reconstruct(&compiled);
    for ((p, c), d) in &recon.distances {
        assert!(d.is_finite(), "distance {p}->{c} = {d}");
        assert_ne!(p, c);
    }
    // Every chosen parent must have been a surviving candidate.
    for node in recon.hierarchy.nodes() {
        if let Some(parent) = recon.hierarchy.parent_of(node) {
            assert!(
                recon.structural.possible_parents().is_possible(*parent, *node),
                "chosen parent {parent} of {node} was structurally eliminated"
            );
        }
    }
}
