//! Determinism under parallelism: `Parallelism::Serial` and
//! `Parallelism::Threads(4)` must produce **bit-identical**
//! reconstructions. All parallel merges happen in input order over
//! BTreeMap-backed structures, and every edge weight is the same
//! float computation on the same operands — so not just the chosen
//! hierarchy but every distance bit pattern must agree.

use std::sync::Arc;

use rock::core::{suite, FaultPlan, Parallelism, Rock, RockConfig};
use rock::loader::LoadedBinary;

fn reconstruct_with(
    loaded: &LoadedBinary,
    config: RockConfig,
    parallelism: Parallelism,
) -> rock::core::Reconstruction {
    Rock::new(config.with_parallelism(parallelism)).reconstruct(loaded)
}

#[test]
fn stress_program_serial_vs_threads_bit_identical() {
    // 3 families × (1 + 3 + 9) = 39 types — the §6.1 soak shape.
    let bench = suite::stress_program(3, 3, 3);
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");

    // Tie resolution ON (the default): tie-vote outcomes are part of the
    // hierarchy, so equality covers them too.
    let config = RockConfig::paper();
    let serial = reconstruct_with(&loaded, config, Parallelism::Serial);
    let parallel = reconstruct_with(&loaded, config, Parallelism::Threads(4));

    assert_eq!(serial.hierarchy, parallel.hierarchy, "hierarchies diverged");

    // Distances must agree down to the bit pattern, not just under
    // float ==.
    assert_eq!(serial.distances.len(), parallel.distances.len());
    for (key, d_serial) in &serial.distances {
        let d_parallel = parallel.distances.get(key).expect("edge missing in parallel run");
        assert_eq!(
            d_serial.to_bits(),
            d_parallel.to_bits(),
            "distance for {key:?} differs: {d_serial} vs {d_parallel}"
        );
    }

    // Per-type chosen parents (including every tie-vote outcome) agree.
    for vt in loaded.vtables() {
        assert_eq!(
            serial.parent_of(vt.addr()),
            parallel.parent_of(vt.addr()),
            "tie-vote outcome diverged for {}",
            vt.addr()
        );
    }

    // The parallel run really did use more workers.
    assert_eq!(serial.timings.threads, 1);
    assert_eq!(parallel.timings.threads, 4);
    // Same work either way: one cache miss per computed pair.
    assert_eq!(serial.timings.cache_misses, parallel.timings.cache_misses);
    assert_eq!(serial.timings.edge_count, parallel.timings.edge_count);
}

#[test]
fn repartitioning_path_is_deterministic_too() {
    // Repartitioning adds the snapshot-scan + guarded-apply phase; its
    // proposals and applications must not depend on thread count either.
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");

    let config = RockConfig::paper().with_repartitioning();
    let serial = reconstruct_with(&loaded, config, Parallelism::Serial);
    let parallel = reconstruct_with(&loaded, config, Parallelism::Threads(4));

    assert_eq!(serial.hierarchy, parallel.hierarchy);
    assert!(serial.hierarchy.is_acyclic());
    assert_eq!(serial.distances, parallel.distances);
}

#[test]
fn fault_injected_runs_are_bit_identical_across_thread_counts() {
    // Fault containment must not cost determinism: with a seeded plan
    // panicking/skipping/starving a subset of items, `Serial`,
    // `Threads(2)` and `Threads(8)` must still agree bit for bit —
    // hierarchies, every distance bit pattern, diagnostics, coverage.
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");

    let plan = Arc::new(FaultPlan::seeded(42, 150));
    let runs: Vec<_> = [Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(8)]
        .into_iter()
        .map(|par| {
            Rock::new(RockConfig::paper().with_parallelism(par))
                .with_fault_plan(Arc::clone(&plan))
                .reconstruct(&loaded)
        })
        .collect();

    assert!(!runs[0].diagnostics.is_empty(), "the plan must actually inject faults");
    for other in &runs[1..] {
        assert_eq!(runs[0].hierarchy, other.hierarchy, "faulted hierarchies diverged");
        assert_eq!(runs[0].distances.len(), other.distances.len());
        for (key, d) in &runs[0].distances {
            assert_eq!(
                d.to_bits(),
                other.distances[key].to_bits(),
                "faulted distance bits for {key:?} diverged"
            );
        }
        assert_eq!(
            runs[0].diagnostics, other.diagnostics,
            "diagnostics must be recorded in the same deterministic order"
        );
        assert_eq!(runs[0].coverage, other.coverage);
    }
}

#[test]
fn auto_parallelism_matches_serial() {
    let bench = suite::streams_example();
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");

    let serial = reconstruct_with(&loaded, RockConfig::paper(), Parallelism::Serial);
    let auto = reconstruct_with(&loaded, RockConfig::paper(), Parallelism::Auto);
    assert_eq!(serial.hierarchy, auto.hierarchy);
    assert_eq!(serial.distances, auto.distances);
}
