//! Scale test: the "Skype" soak of §6.1 — a large generated binary with
//! no ground-truth comparison, exercised end to end to show the pipeline
//! handles realistic sizes (the paper: "we also successfully analyzed the
//! binary of Skype (21.6 Mb), but do not report these results as we had
//! no groundtruth").

use rock::core::{suite, Rock, RockConfig};
use rock::loader::LoadedBinary;

#[test]
fn large_binary_end_to_end() {
    // 3 families × (1 + 3 + 9) = 39 types, plus drivers/ctors/dtors:
    // several hundred functions.
    let bench = suite::stress_program(3, 3, 3);
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    assert_eq!(loaded.vtables().len(), 39);
    assert!(loaded.functions().len() > 150, "{} functions", loaded.functions().len());

    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    assert_eq!(recon.hierarchy.len(), 39);
    assert!(recon.hierarchy.is_acyclic());

    // Optimized build => no pins; the arborescence still recovers the
    // exact forest on this (clean, well-differentiated) workload.
    let eval = rock::core::evaluate(&compiled, &recon);
    assert_eq!(eval.num_types, 39);
    assert!(
        eval.with_slm.avg_missing + eval.with_slm.avg_added
            <= (eval.without_slm.avg_missing + eval.without_slm.avg_added).max(1.0),
        "with: {}/{}, without: {}/{}",
        eval.with_slm.avg_missing,
        eval.with_slm.avg_added,
        eval.without_slm.avg_missing,
        eval.without_slm.avg_added,
    );
}

#[test]
fn analysis_is_linear_ish_in_procedures() {
    // Doubling the program should not blow analysis cost up
    // super-linearly; assert via structure (the per-function analysis
    // touches each function once).
    use rock::analysis::{extract_tracelets, AnalysisConfig};
    let small = suite::stress_program(1, 3, 2);
    let large = suite::stress_program(4, 3, 2);
    let cs = small.compile().unwrap();
    let cl = large.compile().unwrap();
    let ls = LoadedBinary::load(cs.stripped_image()).unwrap();
    let ll = LoadedBinary::load(cl.stripped_image()).unwrap();
    assert!(ll.functions().len() >= 3 * ls.functions().len());
    let a_small = extract_tracelets(&ls, &AnalysisConfig::default());
    let a_large = extract_tracelets(&ll, &AnalysisConfig::default());
    // Tracelet volume scales with the binary, and both complete.
    assert!(a_large.tracelets().total() >= 3 * a_small.tracelets().total() / 2);
}
