//! Golden regression test for Table 2: the pipeline is fully
//! deterministic, so the measured application distances are pinned here
//! (with a small tolerance for benign algorithmic adjustments). A failure
//! means the reconstruction quality moved — deliberately or not.

use rock::core::{evaluate, suite, Rock, RockConfig};
use rock::loader::LoadedBinary;

/// (name, without (missing, added), with (missing, added)).
type GoldenRow = (&'static str, (f64, f64), (f64, f64));

const GOLDEN: &[GoldenRow] = &[
    ("AntispyComplete", (0.00, 0.00), (0.00, 0.00)),
    ("bafprp", (0.13, 0.00), (0.13, 0.00)),
    ("cppcheck", (0.00, 0.00), (0.00, 0.00)),
    ("MidiLib", (0.00, 0.00), (0.00, 0.00)),
    ("patl", (0.00, 0.00), (0.00, 0.00)),
    ("pop3", (0.00, 0.00), (0.00, 0.00)),
    ("smtp", (0.00, 0.00), (0.00, 0.00)),
    ("tinyxml", (0.89, 0.00), (0.89, 0.00)),
    ("tinyxmlSTL", (0.20, 0.00), (0.20, 0.00)),
    ("yafc", (0.00, 0.00), (0.00, 0.00)),
    ("Analyzer", (0.00, 13.08), (0.79, 2.17)),
    ("CGridListCtrlEx", (0.00, 0.14), (0.00, 0.07)),
    ("echoparams", (0.00, 1.50), (0.25, 0.00)),
    ("gperf", (0.00, 7.50), (0.40, 1.20)),
    ("libctemplate", (0.00, 4.25), (0.08, 0.78)),
    ("ShowTraf", (0.00, 0.12), (0.00, 0.04)),
    ("Smoothing", (0.00, 9.94), (0.29, 1.71)),
    ("td_unittest", (0.00, 1.00), (0.00, 0.50)),
    ("tinyserver", (0.00, 1.50), (0.25, 0.75)),
];

/// Allowed drift before the golden test fires. The resolvable half is
/// structural-only and must stay exact; the behavioral half may move a
/// little under deliberate tuning.
const TOLERANCE: f64 = 0.35;

#[test]
fn table2_matches_golden_values() {
    let rock = Rock::new(RockConfig::paper());
    for (name, want_without, want_with) in GOLDEN {
        let bench = suite::benchmark(name).expect("benchmark exists");
        let compiled = bench.compile().expect("compiles");
        let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
        let eval = evaluate(&compiled, &rock.reconstruct(&loaded));
        let got_without = (eval.without_slm.avg_missing, eval.without_slm.avg_added);
        let got_with = (eval.with_slm.avg_missing, eval.with_slm.avg_added);
        let tol = if bench.structurally_resolvable { 0.02 } else { TOLERANCE };
        for (label, got, want) in [
            ("without.missing", got_without.0, want_without.0),
            ("without.added", got_without.1, want_without.1),
            ("with.missing", got_with.0, want_with.0),
            ("with.added", got_with.1, want_with.1),
        ] {
            assert!(
                (got - want).abs() <= tol,
                "{name} {label}: got {got:.3}, golden {want:.3} (tol {tol})"
            );
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    // Two runs over the same binary produce byte-identical hierarchies.
    let bench = suite::benchmark("Smoothing").expect("exists");
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let rock = Rock::new(RockConfig::paper());
    let a = rock.reconstruct(&loaded);
    let b = rock.reconstruct(&loaded);
    assert_eq!(a.hierarchy, b.hierarchy);
    assert_eq!(a.distances, b.distances);
}
