//! Golden-file pinning of the metrics registry: a fixed program under a
//! fixed config must reproduce the checked-in snapshot **byte for byte**
//! — any counter drift (a lost cache hit, an extra trained model, a
//! changed histogram bucket) fails loudly with a diffable document.
//!
//! Two snapshots live under `tests/golden/`:
//!
//! * `metrics_stress_2x2x2.json` — a cold run of the 2×2×2 stress
//!   program;
//! * `metrics_incremental_1edit.json` — a *warm incremental* run of a
//!   1-function-edited delta image against the base image's
//!   sub-artifacts. The warm ≡ cold invariant means this doc must also
//!   equal a cold run of the same image, which the test asserts before
//!   comparing against the snapshot — so the file pins both the delta
//!   workload's counters and the invariant itself.
//!
//! To bless an intentional change (rewrites **both** snapshots):
//!
//! ```text
//! ROCK_BLESS=1 cargo test --test golden_metrics
//! ```

use std::sync::Arc;

use rock::core::{suite, CorpusCache, Parallelism, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::trace::validate_metrics_doc;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_stress_2x2x2.json");
const GOLDEN_INCR: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_incremental_1edit.json");

fn current_doc() -> String {
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    // Serial here, but the determinism suite proves the registry is
    // identical at every thread count, so this pins all of them.
    let recon =
        Rock::new(RockConfig::paper().with_parallelism(Parallelism::Serial)).reconstruct(&loaded);
    recon.metrics.to_json()
}

#[test]
fn metrics_match_golden_snapshot() {
    let doc = current_doc();
    validate_metrics_doc(&doc).expect("exported metrics must satisfy the schema");
    if std::env::var_os("ROCK_BLESS").is_some() {
        std::fs::write(GOLDEN, format!("{doc}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("missing golden snapshot — run ROCK_BLESS=1 cargo test --test golden_metrics");
    assert_eq!(
        doc,
        golden.trim_end(),
        "metrics drifted from the golden snapshot; if intentional, re-bless with \
         ROCK_BLESS=1 cargo test --test golden_metrics"
    );
}

#[test]
fn incremental_metrics_match_golden_snapshot() {
    // The 1-function edit of the delta workload: one method body in a
    // leaf class of family 1 rewritten, everything else byte-identical.
    let base_spec = suite::delta_spec(3, 5, 5);
    let mut edited_spec = base_spec.clone();
    suite::apply_delta(
        &mut edited_spec,
        suite::DeltaEdit::EditBody { family: 1, class: 4, method: 0 },
    );
    let load = |spec: &suite::DeltaSpec| {
        let compiled = suite::delta_program(spec).compile().expect("compiles");
        LoadedBinary::load(compiled.stripped_image()).expect("loads")
    };
    let config = RockConfig::paper().with_parallelism(Parallelism::Serial).with_canonical_calls();

    // Warm incremental run: the base image populates the shared cache,
    // the patched image runs against it. (The disk round trip of those
    // sub-artifacts is pinned separately by tests/incremental_delta.rs;
    // the registry cannot tell the difference by design.)
    let cache = Arc::new(CorpusCache::new());
    Rock::new(config).with_corpus_cache(Arc::clone(&cache)).reconstruct(&load(&base_spec));
    let edited = load(&edited_spec);
    let warm = Rock::new(config).with_corpus_cache(cache).reconstruct(&edited);
    let doc = warm.metrics.to_json();
    validate_metrics_doc(&doc).expect("exported metrics must satisfy the schema");

    // The invariant the snapshot rides on: incremental reuse must be
    // invisible in the metrics document.
    let cold = Rock::new(config).reconstruct(&edited);
    assert_eq!(doc, cold.metrics.to_json(), "warm metrics diverged from cold");

    if std::env::var_os("ROCK_BLESS").is_some() {
        std::fs::write(GOLDEN_INCR, format!("{doc}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_INCR)
        .expect("missing golden snapshot — run ROCK_BLESS=1 cargo test --test golden_metrics");
    assert_eq!(
        doc,
        golden.trim_end(),
        "incremental metrics drifted from the golden snapshot; if intentional, re-bless with \
         ROCK_BLESS=1 cargo test --test golden_metrics"
    );
}

#[test]
fn golden_snapshot_is_schema_valid_and_sane() {
    // Guards the checked-in file itself (e.g. against a hand edit): it
    // must parse, satisfy the schema, and carry the structural
    // invariants a 2×2×2 stress program implies.
    // Under ROCK_BLESS the snapshot may be mid-rewrite by the other
    // test; validate the freshly generated document instead.
    let golden = if std::env::var_os("ROCK_BLESS").is_some() {
        current_doc()
    } else {
        std::fs::read_to_string(GOLDEN)
            .expect("missing golden snapshot — run ROCK_BLESS=1 cargo test --test golden_metrics")
    };
    validate_metrics_doc(&golden).expect("golden snapshot must satisfy the schema");

    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let recon =
        Rock::new(RockConfig::paper().with_parallelism(Parallelism::Serial)).reconstruct(&loaded);
    let m = &recon.metrics;
    let n_types = loaded.vtables().len() as u64;
    assert_eq!(m.counter("slm.models_trained"), n_types, "one SLM per vtable");
    assert!(m.counter("analysis.functions_analyzed") > 0);
    assert!(m.counter("distances.pairs_scored") > 0);
    assert_eq!(
        m.counter("distances.cache_hit") + m.counter("distances.cache_miss"),
        m.counter("distances.pairs_scored"),
        "every scored pair is either a cache hit or a miss"
    );
    let hist = m.histogram("slm.nodes_per_model").expect("nodes-per-model histogram");
    assert_eq!(hist.count(), n_types, "one histogram observation per trained model");
}
