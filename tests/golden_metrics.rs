//! Golden-file pinning of the metrics registry: a fixed program under a
//! fixed config must reproduce the checked-in snapshot **byte for byte**
//! — any counter drift (a lost cache hit, an extra trained model, a
//! changed histogram bucket) fails loudly with a diffable document.
//!
//! To bless an intentional change:
//!
//! ```text
//! ROCK_BLESS=1 cargo test --test golden_metrics
//! ```

use rock::core::{suite, Parallelism, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::trace::validate_metrics_doc;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_stress_2x2x2.json");

fn current_doc() -> String {
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    // Serial here, but the determinism suite proves the registry is
    // identical at every thread count, so this pins all of them.
    let recon =
        Rock::new(RockConfig::paper().with_parallelism(Parallelism::Serial)).reconstruct(&loaded);
    recon.metrics.to_json()
}

#[test]
fn metrics_match_golden_snapshot() {
    let doc = current_doc();
    validate_metrics_doc(&doc).expect("exported metrics must satisfy the schema");
    if std::env::var_os("ROCK_BLESS").is_some() {
        std::fs::write(GOLDEN, format!("{doc}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("missing golden snapshot — run ROCK_BLESS=1 cargo test --test golden_metrics");
    assert_eq!(
        doc,
        golden.trim_end(),
        "metrics drifted from the golden snapshot; if intentional, re-bless with \
         ROCK_BLESS=1 cargo test --test golden_metrics"
    );
}

#[test]
fn golden_snapshot_is_schema_valid_and_sane() {
    // Guards the checked-in file itself (e.g. against a hand edit): it
    // must parse, satisfy the schema, and carry the structural
    // invariants a 2×2×2 stress program implies.
    // Under ROCK_BLESS the snapshot may be mid-rewrite by the other
    // test; validate the freshly generated document instead.
    let golden = if std::env::var_os("ROCK_BLESS").is_some() {
        current_doc()
    } else {
        std::fs::read_to_string(GOLDEN)
            .expect("missing golden snapshot — run ROCK_BLESS=1 cargo test --test golden_metrics")
    };
    validate_metrics_doc(&golden).expect("golden snapshot must satisfy the schema");

    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    let loaded = LoadedBinary::load(compiled.stripped_image()).expect("loads");
    let recon =
        Rock::new(RockConfig::paper().with_parallelism(Parallelism::Serial)).reconstruct(&loaded);
    let m = &recon.metrics;
    let n_types = loaded.vtables().len() as u64;
    assert_eq!(m.counter("slm.models_trained"), n_types, "one SLM per vtable");
    assert!(m.counter("analysis.functions_analyzed") > 0);
    assert!(m.counter("distances.pairs_scored") > 0);
    assert_eq!(
        m.counter("distances.cache_hit") + m.counter("distances.cache_miss"),
        m.counter("distances.pairs_scored"),
        "every scored pair is either a cache hit or a miss"
    );
    let hist = m.histogram("slm.nodes_per_model").expect("nodes-per-model histogram");
    assert_eq!(hist.count(), n_types, "one histogram observation per trained model");
}
