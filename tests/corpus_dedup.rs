//! Corpus dedup: attaching a shared content-addressed [`CorpusCache`]
//! to a fleet of jobs must change wall clock only — never an output
//! bit. Every tier's key hashes the exact inputs of the computation it
//! memoizes, so a hit returns exactly what the job would have computed
//! itself; these tests pin that equivalence (hierarchies, distance bit
//! patterns, diagnostics, coverage, the full metrics document) cold vs
//! warm vs interleaved, at three thread counts, and across deliberate
//! cache corruption.

use std::sync::Arc;

use rock::core::{suite, CorpusCache, FaultPlan, Parallelism, Reconstruction, Rock, RockConfig};
use rock::loader::LoadedBinary;

/// Compiles `n` corpus members with `templates` distinct app families
/// (see `suite::corpus_member` — odd members shift all shared code to
/// different addresses).
fn corpus(n: usize, templates: usize) -> Vec<LoadedBinary> {
    (0..n)
        .map(|i| {
            let c = suite::corpus_member(i, templates).compile().expect("compiles");
            LoadedBinary::load(c.stripped_image()).expect("loads")
        })
        .collect()
}

fn config(par: Parallelism) -> RockConfig {
    RockConfig::paper().with_parallelism(par).with_canonical_calls()
}

fn reconstruct_cold(loaded: &LoadedBinary, par: Parallelism) -> Reconstruction {
    Rock::new(config(par)).reconstruct(loaded)
}

fn reconstruct_warm(
    loaded: &LoadedBinary,
    par: Parallelism,
    shared: &Arc<CorpusCache>,
) -> Reconstruction {
    Rock::new(config(par)).with_corpus_cache(Arc::clone(shared)).reconstruct(loaded)
}

/// Bit-level equality over everything a job reports.
fn assert_identical(cold: &Reconstruction, warm: &Reconstruction, ctx: &str) {
    assert_eq!(cold.hierarchy, warm.hierarchy, "{ctx}: hierarchies diverged");
    assert_eq!(cold.distances.len(), warm.distances.len(), "{ctx}: distance sets differ");
    for (key, d) in &cold.distances {
        assert_eq!(
            d.to_bits(),
            warm.distances[key].to_bits(),
            "{ctx}: distance bits for {key:?} diverged"
        );
    }
    assert_eq!(cold.diagnostics, warm.diagnostics, "{ctx}: diagnostics diverged");
    assert_eq!(cold.coverage, warm.coverage, "{ctx}: coverage diverged");
    assert_eq!(
        cold.metrics.to_json(),
        warm.metrics.to_json(),
        "{ctx}: metrics documents diverged (corpus reuse must be invisible to the run)"
    );
}

#[test]
fn warm_runs_are_bit_identical_to_cold_at_every_thread_count() {
    let images = corpus(6, 2);
    for par in [Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(8)] {
        let cold: Vec<Reconstruction> = images.iter().map(|l| reconstruct_cold(l, par)).collect();
        let shared = Arc::new(CorpusCache::new());
        let warm: Vec<Reconstruction> =
            images.iter().map(|l| reconstruct_warm(l, par, &shared)).collect();
        for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
            assert_identical(c, w, &format!("{par:?} job {i}"));
        }
        let s = shared.stats();
        assert!(s.tracelet_hits > 0, "{par:?}: shared functions must hit the exec tier");
        assert!(s.slm_hits > 0, "{par:?}: shared pools must hit the model tier");
        assert!(s.distance_hits > 0, "{par:?}: shared pairs must hit the distance tier");
        assert_eq!(s.corrupt_dropped, 0, "{par:?}: clean runs must not drop entries");
        assert!(s.bytes_stored > 0);
    }
}

#[test]
fn interleaved_processing_order_does_not_change_outputs() {
    // The cache's content comes from whichever job got there first; the
    // answers must not depend on that race. Process the fleet in a
    // scrambled order against the order-0 cold baselines.
    let images = corpus(5, 1);
    let par = Parallelism::Threads(2);
    let cold: Vec<Reconstruction> = images.iter().map(|l| reconstruct_cold(l, par)).collect();
    let shared = Arc::new(CorpusCache::new());
    let mut warm: Vec<Option<Reconstruction>> = (0..images.len()).map(|_| None).collect();
    for &i in &[3usize, 0, 4, 2, 1] {
        warm[i] = Some(reconstruct_warm(&images[i], par, &shared));
    }
    for (i, w) in warm.iter().enumerate() {
        assert_identical(&cold[i], w.as_ref().expect("all jobs ran"), &format!("job {i}"));
    }
}

#[test]
fn corrupted_entries_recompute_without_poisoning_later_jobs() {
    let images = corpus(4, 1);
    let par = Parallelism::Serial;
    let cold: Vec<Reconstruction> = images.iter().map(|l| reconstruct_cold(l, par)).collect();
    let shared = Arc::new(CorpusCache::new());
    for l in &images[..2] {
        reconstruct_warm(l, par, &shared);
    }
    // Flip bits in every stored byte image, all three tiers.
    let touched = shared.corrupt_all(&FaultPlan::seeded(9, 0), 3);
    assert!(touched > 0, "the warm-up must have populated the cache");
    for (i, l) in images.iter().enumerate().skip(2) {
        let w = reconstruct_warm(l, par, &shared);
        assert_identical(&cold[i], &w, &format!("post-corruption job {i}"));
    }
    let s = shared.stats();
    assert!(s.corrupt_dropped > 0, "corruption must be detected and dropped, not trusted");
    // Dropped entries were recomputed and re-stored: a fresh identical
    // job now runs against a healthy cache again.
    let again = reconstruct_warm(&images[2], par, &shared);
    assert_identical(&cold[2], &again, "job 2 re-run on the healed cache");
}

#[test]
fn bounded_cache_eviction_never_changes_outputs() {
    // A daemon-sized fleet against a cache far too small for it: the
    // cache thrashes (evictions happen), hit rates collapse, and not
    // one output bit may move. This pins the claim that bounding the
    // corpus cache is purely a memory/latency trade.
    let images = corpus(5, 2);
    for par in [Parallelism::Serial, Parallelism::Threads(4)] {
        let cold: Vec<Reconstruction> = images.iter().map(|l| reconstruct_cold(l, par)).collect();
        // Capacity 16 = one entry per shard, per tier — brutally tight.
        let tight = Arc::new(CorpusCache::bounded(16));
        for (i, l) in images.iter().enumerate() {
            let w = reconstruct_warm(l, par, &tight);
            assert_identical(&cold[i], &w, &format!("{par:?} bounded job {i}"));
        }
        let s = tight.stats();
        assert!(s.evicted > 0, "{par:?}: a 16-entry cache under this fleet must evict");
        let (e, m, d) = tight.lens();
        assert!(e <= 16 && m <= 16 && d <= 16, "{par:?}: live entries exceed the bound");
        // And a re-run of the whole fleet against the thrashed cache is
        // still bit-identical — stale-entry reuse after eviction churn
        // would show up here.
        for (i, l) in images.iter().enumerate() {
            let w = reconstruct_warm(l, par, &tight);
            assert_identical(&cold[i], &w, &format!("{par:?} bounded rerun job {i}"));
        }
    }
}

#[test]
fn position_shifted_twins_share_every_tier() {
    // Members 0 and 1 share lib code at *different* addresses (member 1
    // declares its salt class first). Content keys must bridge the
    // shift: the second job hits all three tiers.
    let images = corpus(2, 1);
    let par = Parallelism::Serial;
    let shared = Arc::new(CorpusCache::new());
    let first = reconstruct_warm(&images[0], par, &shared);
    let after_first = shared.stats();
    let second = reconstruct_warm(&images[1], par, &shared);
    let delta = shared.stats().since(&after_first);
    assert!(delta.tracelet_hits > 0, "shifted twin must reuse executions");
    assert!(delta.slm_hits > 0, "shifted twin must reuse trained models");
    assert!(delta.distance_hits > 0, "shifted twin must reuse distances");
    // And the reuse is invisible in the outputs.
    assert_identical(&reconstruct_cold(&images[0], par), &first, "member 0");
    assert_identical(&reconstruct_cold(&images[1], par), &second, "member 1");
}
