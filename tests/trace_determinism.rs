//! Observability must be free of observer effects: enabling the tracer
//! cannot perturb reconstruction output, and the deterministic trace
//! projection (scrubbed span trees + the metrics registry) must be
//! identical across thread counts and repeated runs. Spans are buffered
//! per worker and merged at stage boundaries in input order, and the
//! registry deliberately records only deterministic work (never clocks),
//! so these are exact equalities, not statistical ones.

use std::sync::Arc;

use rock::core::{suite, FaultPlan, Parallelism, Reconstruction, Rock, RockConfig, TraceLevel};
use rock::loader::LoadedBinary;
use rock::trace::{
    is_coarse_span, scrubbed, validate_chrome_trace, validate_metrics_doc, ScrubbedSpan, Tracer,
};

const THREAD_COUNTS: [Parallelism; 3] =
    [Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(8)];

fn load(ranks: usize, fanout: usize, depth: usize) -> LoadedBinary {
    let bench = suite::stress_program(ranks, fanout, depth);
    let compiled = bench.compile().expect("compiles");
    LoadedBinary::load(compiled.stripped_image()).expect("loads")
}

/// One reconstruction, optionally traced; returns the result plus the
/// deterministic span projection.
fn run(
    loaded: &LoadedBinary,
    parallelism: Parallelism,
    traced: bool,
) -> (Reconstruction, Vec<ScrubbedSpan>) {
    // `with_tracer` alone records at TraceLevel::Full — the pre-level
    // behavior these determinism suites pin.
    run_at(loaded, parallelism, if traced { Some(TraceLevel::Full) } else { None })
}

/// One reconstruction traced at an explicit level (`None`: no tracer).
fn run_at(
    loaded: &LoadedBinary,
    parallelism: Parallelism,
    level: Option<TraceLevel>,
) -> (Reconstruction, Vec<ScrubbedSpan>) {
    let mut rock = Rock::new(RockConfig::paper().with_parallelism(parallelism));
    let tracer = level.map(|_| Arc::new(Tracer::new()));
    if let Some(t) = &tracer {
        rock = rock.with_tracer(t.clone()).with_trace_level(level.unwrap());
    }
    let recon = rock.reconstruct(loaded);
    let spans = tracer.map(|t| scrubbed(&t.events())).unwrap_or_default();
    (recon, spans)
}

fn assert_bit_identical(a: &Reconstruction, b: &Reconstruction, what: &str) {
    assert_eq!(a.hierarchy, b.hierarchy, "{what}: hierarchies diverged");
    assert_eq!(a.distances.len(), b.distances.len(), "{what}: edge sets diverged");
    for (key, d) in &a.distances {
        assert_eq!(
            d.to_bits(),
            b.distances[key].to_bits(),
            "{what}: distance bits for {key:?} diverged"
        );
    }
    assert_eq!(a.coverage, b.coverage, "{what}: coverage diverged");
    assert_eq!(a.diagnostics, b.diagnostics, "{what}: diagnostics diverged");
}

#[test]
fn tracing_is_observer_effect_free() {
    // Tracer on vs. off: bit-identical output at every thread count, and
    // the metrics registry (filled either way) agrees too.
    let loaded = load(2, 2, 2);
    for par in THREAD_COUNTS {
        let (plain, none) = run(&loaded, par, false);
        let (traced, spans) = run(&loaded, par, true);
        assert!(none.is_empty());
        assert!(!spans.is_empty(), "traced run must record spans");
        assert_bit_identical(&plain, &traced, &format!("{par:?} traced-vs-plain"));
        assert_eq!(plain.metrics, traced.metrics, "{par:?}: metrics diverged under tracing");
    }
}

#[test]
fn span_trees_and_metrics_agree_across_thread_counts_and_reruns() {
    let loaded = load(2, 2, 2);
    let (base_recon, base_spans) = run(&loaded, THREAD_COUNTS[0], true);
    for par in THREAD_COUNTS {
        // Repeated runs at the same thread count, plus every other thread
        // count, all project to the same span tree and registry.
        let (recon, spans) = run(&loaded, par, true);
        assert_bit_identical(&base_recon, &recon, &format!("{par:?} vs serial"));
        assert_eq!(base_spans, spans, "{par:?}: scrubbed span tree diverged");
        assert_eq!(base_recon.metrics, recon.metrics, "{par:?}: metrics registry diverged");
    }
}

#[test]
fn span_tree_covers_all_four_stages_at_item_granularity() {
    let loaded = load(2, 2, 2);
    let (_, spans) = run(&loaded, Parallelism::Threads(2), true);

    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    let n_types = loaded.vtables().len();
    assert!(count("analysis.function") > 0, "no per-function analysis spans");
    assert_eq!(count("training.type"), n_types, "one training span per vtable");
    assert!(count("distances.child") > 0, "no per-child distance spans");
    assert!(count("distances.pair") > 0, "no per-pair evaluation spans");
    assert!(count("lifting.family") > 0, "no per-family arborescence spans");

    // Every per-item span is parented by its stage span.
    let stage_of = |item: &str, stage: &str| {
        for s in spans.iter().filter(|s| s.name == item) {
            let p = s.parent.expect("item span must have a parent") as usize;
            assert_eq!(spans[p].name, stage, "{item} parented by {}", spans[p].name);
        }
    };
    stage_of("analysis.function", "stage.analysis");
    stage_of("training.type", "stage.training");
    stage_of("distances.child", "stage.distances");
    stage_of("lifting.family", "stage.lifting");
}

/// The sampled subject set is a pure function of `(name, subject)`:
/// byte-identical across thread counts and reruns, and exactly the
/// full-level span sequence filtered by the level's `admits` predicate.
/// Metrics stay bit-equal and unsampled at every level.
#[test]
fn trace_levels_are_deterministic_and_project_from_the_full_tree() {
    let loaded = load(2, 2, 2);
    let (full_recon, full_spans) = run_at(&loaded, Parallelism::Serial, Some(TraceLevel::Full));
    for level in [TraceLevel::Off, TraceLevel::Stage, TraceLevel::Sampled] {
        // The expected (name, subject) sequence: the full tree filtered
        // by the pure admits predicate, in merge order.
        let expected: Vec<(&str, u64)> = full_spans
            .iter()
            .filter(|s| level.admits(s.name, s.subject))
            .map(|s| (s.name, s.subject))
            .collect();
        let (base_recon, base_spans) = run_at(&loaded, THREAD_COUNTS[0], Some(level));
        for par in THREAD_COUNTS {
            for rerun in 0..2 {
                let (recon, spans) = run_at(&loaded, par, Some(level));
                assert_bit_identical(&base_recon, &recon, &format!("{level} {par:?} #{rerun}"));
                assert_eq!(base_spans, spans, "{level} {par:?} #{rerun}: span set diverged");
                let got: Vec<(&str, u64)> = spans.iter().map(|s| (s.name, s.subject)).collect();
                assert_eq!(got, expected, "{level}: not the admits-projection of the full tree");
                // Metrics record 100% of the work at every level.
                assert_eq!(
                    full_recon.metrics, recon.metrics,
                    "{level} {par:?}: metrics must not be sampled"
                );
            }
        }
        match level {
            TraceLevel::Off => assert!(base_spans.is_empty(), "off must record nothing"),
            TraceLevel::Stage => {
                assert!(!base_spans.is_empty());
                assert!(base_spans.iter().all(|s| is_coarse_span(s.name)));
            }
            TraceLevel::Sampled => {
                assert!(
                    base_spans.iter().any(|s| !is_coarse_span(s.name)),
                    "stress_program(2,2,2) should sample at least one per-item span"
                );
                assert!(base_spans.len() < full_spans.len(), "sampling must drop spans");
            }
            TraceLevel::Full => unreachable!(),
        }
    }
}

/// Every sampled per-item span stays parented: the merge parent is
/// captured when the worker buffer is created, so spans can never be
/// orphaned to roots — including under injected faults, where some
/// buffers are lost to `catch_unwind` containment entirely.
#[test]
fn per_item_spans_keep_their_stage_parents_under_injected_faults() {
    let loaded = load(2, 2, 2);
    for level in [TraceLevel::Sampled, TraceLevel::Full] {
        for plan in [None, Some(FaultPlan::new().panic_in(rock::core::Stage::Distances))] {
            let tracer = Arc::new(Tracer::new());
            let mut rock = Rock::new(RockConfig::paper().with_parallelism(Parallelism::Threads(2)))
                .with_tracer(tracer.clone())
                .with_trace_level(level);
            let faulted = plan.is_some();
            if let Some(p) = plan {
                rock = rock.with_fault_plan(Arc::new(p));
            }
            let recon = rock.reconstruct(&loaded);
            if faulted {
                assert!(!recon.diagnostics.is_empty(), "injected faults must be recorded");
            }
            let spans = scrubbed(&tracer.events());
            for (i, s) in spans.iter().enumerate() {
                if is_coarse_span(s.name) {
                    continue;
                }
                let p = s.parent.unwrap_or_else(|| {
                    panic!("{level} faulted={faulted}: span {i} ({}) orphaned", s.name)
                }) as usize;
                assert!(p < i, "parents precede children in log order");
            }
            validate_chrome_trace(&rock::trace::chrome_trace_json(&tracer.events()))
                .expect("faulted traces still satisfy the chrome schema");
        }
    }
}

#[test]
fn exports_validate_against_their_schemas() {
    let loaded = load(2, 2, 1);
    let tracer = Arc::new(Tracer::new());
    let recon = Rock::new(RockConfig::paper().with_parallelism(Parallelism::Threads(2)))
        .with_tracer(tracer.clone())
        .reconstruct(&loaded);
    validate_chrome_trace(&rock::trace::chrome_trace_json(&tracer.events()))
        .expect("chrome trace export must satisfy its schema");
    validate_metrics_doc(&recon.metrics.to_json()).expect("metrics export must satisfy its schema");
}
