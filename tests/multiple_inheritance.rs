//! Multiple-inheritance integration tests (paper §5.3).
//!
//! Under the MSVC-style ABI the substrate models, a type with X parents
//! stores X vtable pointers during construction; the structural analysis
//! exposes those counts, and secondary vtables are treated as synthetic
//! types that the evaluation projects away (§4.1).

use rock::analysis::{recognize_ctors, AnalysisConfig};
use rock::core::{evaluate, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::minicpp::{compile, CompileOptions, ProgramBuilder};
use rock::structural::analyze;

fn diamond_free_mi() -> ProgramBuilder {
    let mut p = ProgramBuilder::new();
    p.class("Readable").field("rbuf").method("read", |b| {
        b.read("v", "this", "rbuf");
        b.ret();
    });
    p.class("Writable").field("wbuf").method("write_it", |b| {
        b.write("this", "wbuf", rock::minicpp::Expr::Const(3));
        b.ret();
    });
    p.class("Duplex").base("Readable").base("Writable").method("flush_both", |b| {
        b.vcall("this", "read", vec![]);
        b.vcall("this", "write_it", vec![]);
        b.ret();
    });
    p.func("drive_r", |f| {
        f.new_obj("r", "Readable");
        f.vcall("r", "read", vec![]);
        f.vcall("r", "read", vec![]);
        f.ret();
    });
    p.func("drive_w", |f| {
        f.new_obj("w", "Writable");
        f.vcall("w", "write_it", vec![]);
        f.ret();
    });
    p.func("drive_d", |f| {
        f.new_obj("d", "Duplex");
        f.vcall("d", "read", vec![]);
        f.vcall("d", "write_it", vec![]);
        f.vcall("d", "flush_both", vec![]);
        f.ret();
    });
    p
}

#[test]
fn mi_object_layout_in_binary() {
    let compiled = compile(&diamond_free_mi().finish(), &CompileOptions::default()).unwrap();
    // Primary + secondary vtable are both emitted and discoverable.
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let duplex_primary = compiled.vtable_of("Duplex").unwrap();
    assert!(loaded.vtable_at(duplex_primary).is_some());
    // One more vtable than classes: the secondary "Duplex in Writable".
    assert_eq!(loaded.vtables().len(), 4);
}

#[test]
fn mi_ctor_stores_two_vptrs() {
    let compiled = compile(&diamond_free_mi().finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let config = AnalysisConfig::default();
    let ctors = recognize_ctors(&loaded, &config);
    let duplex_vt = compiled.vtable_of("Duplex").unwrap();
    // Find Duplex's ctor: the ctor-like function whose primary vtable is
    // Duplex's.
    let duplex_ctor = ctors
        .functions()
        .find(|f| ctors.primary_vtable_of(*f) == Some(duplex_vt))
        .expect("Duplex ctor recognized");
    let stores = ctors.stores_of(duplex_ctor).unwrap();
    assert_eq!(stores.len(), 2, "X parents => X vtable stores (§5.3): {stores:?}");
    assert_eq!(stores[0].0, 0, "primary store at offset 0");
    assert!(stores[1].0 > 0, "secondary store at the subobject offset");

    // The structural analysis surfaces the same counts.
    let s = analyze(&loaded, &ctors, &config);
    assert_eq!(s.vptr_store_counts().get(&duplex_vt), Some(&2));
    let readable_vt = compiled.vtable_of("Readable").unwrap();
    assert_eq!(s.vptr_store_counts().get(&readable_vt), Some(&1));
}

#[test]
fn mi_ctor_pins_primary_parent() {
    let compiled = compile(&diamond_free_mi().finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let config = AnalysisConfig::default();
    let ctors = recognize_ctors(&loaded, &config);
    let s = analyze(&loaded, &ctors, &config);
    let duplex = compiled.vtable_of("Duplex").unwrap();
    let readable = compiled.vtable_of("Readable").unwrap();
    assert_eq!(s.pinned().get(&duplex), Some(&readable));
}

#[test]
fn mi_evaluation_projects_synthetic_types_away() {
    let compiled = compile(&diamond_free_mi().finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let eval = evaluate(&compiled, &recon);
    // Ground truth has the 3 source classes; the secondary vtable is
    // synthetic and must not pollute the measurement.
    assert_eq!(eval.num_types, 3);
    assert_eq!(eval.with_slm.avg_missing, 0.0, "{:?}", eval.with_slm.per_type);
    // The primary-parent edge Duplex<-Readable is reconstructed.
    let duplex = compiled.vtable_of("Duplex").unwrap();
    let readable = compiled.vtable_of("Readable").unwrap();
    assert_eq!(recon.parent_of(duplex), Some(readable));
}

#[test]
fn mi_ground_truth_records_extra_parent() {
    let compiled = compile(&diamond_free_mi().finish(), &CompileOptions::default()).unwrap();
    let gt = compiled.ground_truth();
    assert_eq!(gt.parent_of("Duplex"), Some("Readable"));
    assert_eq!(gt.parents_of("Duplex"), vec!["Readable", "Writable"]);
    // Successor queries follow the primary relation.
    assert!(gt.successors("Readable").contains("Duplex"));
}

#[test]
fn three_way_mi() {
    let mut p = ProgramBuilder::new();
    for name in ["A", "B", "C"] {
        p.class(name).method(format!("{}_m", name.to_lowercase()), |b| {
            b.ret();
        });
    }
    p.class("Omni").base("A").base("B").base("C").method("omni", |b| {
        b.ret();
    });
    p.func("drive", |f| {
        f.new_obj("o", "Omni");
        f.vcall("o", "a_m", vec![]);
        f.vcall("o", "b_m", vec![]);
        f.vcall("o", "c_m", vec![]);
        f.vcall("o", "omni", vec![]);
        f.ret();
    });
    let compiled = compile(&p.finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let config = AnalysisConfig::default();
    let ctors = recognize_ctors(&loaded, &config);
    let s = analyze(&loaded, &ctors, &config);
    let omni = compiled.vtable_of("Omni").unwrap();
    assert_eq!(s.vptr_store_counts().get(&omni), Some(&3), "three stores, three parents");
    assert_eq!(compiled.ground_truth().parents_of("Omni"), vec!["A", "B", "C"]);
}

#[test]
fn mi_parents_returns_one_parent_per_vptr_store() {
    // §5.3: the Duplex ctor stores two vtable pointers, so the pipeline
    // assigns it two parents — the structurally pinned primary plus the
    // next most likely candidate.
    let compiled = compile(&diamond_free_mi().finish(), &CompileOptions::default()).unwrap();
    let loaded = LoadedBinary::load(compiled.stripped_image()).unwrap();
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let mi = recon.mi_parents();
    let duplex = compiled.vtable_of("Duplex").unwrap();
    let readable = compiled.vtable_of("Readable").unwrap();
    let duplex_parents = &mi[&duplex];
    assert_eq!(duplex_parents.first(), Some(&readable), "primary parent first");
    // Single-inheritance types get exactly one (or zero for roots).
    assert!(mi[&readable].len() <= 1);
    let writable = compiled.vtable_of("Writable").unwrap();
    assert!(mi[&writable].len() <= 1);
}
