//! The retry ladder: deterministic backoff arithmetic (no wall clock),
//! the recorded degradation order full → reduced×N → structural-only,
//! and the graceful floor — a job that exhausts every rung still emits
//! a structural-only hierarchy plus the diagnostics explaining why.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use rock::binary::image_to_bytes;
use rock::budget::RetryPolicy;
use rock::core::{suite, FaultPlan, Parallelism, RockConfig};
use rock::supervisor::{
    exit, ArtifactStore, JobOutcome, JobOutput, Rung, Supervisor, SupervisorOptions,
};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("rock-retry-ladder-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::open(&self.0).unwrap()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn image_bytes() -> Vec<u8> {
    let bench = suite::stress_program(2, 2, 2);
    let compiled = bench.compile().expect("compiles");
    image_to_bytes(&compiled.stripped_image())
}

fn supervisor(retry: RetryPolicy, scratch: &Scratch) -> Supervisor {
    let options = SupervisorOptions { retry, ..SupervisorOptions::default() };
    Supervisor::new(
        RockConfig::paper().with_parallelism(Parallelism::Serial),
        scratch.store(),
        options,
    )
}

#[test]
fn the_backoff_schedule_is_pure_arithmetic() {
    // min(base * 2^n, cap), computed — never slept — in tests.
    let policy = RetryPolicy::new(5).with_backoff(100, 1000);
    assert_eq!(policy.schedule(), vec![100, 200, 400, 800, 1000]);
    assert_eq!(RetryPolicy::none().schedule(), Vec::<u64>::new());
    // Saturation, not overflow, far down the curve.
    let deep = RetryPolicy::new(80).with_backoff(u64::MAX / 2, u64::MAX);
    assert_eq!(deep.backoff_ms(79), u64::MAX);
}

#[test]
fn recorded_backoffs_match_the_schedule_without_sleeping() {
    // Every attempt panics; sleep_backoff stays off, so the full ladder
    // runs in far less wall time than the 300 ms it *records*.
    let scratch = Scratch::new("schedule");
    let policy = RetryPolicy::new(2).with_backoff(100, 10_000);
    let sup = supervisor(policy, &scratch)
        .with_fault_plan(Arc::new(FaultPlan::new().fail_attempts(u32::MAX)));
    let started = std::time::Instant::now();
    let result = sup.run_job("job", &image_bytes());
    assert!(started.elapsed().as_millis() < 60_000, "backoff must not be slept");
    let backoffs: Vec<u64> = result.report.attempts.iter().map(|a| a.backoff_ms).collect();
    // First try is free; retries follow the schedule; the structural
    // fallback never waits.
    assert_eq!(backoffs, vec![0, 100, 200, 0]);
}

#[test]
fn the_degradation_order_is_full_then_reduced_then_structural() {
    let scratch = Scratch::new("order");
    let sup = supervisor(RetryPolicy::new(2), &scratch)
        .with_fault_plan(Arc::new(FaultPlan::new().fail_attempts(u32::MAX)));
    let result = sup.run_job("job", &image_bytes());
    let rungs: Vec<Rung> = result.report.attempts.iter().map(|a| a.rung).collect();
    assert_eq!(rungs, vec![Rung::Full, Rung::Reduced, Rung::Reduced, Rung::StructuralOnly]);
    for a in &result.report.attempts[..3] {
        assert!(a.result.starts_with("panicked"), "got: {}", a.result);
    }
    assert_eq!(result.report.attempts[3].result, "ok");
    assert_eq!(result.report.outcome, JobOutcome::Degraded(Rung::StructuralOnly));
    assert_eq!(result.report.exit_code(), exit::DEGRADED);
}

#[test]
fn an_exhausted_ladder_still_emits_a_structural_hierarchy_with_diagnostics() {
    let scratch = Scratch::new("floor");
    let sup = supervisor(RetryPolicy::new(1), &scratch)
        .with_fault_plan(Arc::new(FaultPlan::new().fail_attempts(u32::MAX)));
    let result = sup.run_job("job", &image_bytes());
    match result.output {
        JobOutput::StructuralOnly { hierarchy, issues, .. } => {
            assert!(!hierarchy.is_empty(), "the floor is a real hierarchy");
            assert!(hierarchy.is_acyclic());
            // Every failed attempt left a diagnostic explaining itself.
            let explained = issues.iter().filter(|i| i.contains("attempt on rung")).count();
            assert_eq!(explained, 2, "got: {issues:?}");
            assert_eq!(result.report.errors, issues.len());
        }
        other => panic!("expected the structural-only floor, got {other:?}"),
    }
}

#[test]
fn one_failure_recovers_on_the_reduced_rung() {
    let scratch = Scratch::new("recover");
    let sup = supervisor(RetryPolicy::new(3), &scratch)
        .with_fault_plan(Arc::new(FaultPlan::new().fail_attempts(1)));
    let result = sup.run_job("job", &image_bytes());
    let rungs: Vec<Rung> = result.report.attempts.iter().map(|a| a.rung).collect();
    assert_eq!(rungs, vec![Rung::Full, Rung::Reduced]);
    assert_eq!(result.report.outcome, JobOutcome::Degraded(Rung::Reduced));
    assert!(matches!(result.output, JobOutput::Full(_)), "a reduced run is still behavioral");
}

#[test]
fn strict_failures_bypass_the_ladder_entirely() {
    // A strict-mode stage error is deterministic: retrying or degrading
    // would betray the mode, so the job fails on the first attempt with
    // no structural fallback.
    let bytes = image_bytes();
    let image = rock::binary::image_from_bytes(&bytes).unwrap();
    let loaded = rock::loader::LoadedBinary::load(image).unwrap();
    let victim = loaded.functions()[0].entry();

    let scratch = Scratch::new("strict");
    let options = SupervisorOptions { retry: RetryPolicy::new(3), ..SupervisorOptions::default() };
    let sup = Supervisor::new(
        RockConfig::paper().with_parallelism(Parallelism::Serial).with_strict(),
        scratch.store(),
        options,
    )
    .with_fault_plan(Arc::new(FaultPlan::new().panic_on(victim)));
    let result = sup.run_job("job", &bytes);
    assert!(matches!(result.report.outcome, JobOutcome::Failed(_)), "{:?}", result.report.outcome);
    assert_eq!(result.report.exit_code(), exit::FAILED);
    assert_eq!(result.report.attempts.len(), 1, "no retries after a strict failure");
    assert!(matches!(result.output, JobOutput::None), "no fallback either");
}

#[test]
fn a_blown_deadline_skips_to_the_floor() {
    let scratch = Scratch::new("deadline");
    let options = SupervisorOptions {
        retry: RetryPolicy::new(3),
        deadline_ms: Some(0),
        ..SupervisorOptions::default()
    };
    let sup = Supervisor::new(
        RockConfig::paper().with_parallelism(Parallelism::Serial),
        scratch.store(),
        options,
    );
    let result = sup.run_job("job", &image_bytes());
    assert_eq!(result.report.outcome, JobOutcome::DeadlineBlown);
    assert_eq!(result.report.exit_code(), exit::DEADLINE);
    // The floor has no deadline: a hierarchy still comes out.
    match result.output {
        JobOutput::StructuralOnly { hierarchy, .. } => assert!(!hierarchy.is_empty()),
        other => panic!("expected the structural-only floor, got {other:?}"),
    }
}
