//! Seeded structural fuzzer for the loader. Four mutation families —
//! truncation, length-field lies, overlapping sections, vtable slot
//! garbage — are applied to well-formed images, and every mutant is
//! pushed through `load_lenient` plus a full reconstruction.
//!
//! Two oracles hold for every seed:
//!
//! 1. **Never panics** — the worst outcome is an error value or a
//!    degraded load, whatever the mutation did.
//! 2. **Lenient ⊇ strict** — any image the strict loader rejects must
//!    surface at least one issue from the lenient loader; degradation
//!    is never silent.
//!
//! Seeds come from `ROCK_FUZZ_SEEDS` (`"a..b"` range or comma list; CI
//! sweeps `0..64`), defaulting to `0..8` for local runs.

use rock::binary::{image_from_bytes, image_to_bytes, Addr, BinaryImage, Section, SectionKind};
use rock::core::{suite, Rock, RockConfig, Stage};
use rock::loader::LoadedBinary;

/// SplitMix64: the same deterministic generator the fault plan uses.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny seeded stream of draws.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Seeds to sweep: `ROCK_FUZZ_SEEDS="0..64"` or `"1,5,9"`, else `0..8`.
fn seeds() -> Vec<u64> {
    let Ok(spec) = std::env::var("ROCK_FUZZ_SEEDS") else {
        return (0..8).collect();
    };
    if let Some((lo, hi)) = spec.split_once("..") {
        let lo: u64 = lo.trim().parse().expect("bad ROCK_FUZZ_SEEDS lower bound");
        let hi: u64 = hi.trim().parse().expect("bad ROCK_FUZZ_SEEDS upper bound");
        (lo..hi).collect()
    } else {
        spec.split(',').map(|s| s.trim().parse().expect("bad ROCK_FUZZ_SEEDS entry")).collect()
    }
}

fn base_image() -> BinaryImage {
    let bench = suite::stress_program(2, 2, 2);
    bench.compile().expect("compiles").stripped_image()
}

/// The oracles, applied to one mutant image.
///
/// Returning at all is oracle (1): neither the strict loader, the
/// lenient loader, nor a full reconstruction over the lenient result may
/// panic. Oracle (2): a strict rejection implies a visible lenient
/// issue, and every lenient issue resurfaces as a `Load` diagnostic.
fn check(mutant: BinaryImage, what: &str) {
    let strict = LoadedBinary::load(mutant.clone());
    let lenient = LoadedBinary::load_lenient(mutant);
    if let Err(e) = &strict {
        assert!(
            !lenient.issues().is_empty(),
            "{what}: strict load failed ({e}) but the lenient load is silent"
        );
    }
    let recon = Rock::new(RockConfig::paper()).reconstruct(&lenient);
    assert!(recon.hierarchy.is_acyclic(), "{what}: cyclic hierarchy");
    let load_diags = recon.diagnostics.iter().filter(|d| d.stage == Stage::Load).count();
    assert_eq!(load_diags, lenient.issues().len(), "{what}: lenient issues must be diagnosed");
}

fn sections_of(image: &BinaryImage) -> Vec<Section> {
    image.sections().to_vec()
}

// ---------------------------------------------------------------------
// Mutation family 1: truncation
// ---------------------------------------------------------------------

#[test]
fn truncated_sections_survive_both_loaders() {
    let image = base_image();
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x7275_6e63); // "runc"
        let mut sections = sections_of(&image);
        let victim = rng.below(sections.len());
        let old = &sections[victim];
        if old.is_empty() {
            continue;
        }
        let keep = rng.below(old.len());
        sections[victim] = Section::new(old.kind(), old.base(), old.bytes()[..keep].to_vec());
        check(BinaryImage::new(sections), &format!("seed {seed}: truncate to {keep}"));
    }
}

// ---------------------------------------------------------------------
// Mutation family 2: length-field lies in the serialized container
// ---------------------------------------------------------------------

/// Byte offsets of every section `len` field in a serialized image.
fn len_field_offsets(bytes: &[u8]) -> Vec<usize> {
    let count = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let mut offsets = Vec::new();
    let mut pos = 8;
    for _ in 0..count {
        pos += 1 + 8; // kind + base
        offsets.push(pos);
        let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
        pos += 8 + len;
    }
    offsets
}

#[test]
fn lying_length_fields_error_or_degrade_but_never_panic() {
    let bytes = image_to_bytes(&base_image());
    let offsets = len_field_offsets(&bytes);
    assert!(!offsets.is_empty());
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x6c69_6573); // "lies"
        let at = offsets[rng.below(offsets.len())];
        let truth = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let lies = [0, truth.wrapping_sub(1), truth + 1, truth * 2, 1 << 40, u64::MAX, rng.next()];
        for lie in lies {
            let mut mutant = bytes.clone();
            mutant[at..at + 8].copy_from_slice(&lie.to_le_bytes());
            // Decoding must reject the lie or reinterpret the stream —
            // either way without panicking; anything that still decodes
            // goes through the full loader oracles.
            if let Ok(image) = image_from_bytes(&mutant) {
                check(image, &format!("seed {seed}: len {truth} -> {lie}"));
            }
        }
    }
}

#[test]
fn random_container_corruption_errors_or_degrades_but_never_panics() {
    let bytes = image_to_bytes(&base_image());
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x636f_7272); // "corr"
        let mut mutant = bytes.clone();
        for _ in 0..16 {
            let pos = rng.below(mutant.len());
            mutant[pos] ^= (rng.next() as u8) | 1;
        }
        if let Ok(image) = image_from_bytes(&mutant) {
            check(image, &format!("seed {seed}: container corruption"));
        }
    }
}

// ---------------------------------------------------------------------
// Mutation family 3: overlapping sections
// ---------------------------------------------------------------------

#[test]
fn overlapping_sections_survive_both_loaders() {
    let image = base_image();
    let text = image.section(SectionKind::Text).unwrap();
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x6f76_6572); // "over"
                                               // A rodata section shoved into the middle of text: its "slots"
                                               // are seeded garbage that may alias real code addresses.
        let overlap_base = text.base().value() + rng.below(text.len()) as u64;
        let mut slots = Vec::new();
        for _ in 0..8 {
            let word = match rng.below(3) {
                0 => text.base().value() + rng.below(text.len()) as u64,
                1 => rng.next(),
                _ => 0,
            };
            slots.extend_from_slice(&word.to_le_bytes());
        }
        let mut sections = sections_of(&image);
        sections.push(Section::new(SectionKind::RoData, Addr::new(overlap_base), slots));
        check(BinaryImage::new(sections), &format!("seed {seed}: rodata overlaps text"));

        // Two text sections covering overlapping ranges.
        let mut sections = sections_of(&image);
        let shifted = Addr::new(text.base().value() + 1 + rng.below(16) as u64);
        sections.push(Section::new(SectionKind::Text, shifted, text.bytes().to_vec()));
        check(BinaryImage::new(sections), &format!("seed {seed}: duplicate shifted text"));
    }
}

// ---------------------------------------------------------------------
// Mutation family 4: vtable slot garbage
// ---------------------------------------------------------------------

#[test]
fn garbage_vtable_slots_survive_both_loaders() {
    let image = base_image();
    for seed in seeds() {
        let mut rng = Rng(seed ^ 0x736c_6f74); // "slot"
        let rodata = image.section(SectionKind::RoData).unwrap();
        let mut bytes = rodata.bytes().to_vec();
        let slots = bytes.len() / 8;
        if slots == 0 {
            continue;
        }
        for _ in 0..4 {
            let slot = rng.below(slots) * 8;
            let garbage = match rng.below(4) {
                0 => u64::MAX,
                1 => 0,
                2 => rng.next(),
                // A misaligned in-text address: looks plausible, is not
                // a function entry.
                _ => image.section(SectionKind::Text).unwrap().base().value() + 1,
            };
            bytes[slot..slot + 8].copy_from_slice(&garbage.to_le_bytes());
        }
        let mut sections: Vec<Section> =
            image.sections().iter().filter(|s| s.kind() != SectionKind::RoData).cloned().collect();
        sections.push(Section::new(SectionKind::RoData, rodata.base(), bytes));
        check(BinaryImage::new(sections), &format!("seed {seed}: vtable slot garbage"));
    }
}
