//! Substrate validation: every suite benchmark *executes* correctly in
//! the reference interpreter — drivers run to completion, virtual
//! dispatch actually happens, no faults. This is what makes the
//! synthetic binaries credible stand-ins for the paper's real ones.

use rock::core::suite;
use rock::vm::{Machine, TraceEvent, VmError};

/// Runs every `drive*` function of a compiled benchmark; returns
/// (drivers run, virtual calls observed).
fn run_all_drivers(bench: &suite::Benchmark) -> (usize, usize) {
    let compiled = bench.compile().expect("compiles");
    let mut vm = Machine::new(compiled.image().clone()).expect("vm loads");
    let drivers: Vec<_> = compiled
        .image()
        .symbols()
        .iter()
        .filter(|s| {
            s.name.starts_with("drive") || s.name.starts_with("use") || s.name.starts_with("read")
        })
        .map(|s| (s.name.clone(), s.addr))
        .collect();
    assert!(!drivers.is_empty(), "{}: no drivers found", bench.name);
    let mut vcalls = 0;
    for (name, entry) in &drivers {
        vm.reset();
        match vm.run(*entry, &[1, 2, 3, 4, 5, 6]) {
            Ok(outcome) => assert!(outcome.steps > 0),
            Err(e) => panic!("{}::{name} faulted: {e}", bench.name),
        }
        vcalls += vm.trace().virtual_calls().count();
    }
    (drivers.len(), vcalls)
}

#[test]
fn all_19_benchmarks_execute() {
    for bench in suite::all_benchmarks() {
        let (drivers, vcalls) = run_all_drivers(&bench);
        assert!(vcalls > 0, "{}: {drivers} drivers ran but dispatched nothing", bench.name);
    }
}

#[test]
fn figure_examples_execute() {
    for bench in [suite::streams_example(), suite::datasource_example()] {
        let (_, vcalls) = run_all_drivers(&bench);
        assert!(vcalls > 0, "{}", bench.name);
    }
}

#[test]
fn stress_program_executes() {
    let bench = suite::stress_program(2, 3, 2);
    let (drivers, vcalls) = run_all_drivers(&bench);
    assert_eq!(drivers, 14, "one driver per concrete class");
    assert!(vcalls >= drivers);
}

#[test]
fn dispatch_counts_match_driver_structure() {
    // The streams drivers perform exactly 3 + 6 + 5 = 14 virtual calls.
    let bench = suite::streams_example();
    let compiled = bench.compile().unwrap();
    let mut vm = Machine::new(compiled.image().clone()).unwrap();
    let mut total = 0;
    for name in ["useStream", "useConfirmableStream", "useFlushableStream"] {
        let entry = compiled.image().symbols().by_name(name).unwrap().addr;
        vm.reset();
        vm.run(entry, &[]).unwrap();
        total += vm.trace().virtual_calls().count();
    }
    assert_eq!(total, 14);
}

#[test]
fn dispatch_resolves_through_real_vtables() {
    // Every virtual call in every benchmark must land on a function that
    // really sits in the receiver's vtable at the dispatched slot.
    let bench = suite::benchmark("echoparams").unwrap();
    let compiled = bench.compile().unwrap();
    let mut vm = Machine::new(compiled.image().clone()).unwrap();
    let drivers: Vec<_> = compiled
        .image()
        .symbols()
        .iter()
        .filter(|s| s.name.starts_with("drive"))
        .map(|s| s.addr)
        .collect();
    for d in drivers {
        vm.reset();
        vm.run(d, &[]).unwrap();
        for ev in vm.trace().events() {
            if let TraceEvent::VirtualCall { vtable, slot, target, .. } = ev {
                let vt = vm.loaded().vtable_at(*vtable).expect("dispatch vtable exists");
                assert_eq!(vt.slots()[*slot], *target);
            }
        }
    }
}

#[test]
fn stripped_images_cannot_run_without_runtime_hints() {
    // The VM needs the allocator located; a stripped image provides no
    // symbols, so `new` must fail gracefully (alloc treated as a normal
    // call, returning garbage r0 -> null write fault).
    let bench = suite::streams_example();
    let compiled = bench.compile().unwrap();
    let stripped = compiled.stripped_image();
    let mut vm = Machine::new(stripped).unwrap();
    let loaded = vm.loaded().clone();
    // Find `useStream` by position: first function that calls into the
    // allocator... simplest: try all functions; at least one faults with
    // NullAccess and none panic.
    let mut saw_fault = false;
    for f in loaded.functions() {
        vm.reset();
        match vm.run(f.entry(), &[0; 6]) {
            Ok(_) => {}
            Err(VmError::NullAccess(_)) | Err(VmError::BadIndirectTarget(_)) => {
                saw_fault = true;
            }
            Err(VmError::Exhausted(_)) | Err(VmError::PureVirtualCall { .. }) => {}
            Err(e) => panic!("unexpected fault class: {e}"),
        }
    }
    assert!(saw_fault, "some driver must fault without a real allocator");
}
