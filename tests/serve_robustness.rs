//! The daemon's robustness contract, end to end over real sockets:
//!
//! * **Overload**: with a K-deep queue and ≥3·K concurrent submissions
//!   (including one over-quota tenant and one poisoned, panicking job),
//!   every shed request gets a *typed* rejection, every admitted job
//!   completes to a terminal state, and the serving loop survives the
//!   panic and keeps serving.
//! * **Drain + restart**: a job interrupted at a stage boundary (and
//!   checkpointed) on one daemon resumes on a *restarted* daemon over
//!   the same store and produces a result bit-identical — compared by
//!   content fingerprint — to an uninterrupted run.
//! * **Protocol discipline**: bad versions, Hello-less requests, and
//!   garbage frames get typed protocol errors and a close, never a
//!   wedged daemon.
//! * **Slow clients**: a reader that exhausts its send budget is
//!   dropped; its jobs keep running and stay queryable elsewhere.

use std::fs;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use rock::binary::image_to_bytes;
use rock::core::{suite, FaultPlan, StageId};
use rock::serve::wire::{JobState, RejectReason, Request, Response};
use rock::serve::{result_fp, DrainSummary, ServeClient, ServeConfig, Server, ServerHandle};
use rock::supervisor::{ArtifactStore, Supervisor};
use rock::trace::names;

/// A scratch artifact-store root, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("rock-serve-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn small_image() -> Vec<u8> {
    image_to_bytes(&suite::streams_example().compile().expect("compiles").stripped_image())
}

fn big_image() -> Vec<u8> {
    image_to_bytes(&suite::stress_program(2, 2, 2).compile().expect("compiles").stripped_image())
}

/// Binds and runs a daemon on a background thread; fast poll ticks keep
/// the tests snappy.
fn start(
    mut cfg: ServeConfig,
) -> (SocketAddr, ServerHandle, thread::JoinHandle<std::io::Result<DrainSummary>>) {
    cfg.poll_ms = 2;
    let server = Server::bind(cfg, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn accepted(response: Response) -> u64 {
    match response {
        Response::Accepted { job } => job,
        other => panic!("expected Accepted, got {other:?}"),
    }
}

fn done(state: JobState) -> (u8, String, u64, String) {
    match state {
        JobState::Done { exit_code, outcome, result_fp, report_json } => {
            (exit_code, outcome, result_fp, report_json)
        }
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn overload_sheds_typed_completes_admitted_and_survives_panics() {
    let scratch = Scratch::new("overload");
    let mut cfg = ServeConfig::new(&scratch.0);
    cfg.queue_capacity = 4; // K
    cfg.workers = 2;
    cfg.quota.burst = 4;
    cfg.quota.refill_per_sec = 0; // deterministic: tokens never return
    cfg.quota.max_inflight = 0;
    let (addr, handle, join) = start(cfg);
    let image = small_image();

    // A poisoned job that panics inside the worker, before anything the
    // supervisor could contain.
    handle.poison_job("boom");
    let mut ctl = ServeClient::connect(addr, "ctl").expect("connect");
    let boom = accepted(ctl.submit("boom", 0, &image).unwrap());
    let (exit_code, outcome, _, report) = done(ctl.wait(boom, 10, 60_000).unwrap());
    assert_eq!(outcome, "failed", "a panicking job fails typed: {report}");
    assert_ne!(exit_code, 0);
    assert!(report.contains("panicked"), "{report}");
    assert_eq!(handle.counter(names::SERVE_PANICS_CONTAINED), 1);

    // ≥ 3·K concurrent submissions: 5 tenants × 3 jobs + 1 greedy × 12.
    let mut threads = Vec::new();
    for t in 0..5 {
        let image = image.clone();
        threads.push(thread::spawn(move || {
            let mut c = ServeClient::connect(addr, &format!("tenant-{t}")).expect("connect");
            let mut out = Vec::new();
            for j in 0..3 {
                out.push(c.submit(&format!("t{t}-j{j}"), 0, &image).unwrap());
            }
            out
        }));
    }
    {
        let image = image.clone();
        threads.push(thread::spawn(move || {
            let mut c = ServeClient::connect(addr, "greedy").expect("connect");
            (0..12).map(|j| c.submit(&format!("g-{j}"), 0, &image).unwrap()).collect()
        }));
    }
    let mut jobs = Vec::new();
    let mut rejections = Vec::new();
    for t in threads {
        for response in t.join().expect("client thread") {
            match response {
                Response::Accepted { job } => jobs.push(job),
                Response::Rejected { reason, detail } => rejections.push((reason, detail)),
                other => panic!("untyped response under overload: {other:?}"),
            }
        }
    }
    assert_eq!(jobs.len() + rejections.len(), 27, "every submission got a typed answer");
    // The greedy tenant burned its 4 burst tokens with refill 0: at
    // least 8 of its 12 submissions are over quota by construction.
    let quota = rejections.iter().filter(|(r, _)| *r == RejectReason::QuotaExceeded).count();
    assert!(quota >= 8, "greedy tenant must shed ≥8, saw {quota}");
    assert!(
        rejections.iter().all(|(r, d)| {
            matches!(r, RejectReason::QuotaExceeded | RejectReason::QueueFull) && !d.is_empty()
        }),
        "only quota/queue rejections with detail text here: {rejections:?}"
    );
    // Every admitted job reaches a terminal Done, all identical results.
    let mut fps = Vec::new();
    for job in &jobs {
        let (exit_code, outcome, fp, report) = done(ctl.wait(*job, 10, 120_000).unwrap());
        assert_eq!((exit_code, outcome.as_str()), (0, "ok"), "job {job}: {report}");
        fps.push(fp);
    }
    assert!(fps.windows(2).all(|w| w[0] == w[1]), "same image, same result bits");

    // The daemon is still healthy after all of it.
    let after = accepted(ctl.submit("after-the-storm", 0, &image).unwrap());
    let (_, outcome, _, _) = done(ctl.wait(after, 10, 60_000).unwrap());
    assert_eq!(outcome, "ok");

    handle.drain();
    let summary = join.join().expect("server thread").expect("clean drain");
    assert_eq!(summary.panics_contained, 1);
    assert_eq!(summary.accepted, jobs.len() as u64 + 2, "storm + boom + after");
    assert_eq!(summary.completed, summary.accepted, "every admitted job finished");
    assert_eq!(summary.rejected, rejections.len() as u64);
}

#[test]
fn drain_midflight_then_restart_resumes_bit_identical() {
    let scratch = Scratch::new("restart");
    let image = big_image();
    let cfg = ServeConfig::new(&scratch.0);

    // Reference: an uninterrupted run under the daemon's exact config,
    // on a private store.
    let ref_scratch = Scratch::new("restart-ref");
    let reference = {
        let sup = Supervisor::new(
            cfg.config,
            ArtifactStore::open(&ref_scratch.0).unwrap(),
            cfg.options.clone(),
        );
        let result = sup.run_job("flaky", &image);
        assert_eq!(result.report.outcome.name(), "ok");
        result_fp(&result.output)
    };

    // Daemon #1: the job is rigged to crash right after the Training
    // stage checkpoints.
    let (addr, handle, join) = start(cfg.clone());
    handle.set_fault_plan("flaky", Arc::new(FaultPlan::new().interrupt_after(StageId::Training)));
    let mut c = ServeClient::connect(addr, "tenant").expect("connect");
    let job = accepted(c.submit("flaky", 0, &image).unwrap());
    let (exit_code, outcome, fp, _) = done(c.wait(job, 10, 120_000).unwrap());
    assert_eq!(outcome, "interrupted", "the fault fired");
    assert_ne!(exit_code, 0);
    assert_ne!(fp, reference, "an interrupted job carries no result");
    // Drain over the wire; the daemon exits cleanly.
    c.drain().unwrap();
    let summary = join.join().expect("server thread").expect("clean drain");
    assert_eq!(summary.completed, summary.accepted);

    // Daemon #2 on the SAME store, no fault plan: the resumed run must
    // restore the checkpointed prefix and land on the reference bits.
    let (addr, _handle, join) = start(ServeConfig::new(&scratch.0));
    let mut c = ServeClient::connect(addr, "tenant").expect("connect");
    let job = accepted(c.submit("flaky", 0, &image).unwrap());
    let (exit_code, outcome, fp, report) = done(c.wait(job, 10, 120_000).unwrap());
    assert_eq!((exit_code, outcome.as_str()), (0, "ok"), "{report}");
    assert_eq!(fp, reference, "resumed result must be bit-identical to an uninterrupted run");
    assert!(
        !report.contains("\"restored\":[]"),
        "the restart really restored checkpoints: {report}"
    );
    c.drain().unwrap();
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn protocol_violations_get_typed_errors_and_the_daemon_keeps_serving() {
    let scratch = Scratch::new("protocol");
    let (addr, handle, join) = start(ServeConfig::new(&scratch.0));

    // A protocol version below the supported minimum is refused.
    let Err(err) = ServeClient::connect_with_version(addr, "old", 0) else {
        panic!("a below-minimum version must be refused");
    };
    assert!(err.to_string().contains("version"), "{err}");

    // Requests before Hello are refused with a typed error.
    let mut raw = TcpStream::connect(addr).unwrap();
    let body = Request::Status { job: 1 }.encode();
    raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&body).unwrap();
    let reply = read_one_frame(&mut raw);
    match Response::decode(&reply).unwrap() {
        Response::ProtocolError { message } => assert!(message.contains("Hello"), "{message}"),
        other => panic!("expected ProtocolError, got {other:?}"),
    }

    // Garbage bodies get a typed error too.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&4u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
    let reply = read_one_frame(&mut raw);
    assert!(matches!(Response::decode(&reply).unwrap(), Response::ProtocolError { .. }));

    // An absurd frame length is refused without allocation.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let reply = read_one_frame(&mut raw);
    assert!(matches!(Response::decode(&reply).unwrap(), Response::ProtocolError { .. }));

    assert!(handle.counter(names::SERVE_PROTOCOL_ERRORS) >= 4);

    // After all that abuse, a well-behaved client is served normally.
    let image = small_image();
    let mut c = ServeClient::connect(addr, "fine").expect("connect");
    let job = accepted(c.submit("fine", 0, &image).unwrap());
    let (_, outcome, _, _) = done(c.wait(job, 10, 60_000).unwrap());
    assert_eq!(outcome, "ok");

    handle.drain();
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn oversized_images_and_full_queues_reject_typed() {
    let scratch = Scratch::new("shed");
    let mut cfg = ServeConfig::new(&scratch.0);
    cfg.max_image_bytes = 64;
    cfg.queue_capacity = 1;
    cfg.workers = 1;
    let (addr, handle, join) = start(cfg);
    let mut c = ServeClient::connect(addr, "tenant").expect("connect");

    // Oversized: rejected before any quota or queue accounting.
    let huge = vec![0u8; 65];
    match c.submit("huge", 0, &huge).unwrap() {
        Response::Rejected { reason, detail } => {
            assert_eq!(reason, RejectReason::TooLarge);
            assert!(detail.contains("65"), "{detail}");
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    assert_eq!(handle.counter(names::SERVE_REJECTED_TOO_LARGE), 1);

    // Queue-full: with the workers paused, a 1-deep queue sheds every
    // submission past the first — exactly, deterministically.
    let image = small_image();
    assert!(image.len() > 64);
    let mut cfg2 = ServeConfig::new(&scratch.0);
    cfg2.queue_capacity = 1;
    cfg2.workers = 1;
    cfg2.quota.burst = 0; // isolate the queue check from the bucket
    let (addr2, handle2, join2) = start(cfg2);
    handle2.pause_workers(true);
    let mut c2 = ServeClient::connect(addr2, "tenant").expect("connect");
    let mut accepted_jobs = Vec::new();
    let mut queue_full = 0;
    for j in 0..16 {
        match c2.submit(&format!("burst-{j}"), 0, &image).unwrap() {
            Response::Accepted { job } => accepted_jobs.push(job),
            Response::Rejected { reason: RejectReason::QueueFull, detail } => {
                assert!(detail.contains("capacity"), "{detail}");
                queue_full += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(accepted_jobs.len(), 1, "a 1-deep queue admits exactly one while paused");
    assert_eq!(queue_full, 15);
    assert_eq!(handle2.counter(names::SERVE_REJECTED_QUEUE_FULL), 15);
    handle2.pause_workers(false);
    for job in accepted_jobs {
        let (_, outcome, _, _) = done(c2.wait(job, 10, 120_000).unwrap());
        assert_eq!(outcome, "ok");
    }
    handle2.drain();
    join2.join().expect("server thread").expect("clean drain");
    handle.drain();
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn cancel_pulls_queued_jobs_and_frees_their_quota() {
    let scratch = Scratch::new("cancel");
    let mut cfg = ServeConfig::new(&scratch.0);
    cfg.workers = 1;
    cfg.queue_capacity = 16;
    cfg.quota.max_inflight = 3; // cancel must free a slot
    cfg.quota.burst = 0;
    let (addr, handle, join) = start(cfg);
    let image = small_image();
    let mut c = ServeClient::connect(addr, "tenant").expect("connect");
    // Paused workers keep all three admitted jobs in the queue.
    handle.pause_workers(true);
    let a = accepted(c.submit("a", 0, &image).unwrap());
    let b = accepted(c.submit("b", 0, &image).unwrap());
    let d = accepted(c.submit("d", 0, &image).unwrap());
    assert!(matches!(c.status(d).unwrap(), JobState::Queued { position: 2 }));
    // Inflight is 3 of 3: the next submit is shed...
    match c.submit("e", 0, &image).unwrap() {
        Response::Rejected { reason, .. } => assert_eq!(reason, RejectReason::QuotaExceeded),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // ...until cancelling a still-queued job frees its slot.
    match c.cancel(d).unwrap() {
        JobState::Cancelled => {}
        other => panic!("job d should still be queued, was {other:?}"),
    }
    assert_eq!(handle.counter(names::SERVE_CANCELLED), 1);
    let e = accepted(c.submit("e", 0, &image).unwrap());
    handle.pause_workers(false);
    for job in [a, b, e] {
        let (_, outcome, _, _) = done(c.wait(job, 10, 120_000).unwrap());
        assert_eq!(outcome, "ok");
    }
    assert!(matches!(c.status(d).unwrap(), JobState::Cancelled), "cancellation is terminal");
    handle.drain();
    let summary = join.join().expect("server thread").expect("clean drain");
    assert_eq!(summary.cancelled, 1);
}

#[test]
fn concurrent_submit_and_status_never_deadlock() {
    // Regression: `submit` once nested the queue lock inside the jobs
    // lock while `status` nested them the other way round — an AB-BA
    // inversion two connection threads could deadlock on, wedging the
    // daemon. The locks are now never held together; this drill wedges
    // (and times the suite out) if the nesting ever comes back.
    let scratch = Scratch::new("lockorder");
    let mut cfg = ServeConfig::new(&scratch.0);
    cfg.queue_capacity = 2;
    cfg.workers = 1;
    cfg.quota.burst = 0;
    cfg.quota.max_inflight = 0;
    let (addr, handle, join) = start(cfg);
    let image = small_image();
    // A seed job pinned in the queue so Status always takes the
    // Queued path (jobs table read + queue position lookup).
    handle.pause_workers(true);
    let mut c = ServeClient::connect(addr, "seed").expect("connect");
    let queued = accepted(c.submit("seed", 0, &image).unwrap());

    let submitter = {
        let image = image.clone();
        thread::spawn(move || {
            let mut c = ServeClient::connect(addr, "submitter").expect("connect");
            // One more Accepted (capacity 2), then QueueFull forever —
            // both admission paths touch the queue and jobs locks.
            for j in 0..300 {
                let _ = c.submit(&format!("s-{j}"), 0, &image).unwrap();
            }
        })
    };
    let pollers: Vec<_> = (0..2)
        .map(|p| {
            thread::spawn(move || {
                let mut c = ServeClient::connect(addr, &format!("poller-{p}")).expect("connect");
                for _ in 0..300 {
                    match c.status(queued).unwrap() {
                        JobState::Queued { position } => assert_eq!(position, 0),
                        other => panic!("pinned seed job reached {other:?}"),
                    }
                }
            })
        })
        .collect();
    submitter.join().expect("submitter thread");
    for p in pollers {
        p.join().expect("poller thread");
    }
    handle.pause_workers(false);
    let (_, outcome, _, _) = done(c.wait(queued, 10, 120_000).unwrap());
    assert_eq!(outcome, "ok");
    handle.drain();
    join.join().expect("server thread").expect("clean drain");
}

#[test]
fn submissions_racing_a_drain_are_admitted_or_shed_never_stranded() {
    // Regression: a Submit that passed the draining check could push
    // its job after the accept loop had already concluded "draining
    // and idle" and shut the workers down — Accepted on the wire, but
    // Queued forever. The draining re-check now happens under the same
    // queue lock the idle decision holds, so every racer is either
    // admitted (and completes) or shed with a typed Draining.
    let scratch = Scratch::new("drainrace");
    let mut cfg = ServeConfig::new(&scratch.0);
    cfg.queue_capacity = 64;
    cfg.workers = 2;
    cfg.quota.burst = 0;
    cfg.quota.max_inflight = 0;
    let (addr, handle, join) = start(cfg);
    let image = small_image();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let image = image.clone();
            thread::spawn(move || {
                let mut c = ServeClient::connect(addr, &format!("racer-{t}")).expect("connect");
                let mut accepted = 0u64;
                for j in 0..10 {
                    match c.submit(&format!("r{t}-{j}"), 0, &image) {
                        Ok(Response::Accepted { .. }) => accepted += 1,
                        Ok(Response::Rejected { reason: RejectReason::Draining, .. }) => {}
                        Ok(other) => panic!("untyped response racing a drain: {other:?}"),
                        // The daemon finished its drain and closed the
                        // connection: nothing further can be admitted.
                        Err(_) => break,
                    }
                }
                accepted
            })
        })
        .collect();
    thread::sleep(std::time::Duration::from_millis(20));
    handle.drain();
    let accepted: u64 = threads.into_iter().map(|t| t.join().expect("racer thread")).sum();
    let summary = join.join().expect("server thread").expect("clean drain");
    assert_eq!(summary.accepted, accepted, "every Accepted on the wire is in the tally");
    assert_eq!(
        summary.completed + summary.cancelled,
        summary.accepted,
        "every admitted job reached a terminal state across the drain"
    );
    assert_eq!(summary.cancelled, 0, "no straggler needed the post-join sweep");
}

#[test]
fn slow_reader_exhausts_send_budget_but_its_jobs_survive() {
    let scratch = Scratch::new("slow");
    let mut cfg = ServeConfig::new(&scratch.0);
    // Generous enough for a handful of responses (a single Done status
    // carries a full JSON report), tiny enough that a polling loop
    // overruns it quickly.
    cfg.send_budget_bytes = 4096;
    let (addr, handle, join) = start(cfg);
    let image = small_image();
    let mut slow = ServeClient::connect(addr, "slow").expect("connect");
    let job = accepted(slow.submit("slow-job", 0, &image).unwrap());
    // Status responses eventually overrun the 256-byte budget; the
    // daemon drops the connection rather than buffering for a reader
    // that never keeps up.
    let mut dropped = false;
    for _ in 0..1_000 {
        if slow.status(job).is_err() {
            dropped = true;
            break;
        }
    }
    assert!(dropped, "the send budget must eventually drop the connection");
    assert!(handle.counter(names::SERVE_SLOW_CLIENT_DROPS) >= 1);
    // The job is unaffected and fully queryable from a fresh connection.
    let mut fresh = ServeClient::connect(addr, "fresh").expect("connect");
    let (_, outcome, _, _) = done(fresh.wait(job, 10, 60_000).unwrap());
    assert_eq!(outcome, "ok");
    handle.drain();
    join.join().expect("server thread").expect("clean drain");
}

/// Reads one `u32 LE length | body` frame off a raw socket.
fn read_one_frame(stream: &mut TcpStream) -> Vec<u8> {
    use std::io::Read;
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(prefix) as usize];
    stream.read_exact(&mut body).unwrap();
    body
}
