//! Runs the full 19-benchmark evaluation suite and prints Table 2.
//!
//! Same measurement as `cargo run -p rock-bench --bin table2`, exposed as
//! an example of driving the public API over many binaries.
//!
//! ```text
//! cargo run --release --example benchmark_suite
//! ```

use rock::core::{evaluate, render_table2, suite, Rock, RockConfig, Table2Row};
use rock::loader::LoadedBinary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rock = Rock::new(RockConfig::paper());
    let mut rows = Vec::new();
    for bench in suite::all_benchmarks() {
        let compiled = bench.compile()?;
        let loaded = LoadedBinary::load(compiled.stripped_image())?;
        let recon = rock.reconstruct(&loaded);
        let eval = evaluate(&compiled, &recon);
        println!(
            "{:<18} {:>3} types  structural-only: {:>5}  candidates: {}",
            bench.name,
            eval.num_types,
            if eval.structurally_resolved { "yes" } else { "no" },
            recon.structural.candidate_hierarchies(),
        );
        rows.push(Table2Row::new(&bench, &eval));
    }
    println!("\n{}", render_table2(&rows));

    let holds = rows.iter().filter(|r| r.shape_holds()).count();
    println!("qualitative shape holds on {holds}/{} benchmarks", rows.len());
    assert!(holds >= 17, "the reproduction should track the paper's shape");
    Ok(())
}
