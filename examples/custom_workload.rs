//! Synthesizing a custom benchmark with the public workload generator and
//! measuring it with every pipeline extension: structural-only baseline,
//! the paper pipeline, k-parents CFI mode, and family repartitioning.
//!
//! ```text
//! cargo run --example custom_workload
//! ```

use rock::core::suite::{generate_program, ClassSpec};
use rock::core::{evaluate, evaluate_k_parents, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::minicpp::{compile, CompileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately nasty shape: a wide level of equal-length siblings
    // under a root, plus a severed subtree (inline_ctor + override-all).
    let mut specs = vec![ClassSpec::node(None, 2, 0)];
    for i in 1..6 {
        specs.push(ClassSpec { overrides: 1, ..ClassSpec::node(Some(0), 0, i) });
    }
    specs.push(ClassSpec { inline_ctor: true, ..ClassSpec::node(Some(1), 1, 6) });
    specs.push(ClassSpec {
        overrides: usize::MAX,
        own_methods: 1,
        ..ClassSpec::node(Some(6), 1, 7)
    });
    specs.push(ClassSpec::node(Some(7), 1, 8));
    let program = generate_program("custom", &specs);

    let mut options = CompileOptions::default();
    options.inline_parent_ctors = true; // full release-style ambiguity
    let compiled = compile(&program, &options)?;
    let loaded = LoadedBinary::load(compiled.stripped_image())?;

    println!("{} types, {} functions", loaded.vtables().len(), loaded.functions().len());

    // Paper pipeline.
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    println!("families: {}", recon.structural.families().len());
    println!("phase II: {}", recon.structural.stats());
    let eval = evaluate(&compiled, &recon);
    println!("baseline     : without {} | with {}", eval.without_slm, eval.with_slm);

    // Repartitioning heals the severed subtree.
    let recon_rep = Rock::new(RockConfig::paper().with_repartitioning()).reconstruct(&loaded);
    let eval_rep = evaluate(&compiled, &recon_rep);
    println!("repartitioned: with {}", eval_rep.with_slm);
    assert!(eval_rep.with_slm.avg_missing <= eval.with_slm.avg_missing);

    // CFI k-parents trade-off on this workload.
    for k in 1..=3 {
        let d = evaluate_k_parents(&compiled, &recon, k);
        println!("k = {k}: {d}");
    }
    Ok(())
}
