//! CFI hardening: the paper's §1 motivation (Figs. 1–2).
//!
//! A control-flow-integrity policy for a virtual call site must allow
//! exactly the implementations reachable from the receiver's static type
//! — i.e. the type itself plus its successors in the class hierarchy.
//! Type *grouping* (family-level CFI, what pre-Rock tools could offer)
//! lets an external data source flow into `readInternal()`; the
//! reconstructed *hierarchy* does not.
//!
//! ```text
//! cargo run --example cfi_hardening
//! ```

use std::collections::BTreeSet;

use rock::core::{project_hierarchy, suite, Rock, RockConfig};
use rock::loader::LoadedBinary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = suite::datasource_example();
    let compiled = bench.compile()?;
    let loaded = LoadedBinary::load(compiled.stripped_image())?;
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let hierarchy = project_hierarchy(&recon.hierarchy, &compiled);

    println!("reconstructed hierarchy:\n{hierarchy}");

    // CFI target set for a call on a receiver of static type `t`:
    // t plus its reconstructed successors.
    let target_set = |t: &str| -> BTreeSet<String> {
        let mut s = hierarchy.successors(&t.to_string());
        s.insert(t.to_string());
        s
    };

    // Family-level policy (type grouping): every type in the family.
    let family_set = |t: &str| -> BTreeSet<String> {
        let vt = compiled.vtable_of(t).expect("known class");
        recon
            .structural
            .family_of(vt)
            .expect("in a family")
            .iter()
            .filter_map(|a| compiled.class_of(*a))
            .map(str::to_string)
            .collect()
    };

    let internal_policy = target_set("InternalDataSource");
    let internal_family = family_set("InternalDataSource");

    println!("readInternal() receiver: InternalDataSource");
    println!("  hierarchy-based CFI targets: {internal_policy:?}");
    println!("  family-based  CFI targets:   {internal_family:?}");

    assert!(
        !internal_policy.contains("ExternalDataSource"),
        "hierarchy CFI must exclude external sources"
    );
    assert!(
        !internal_policy.contains("External0") && !internal_policy.contains("External1"),
        "hierarchy CFI must exclude external leaf types"
    );
    assert!(
        internal_family.contains("ExternalDataSource"),
        "family-level grouping cannot make this distinction (the §1 attack)"
    );
    println!(
        "\nOK: hierarchy-based CFI blocks external sources ({} targets vs {} \
         with type grouping).",
        internal_policy.len(),
        internal_family.len()
    );

    // And the payload shrinkage across the whole binary:
    let classes: Vec<&str> = compiled.ground_truth().classes().collect();
    let total_h: usize = classes.iter().map(|c| target_set(c).len()).sum();
    let total_f: usize = classes.iter().map(|c| family_set(c).len()).sum();
    println!(
        "total allowed targets across all call-site types: {total_h} (hierarchy) \
         vs {total_f} (grouping)"
    );
    assert!(total_h < total_f);
    Ok(())
}
