//! Quickstart: the paper's running example, end to end.
//!
//! Compiles the Fig. 3 `Stream` program with parent-ctor inlining (so the
//! stripped binary looks like Fig. 5 and structure alone cannot place
//! `FlushableStream`), then walks every pipeline stage and prints what
//! the paper's Figs. 6–8 show: extracted tracelets, model probabilities,
//! pairwise distances and the reconstructed hierarchy.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rock::core::{suite, Rock, RockConfig};
use rock::loader::LoadedBinary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = suite::streams_example();
    let compiled = bench.compile()?;
    println!("== compiled image ==\n{}", compiled.image());

    let stripped = compiled.stripped_image();
    assert!(stripped.is_stripped());
    let loaded = LoadedBinary::load(stripped)?;
    println!("== loaded (stripped) ==\n{loaded}");

    let rock = Rock::new(RockConfig::paper());
    let recon = rock.reconstruct(&loaded);

    println!("== type families (structural phase I) ==\n{}", recon.structural);

    println!("== extracted tracelets (Fig. 7) ==");
    for vt in loaded.vtables() {
        let name = compiled.class_of(vt.addr()).unwrap_or("?");
        println!("{name}:");
        for t in recon.analysis.tracelets().of_type(vt.addr()) {
            let events: Vec<String> = t.iter().map(ToString::to_string).collect();
            println!("  {}", events.join(" ; "));
        }
    }

    println!("\n== pairwise D_KL over surviving candidate edges (Fig. 6) ==");
    for ((p, c), d) in &recon.distances {
        println!(
            "  D(SLM({}) || SLM({})) = {d:.4}",
            compiled.class_of(*p).unwrap_or("?"),
            compiled.class_of(*c).unwrap_or("?")
        );
    }

    println!("\n== reconstructed hierarchy (Fig. 4 / Fig. 6a) ==");
    let projected = rock::core::project_hierarchy(&recon.hierarchy, &compiled);
    print!("{projected}");

    let eval = rock::core::evaluate(&compiled, &recon);
    println!("\n== application distance (§6.3) ==\n{eval}");

    // The headline claims, checked:
    let stream = compiled.vtable_of("Stream").expect("Stream exists");
    let flushable = compiled.vtable_of("FlushableStream").expect("exists");
    let confirmable = compiled.vtable_of("ConfirmableStream").expect("exists");
    assert!(
        recon.possible_parents_of(flushable).len() >= 2,
        "structure alone must be ambiguous here"
    );
    assert_eq!(recon.parent_of(flushable), Some(stream));
    assert_eq!(recon.parent_of(confirmable), Some(stream));
    let d_good = recon.distances[&(stream, flushable)];
    let d_bad = recon.distances[&(confirmable, flushable)];
    assert!(d_good < d_bad, "the correct parent must rank first");
    println!("OK: SLMs resolved the Fig. 6 ambiguity ({d_good:.3} < {d_bad:.3}).");
    Ok(())
}
