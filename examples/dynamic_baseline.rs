//! The §7 related-work comparison, live: a Lego-style dynamic
//! reconstructor versus Rock on the same program at two optimization
//! levels.
//!
//! ```text
//! cargo run --example dynamic_baseline
//! ```

use rock::core::{project_hierarchy, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::minicpp::{compile, CompileOptions, ProgramBuilder};
use rock::vm::{dynamic_reconstruct, DynamicOptions};

fn program() -> ProgramBuilder {
    let mut p = ProgramBuilder::new();
    p.class("Shape").method("area", |b| {
        b.ret();
    });
    p.class("Polygon").base("Shape").method("sides", |b| {
        b.ret();
    });
    p.class("Triangle").base("Polygon").method("hypotenuse", |b| {
        b.ret();
    });
    for (i, class) in ["Shape", "Polygon", "Triangle"].iter().enumerate() {
        let class = class.to_string();
        p.func(format!("drive{i}"), move |f| {
            f.new_obj("s", &class);
            f.vcall("s", "area", vec![]);
            if class != "Shape" {
                f.vcall("s", "sides", vec![]);
                f.vcall("s", "sides", vec![]);
            }
            if class == "Triangle" {
                f.vcall("s", "hypotenuse", vec![]);
            }
            f.delete("s");
            f.ret();
        });
    }
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, inline) in
        [("debug build (ctor calls intact)", false), ("optimized build (ctors inlined)", true)]
    {
        println!("=== {label} ===");
        let mut opts = CompileOptions::default();
        opts.inline_parent_ctors = inline;
        let compiled = compile(&program().finish(), &opts)?;

        // Dynamic: execute and watch vtable pointers evolve.
        let dyn_forest = dynamic_reconstruct(compiled.image(), &DynamicOptions::default())?;
        println!("dynamic (Lego-style):");
        for class in ["Shape", "Polygon", "Triangle"] {
            let vt = compiled.vtable_of(class).unwrap();
            let parent =
                dyn_forest.parent_of(&vt).and_then(|p| compiled.class_of(*p)).unwrap_or("(root)");
            println!("  {class} : {parent}");
        }

        // Rock: static behavioral reconstruction on the stripped image.
        let loaded = LoadedBinary::load(compiled.stripped_image())?;
        let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
        println!("Rock (static behavioral):");
        print!("{}", project_hierarchy(&recon.hierarchy, &compiled));

        // Assertions: the contrast the paper describes.
        let poly = compiled.vtable_of("Polygon").unwrap();
        let shape = compiled.vtable_of("Shape").unwrap();
        if inline {
            assert_eq!(dyn_forest.parent_of(&poly), None, "dynamic evidence erased by inlining");
        } else {
            assert_eq!(dyn_forest.parent_of(&poly), Some(&shape));
        }
        assert_eq!(recon.parent_of(poly), Some(shape), "Rock works either way");
        println!();
    }
    println!("OK: 'Rock is able to reconstruct a hierarchy even when all");
    println!("destructors have been inlined' (§7) — demonstrated.");
    Ok(())
}
