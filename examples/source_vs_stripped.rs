//! The paper's Fig. 3 vs Fig. 5 contrast, live.
//!
//! Prints the same program twice: first as the *source* the developer
//! wrote (class names, method names, inheritance — Fig. 3), then as the
//! generalized pseudo-source a reverse engineer can recover from the
//! stripped binary (positional names only — Fig. 5), annotated with the
//! hierarchy Rock reconstructed.
//!
//! ```text
//! cargo run --example source_vs_stripped
//! ```

use rock::core::{pseudo_source, suite, Rock, RockConfig};
use rock::loader::LoadedBinary;
use rock::minicpp::to_source;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = suite::streams_example();

    println!("===== what the developer wrote (Fig. 3) =====\n");
    println!("{}", to_source(&bench.program));

    let compiled = bench.compile()?;
    let loaded = LoadedBinary::load(compiled.stripped_image())?;
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);

    println!("===== what the stripped binary reveals (Fig. 5) =====\n");
    let pseudo = pseudo_source(&loaded, &recon);
    println!("{pseudo}");

    // The generalized view leaks no source identifiers...
    assert!(!pseudo.contains("Stream"));
    assert!(!pseudo.contains("send"));
    // ...but the reconstructed `: public` clauses match the original
    // hierarchy (one root, two children).
    assert_eq!(pseudo.matches(": public Class").count(), 2);
    println!("OK: no identifiers leaked; inheritance recovered behaviorally.");
    Ok(())
}
