//! Spliced hierarchies: the paper's Fig. 9 (CGridListCtrlEx).
//!
//! `CEdit` and `CDialog` — abstract bases in the original source — are
//! optimized out of the binary entirely, so the ground truth holds their
//! children as unrelated roots. The behavioral analysis nevertheless
//! notices their similarity and splices each orphaned pair together:
//! "the ability to learn relations between types even when those
//! relations were eliminated during compilation" (§6.4).
//!
//! ```text
//! cargo run --example spliced_hierarchies
//! ```

use rock::core::{evaluate, project_hierarchy, suite, Rock, RockConfig};
use rock::loader::LoadedBinary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = suite::benchmark("CGridListCtrlEx").expect("suite benchmark");
    let compiled = bench.compile()?;

    // The abstract parents are gone from the binary:
    assert_eq!(compiled.vtable_of("CGridListCtrlEx_C24"), None, "abstract root eliminated");
    assert_eq!(compiled.vtable_of("CGridListCtrlEx_C27"), None, "abstract root eliminated");
    // ...so their children are roots in the induced ground truth (Fig. 9a).
    let gt = compiled.ground_truth();
    for orphan in
        ["CGridListCtrlEx_C25", "CGridListCtrlEx_C26", "CGridListCtrlEx_C28", "CGridListCtrlEx_C29"]
    {
        assert_eq!(gt.parent_of(orphan), None, "{orphan} should be a GT root");
    }

    let loaded = LoadedBinary::load(compiled.stripped_image())?;
    let recon = Rock::new(RockConfig::paper()).reconstruct(&loaded);
    let hierarchy = project_hierarchy(&recon.hierarchy, &compiled);

    println!("ground truth (Fig. 9a): orphaned sibling pairs");
    for orphan in ["CGridListCtrlEx_C25", "CGridListCtrlEx_C26"] {
        println!("  {orphan} (root)");
    }
    println!("\nreconstructed (Fig. 9b): the pairs are spliced");
    for pair in [
        ("CGridListCtrlEx_C25", "CGridListCtrlEx_C26"),
        ("CGridListCtrlEx_C28", "CGridListCtrlEx_C29"),
    ] {
        let p0 = hierarchy.parent_of(&pair.0.to_string());
        let p1 = hierarchy.parent_of(&pair.1.to_string());
        println!("  {} : parent {:?}", pair.0, p0);
        println!("  {} : parent {:?}", pair.1, p1);
        // One of the two must have been placed under its sibling — the
        // deliberate Fig. 9b "error" that actually recovers a source-level
        // relationship the compiler erased.
        let spliced = p0 == Some(&pair.1.to_string()) || p1 == Some(&pair.0.to_string());
        assert!(spliced, "the orphaned pair {pair:?} should be spliced together");
    }

    let eval = evaluate(&compiled, &recon);
    println!("\napplication distance:\n{eval}");
    println!(
        "(The spliced links count as 'added' types against the binary-level \
         ground truth — exactly the small Fig. 9 penalty the paper reports: \
         paper 0.07 added, measured {:.2}.)",
        eval.with_slm.avg_added
    );
    Ok(())
}
