//! A minimal, dependency-free, **offline stand-in** for the
//! [`criterion`] benchmarking crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the API surface the
//! workspace's benches use — `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], `sample_size`, `bench_with_input`,
//! [`BenchmarkId`] and [`Bencher::iter`] — and reports a simple
//! mean ± spread of wall-clock time per iteration to stdout.
//!
//! No statistical analysis, outlier rejection, HTML reports, or saved
//! baselines: benches here are for relative, same-machine comparisons.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` compound id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver handed to the measured closure.
pub struct Bencher {
    samples: usize,
    /// Per-sample durations of the most recent `iter` call.
    durations: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `samples` timed iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        self.durations.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { samples: self.sample_size, durations: Vec::new() };
        f(&mut b, input);
        self.report(&full, &b.durations);
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.bench_with_input(id.into(), &(), |b, ()| f(b))
    }

    fn report(&self, full: &str, durations: &[Duration]) {
        if durations.is_empty() {
            return;
        }
        let total: Duration = durations.iter().sum();
        let mean = total / durations.len() as u32;
        let min = durations.iter().min().copied().unwrap_or_default();
        let max = durations.iter().max().copied().unwrap_or_default();
        println!(
            "{full:<44} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            durations.len()
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark harness state.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    /// Reads an optional substring filter from the command line (flags
    /// such as `--bench`, which cargo passes to `harness = false`
    /// targets, are ignored).
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 20, filter }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a function running each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &5u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("nomatch".into()) };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter("x"), &(), |_b, ()| {
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }
}
