//! A minimal, dependency-free, **offline stand-in** for the [`proptest`]
//! property-testing crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the real `proptest` cannot be fetched. This crate
//! implements exactly the API surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`;
//! * strategies for integer ranges, `any::<T>()`, tuples, `Vec<S>`,
//!   [`Just`], weighted unions ([`prop_oneof!`]) and
//!   [`collection::vec`];
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(...)]` header) and the
//!   `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! test harness: generation is **deterministic** (seeded per test from the
//! test's module path), there is **no shrinking** (a failing case panics
//! with the assertion message directly), and assertion macros panic
//! immediately instead of returning `Err(TestCaseError)`.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::marker::PhantomData;

/// Deterministic SplitMix64 generator driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "empty sampling bound");
        let hi = (self.next_u64() as u128) << 64;
        (hi | self.next_u64() as u128) % bound
    }
}

/// Stable seed derived from a test's fully-qualified name (FNV-1a).
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy that always produces a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for a full-range value of `T` — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (full range for integers and `bool`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        })*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A `Vec` of strategies generates element-wise (used for per-index
/// strategies like "parent of node `i` is in `0..i` or `None`").
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Weighted choice among same-typed strategies — built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Creates a union; weights must sum to a non-zero total.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u128) as u64;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-lower, exclusive-upper bound on generated lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors of values from `element` — see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works as in the real
/// crate.
pub mod prop {
    pub use crate::collection;
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Weighted or unweighted choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u8..10, flag in any::<bool>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strategy,)+);
            let mut __rng = $crate::TestRng::new($crate::__seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __case in 0..__config.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(0u8..200, 0..12);
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let strat = prop_oneof![1 => Just(1u8), 3 => Just(2u8)];
        let mut rng = TestRng::new(7);
        let mut saw = [0usize; 3];
        for _ in 0..400 {
            saw[strat.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(saw[0], 0);
        assert!(saw[1] > 0 && saw[2] > saw[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(xs in collection::vec(0u8..5, 1..6), flip in any::<bool>()) {
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert_eq!(u8::from(flip) <= 1, true);
        }
    }
}
